//! Sparse gradient updates and their wire codec.

use crate::codec::{DecodeError, WireCodec, SPARSE_HEADER_BYTES, SPARSE_PAIR_BYTES};
use bytes::{Buf, BufMut};

/// A sparsified gradient: the surviving `(index, value)` pairs of a dense
/// vector of length `dense_len`.
///
/// Indices are strictly increasing `u32`s, which the codec relies on.
///
/// # Examples
///
/// ```
/// use adafl_compression::{SparseUpdate, WireCodec};
///
/// let u = SparseUpdate::new(vec![1, 3], vec![0.5, -0.5], 4);
/// assert_eq!(u.to_dense(), vec![0.0, 0.5, 0.0, -0.5]);
/// let bytes = u.encode();
/// assert_eq!(bytes.len(), u.encoded_len());
/// assert_eq!(SparseUpdate::decode(&bytes).unwrap(), u);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseUpdate {
    indices: Vec<u32>,
    values: Vec<f32>,
    dense_len: usize,
}

impl SparseUpdate {
    /// Creates a sparse update.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ, indices are not strictly increasing, or
    /// any index is `≥ dense_len`.
    pub fn new(indices: Vec<u32>, values: Vec<f32>, dense_len: usize) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices must be strictly increasing");
        }
        if let Some(&last) = indices.last() {
            assert!(
                (last as usize) < dense_len,
                "index {last} out of range {dense_len}"
            );
        }
        SparseUpdate {
            indices,
            values,
            dense_len,
        }
    }

    /// An all-zero update of the given dense length.
    pub fn zero(dense_len: usize) -> Self {
        SparseUpdate {
            indices: Vec::new(),
            values: Vec::new(),
            dense_len,
        }
    }

    /// Number of transmitted (non-zero) elements.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Length of the dense vector this update sparsifies.
    pub fn dense_len(&self) -> usize {
        self.dense_len
    }

    /// The surviving indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The surviving values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access to the surviving values — lets fault injectors and
    /// defensive scrubbers rewrite a payload in place without re-checking
    /// the (unchanged) index invariants.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Achieved compression ratio `dense_len / nnz` (`∞` → `f64::INFINITY`
    /// for an empty update).
    pub fn compression_ratio(&self) -> f64 {
        if self.indices.is_empty() {
            f64::INFINITY
        } else {
            self.dense_len as f64 / self.indices.len() as f64
        }
    }

    /// Materialises the dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dense_len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Adds this update into `dense` (scaled by `scale`).
    ///
    /// # Panics
    ///
    /// Panics when `dense.len() != dense_len`.
    pub fn add_into(&self, dense: &mut [f32], scale: f32) {
        assert_eq!(dense.len(), self.dense_len, "dense length mismatch");
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            dense[i as usize] += scale * v;
        }
    }
}

impl WireCodec for SparseUpdate {
    /// Wire size in bytes: 16-byte header + 8 bytes per element.
    fn encoded_len(&self) -> usize {
        SPARSE_HEADER_BYTES + SPARSE_PAIR_BYTES * self.indices.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.put_u64_le(self.dense_len as u64);
        out.put_u64_le(self.indices.len() as u64);
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out.put_u32_le(i);
            out.put_f32_le(v);
        }
    }

    /// Parses the wire format produced by [`WireCodec::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] for short buffers,
    /// [`DecodeError::TrailingBytes`] for long ones, and
    /// [`DecodeError::InvalidIndices`] for malformed index streams. The
    /// element count from the header is validated against the actual
    /// buffer length (checked arithmetic) before any allocation, so a
    /// lying header cannot panic or over-allocate.
    fn decode(mut buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.len() < SPARSE_HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        let dense_len = usize::try_from(buf.get_u64_le()).map_err(|_| DecodeError::Truncated)?;
        let nnz = usize::try_from(buf.get_u64_le()).map_err(|_| DecodeError::Truncated)?;
        let need = nnz
            .checked_mul(SPARSE_PAIR_BYTES)
            .ok_or(DecodeError::Truncated)?;
        if buf.len() < need {
            return Err(DecodeError::Truncated);
        }
        if buf.len() > need {
            return Err(DecodeError::TrailingBytes);
        }
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        let mut prev: Option<u32> = None;
        for _ in 0..nnz {
            let i = buf.get_u32_le();
            let v = buf.get_f32_le();
            if (i as usize) >= dense_len || prev.is_some_and(|p| p >= i) {
                return Err(DecodeError::InvalidIndices);
            }
            prev = Some(i);
            indices.push(i);
            values.push(v);
        }
        Ok(SparseUpdate {
            indices,
            values,
            dense_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trip() {
        let u = SparseUpdate::new(vec![0, 2], vec![1.0, -2.0], 3);
        assert_eq!(u.to_dense(), vec![1.0, 0.0, -2.0]);
        assert_eq!(u.nnz(), 2);
        assert_eq!(u.dense_len(), 3);
    }

    #[test]
    fn add_into_accumulates_with_scale() {
        let u = SparseUpdate::new(vec![1], vec![4.0], 2);
        let mut dense = vec![1.0, 1.0];
        u.add_into(&mut dense, 0.5);
        assert_eq!(dense, vec![1.0, 3.0]);
    }

    #[test]
    fn codec_round_trips() {
        let u = SparseUpdate::new(vec![3, 7, 100], vec![0.25, -1.5, 3.75], 128);
        let bytes = u.encode();
        assert_eq!(bytes.len(), u.encoded_len());
        assert_eq!(SparseUpdate::decode(&bytes).unwrap(), u);
    }

    #[test]
    fn decode_rejects_truncation() {
        let u = SparseUpdate::new(vec![0, 1], vec![1.0, 2.0], 4);
        let bytes = u.encode();
        assert_eq!(
            SparseUpdate::decode(&bytes[..10]).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            SparseUpdate::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn decode_rejects_bad_indices() {
        // Hand-craft a buffer with decreasing indices.
        let mut buf = bytes::BytesMut::new();
        buf.put_u64_le(10);
        buf.put_u64_le(2);
        buf.put_u32_le(5);
        buf.put_f32_le(1.0);
        buf.put_u32_le(3);
        buf.put_f32_le(1.0);
        assert_eq!(
            SparseUpdate::decode(&buf).unwrap_err(),
            DecodeError::InvalidIndices
        );
    }

    #[test]
    fn compression_ratio_math() {
        let u = SparseUpdate::new(vec![0], vec![1.0], 210);
        assert_eq!(u.compression_ratio(), 210.0);
        assert_eq!(SparseUpdate::zero(100).compression_ratio(), f64::INFINITY);
    }

    #[test]
    fn sparse_beats_dense_on_wire_when_sparse_enough() {
        let dense_bytes = crate::dense_wire_size(1000);
        let u = SparseUpdate::new(vec![1, 2, 3], vec![0.0; 3], 1000);
        assert!(u.encoded_len() < dense_bytes);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_indices_panic() {
        SparseUpdate::new(vec![2, 1], vec![0.0, 0.0], 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        SparseUpdate::new(vec![4], vec![0.0], 4);
    }
}
