//! Gradient compression for communication-efficient federated learning.
//!
//! Implements the compression stack AdaFL builds on:
//!
//! * [`WireCodec`] (the [`codec`] module) — the single serialization
//!   authority: every payload form ([`DenseUpdate`], [`SparseUpdate`],
//!   [`QuantizedUpdate`], [`TernaryUpdate`]) encodes/decodes through one
//!   trait whose `encoded_len()` is byte-exact, so ledger accounting and
//!   the real byte stream can never drift apart.
//! * [`SparseUpdate`] — the wire format of a sparsified gradient, with
//!   byte-exact size accounting and a binary codec.
//! * [`top_k`] — magnitude-based sparsification.
//! * [`DgcCompressor`] — Deep Gradient Compression (Lin et al. \[10]): top-k
//!   sparsification with **local gradient accumulation**, **momentum
//!   correction** and **local gradient clipping**, the three components the
//!   paper integrates.
//! * [`QsgdQuantizer`] — QSGD-style stochastic quantization \[11] and
//!   [`TernGrad`] ternary quantization \[13], the model-level baselines
//!   from related work.
//! * [`ErrorFeedback`] — the EF-SGD / DoubleSqueeze \[15] residual wrapper
//!   that makes any lossy compressor unbiased in the long run.
//!
//! The compression *ratio* vocabulary follows the paper's Tables I/II: a
//! ratio of `210×` means one in 210 gradient elements is transmitted.
//!
//! # Examples
//!
//! ```
//! use adafl_compression::DgcCompressor;
//!
//! let mut dgc = DgcCompressor::new(4, 0.9, 1.0);
//! let update = dgc.compress(&[0.0, 5.0, 0.1, -0.2], 4.0);
//! assert_eq!(update.nnz(), 1); // ratio 4× on 4 elements keeps 1
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
mod dgc;
mod error_feedback;
mod quantize;
mod sparse;
mod telemetry;
mod terngrad;
mod topk;

pub use codec::{DecodeError, DenseUpdate, ViewDescriptor, WireCodec};
pub use dgc::DgcCompressor;
pub use error_feedback::ErrorFeedback;
pub use quantize::{QsgdQuantizer, QuantizedUpdate};
pub use sparse::SparseUpdate;
pub use telemetry::record_compression;
pub use terngrad::{TernGrad, TernaryUpdate};
pub use topk::top_k;

/// Wire size in bytes of a dense `f32` gradient of `len` elements.
///
/// Four bytes per element plus an 8-byte length header — the format all
/// dense baselines (FedAvg etc.) are accounted at; equal by definition to
/// [`DenseUpdate`]'s `encoded_len()`, which a unit test pins.
pub fn dense_wire_size(len: usize) -> usize {
    codec::DENSE_HEADER_BYTES + 4 * len
}

#[cfg(test)]
mod size_tests {
    use super::*;

    #[test]
    fn dense_wire_size_matches_the_codec() {
        for len in [0usize, 1, 7, 300] {
            let u = DenseUpdate::new(vec![0.25; len]);
            assert_eq!(dense_wire_size(len), u.encoded_len());
            assert_eq!(dense_wire_size(len), u.encode().len());
        }
    }
}
