//! TernGrad ternary gradient quantization (Wen et al. [13]).
//!
//! Each gradient coordinate is stochastically rounded to
//! `{−s, 0, +s}` where `s = max|gᵢ|`, giving an unbiased two-bit encoding.
//! Cited in the paper's related work as a static model-level
//! communication-reduction technique; implemented here as a comparison
//! baseline for the compression benches.

use crate::codec::{DecodeError, WireCodec, TERNARY_HEADER_BYTES};
use bytes::{Buf, BufMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ternarized gradient: the scale `s` plus 2-bit codes.
#[derive(Debug, Clone, PartialEq)]
pub struct TernaryUpdate {
    scale: f32,
    len: usize,
    /// Four 2-bit codes per byte: `0b00` = 0, `0b01` = +s, `0b10` = −s.
    packed: Vec<u8>,
}

impl TernaryUpdate {
    /// Decodes back to a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            let byte = self.packed[i / 4];
            let code = (byte >> ((i % 4) * 2)) & 0b11;
            out.push(match code {
                0b01 => self.scale,
                0b10 => -self.scale,
                _ => 0.0,
            });
        }
        out
    }

    /// Number of coordinates.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for an empty update.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The ternary scale `s`.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

impl WireCodec for TernaryUpdate {
    /// Wire size in bytes: 12-byte header + 2 bits per coordinate.
    fn encoded_len(&self) -> usize {
        TERNARY_HEADER_BYTES + self.packed.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.put_u64_le(self.len as u64);
        out.put_f32_le(self.scale);
        out.put_slice(&self.packed);
    }

    /// Parses the wire format produced by [`WireCodec::encode_into`].
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] / [`DecodeError::TrailingBytes`] when the
    /// packed body disagrees with the declared coordinate count; the count
    /// is validated with checked arithmetic against the real buffer, so a
    /// lying header cannot overflow or over-allocate.
    fn decode(mut buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.len() < TERNARY_HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        let len = usize::try_from(buf.get_u64_le()).map_err(|_| DecodeError::Truncated)?;
        let scale = buf.get_f32_le();
        let packed_len = len
            .checked_add(3)
            .map(|n| n / 4)
            .ok_or(DecodeError::Truncated)?;
        if buf.len() < packed_len {
            return Err(DecodeError::Truncated);
        }
        if buf.len() > packed_len {
            return Err(DecodeError::TrailingBytes);
        }
        Ok(TernaryUpdate {
            scale,
            len,
            packed: buf.to_vec(),
        })
    }
}

/// Stochastic ternary quantizer.
///
/// # Examples
///
/// ```
/// use adafl_compression::TernGrad;
///
/// let mut t = TernGrad::new(1);
/// let update = t.ternarize(&[0.5, -1.0, 0.0, 0.25]);
/// assert_eq!(update.len(), 4);
/// assert_eq!(update.scale(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TernGrad {
    rng: StdRng,
}

impl TernGrad {
    /// Creates a quantizer with the given seed.
    pub fn new(seed: u64) -> Self {
        TernGrad {
            rng: StdRng::seed_from_u64(seed ^ 0x7E56),
        }
    }

    /// Stochastically ternarizes `gradient`: coordinate `gᵢ` becomes
    /// `sign(gᵢ)·s` with probability `|gᵢ|/s`, else 0 — an unbiased
    /// estimator.
    pub fn ternarize(&mut self, gradient: &[f32]) -> TernaryUpdate {
        let scale = gradient.iter().fold(0.0f32, |m, g| m.max(g.abs()));
        let mut packed = vec![0u8; gradient.len().div_ceil(4)];
        if scale > 0.0 {
            for (i, &g) in gradient.iter().enumerate() {
                let p = g.abs() / scale;
                if self.rng.gen::<f32>() < p {
                    let code: u8 = if g >= 0.0 { 0b01 } else { 0b10 };
                    packed[i / 4] |= code << ((i % 4) * 2);
                }
            }
        }
        TernaryUpdate {
            scale,
            len: gradient.len(),
            packed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_gradient_round_trips() {
        let mut t = TernGrad::new(0);
        let u = t.ternarize(&[0.0; 7]);
        assert_eq!(u.to_dense(), vec![0.0; 7]);
        assert!(!u.is_empty());
    }

    #[test]
    fn values_are_ternary() {
        let mut t = TernGrad::new(1);
        let g: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.37).sin()).collect();
        let u = t.ternarize(&g);
        let s = u.scale();
        for v in u.to_dense() {
            assert!(v == 0.0 || (v - s).abs() < 1e-6 || (v + s).abs() < 1e-6);
        }
    }

    #[test]
    fn extreme_coordinate_always_survives() {
        // |g| == s has probability 1 of being kept.
        let mut t = TernGrad::new(2);
        for _ in 0..20 {
            let u = t.ternarize(&[2.0, 0.0]);
            assert_eq!(u.to_dense()[0], 2.0);
        }
    }

    #[test]
    fn ternarization_is_unbiased() {
        let g = [0.3f32, -0.9, 0.6];
        let mut t = TernGrad::new(3);
        let mut mean = [0.0f64; 3];
        let trials = 6000;
        for _ in 0..trials {
            for (m, v) in mean.iter_mut().zip(t.ternarize(&g).to_dense()) {
                *m += v as f64;
            }
        }
        for (m, expected) in mean.iter().zip(&g) {
            let avg = m / trials as f64;
            assert!(
                (avg - *expected as f64).abs() < 0.04,
                "biased: {avg} vs {expected}"
            );
        }
    }

    #[test]
    fn codec_round_trips() {
        let mut t = TernGrad::new(4);
        let u = t.ternarize(&[1.0, -0.5, 0.25, 0.0, 0.9]);
        let bytes = u.encode();
        assert_eq!(bytes.len(), u.encoded_len());
        let decoded = TernaryUpdate::decode(&bytes).unwrap();
        assert_eq!(decoded, u);
        assert_eq!(
            TernaryUpdate::decode(&bytes[..5]).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn wire_size_is_quarter_byte_per_coordinate() {
        let mut t = TernGrad::new(5);
        let u = t.ternarize(&vec![1.0f32; 1000]);
        assert_eq!(u.encoded_len(), 12 + 250);
        assert!(u.encoded_len() < crate::dense_wire_size(1000) / 10);
    }
}
