//! TernGrad ternary gradient quantization (Wen et al. [13]).
//!
//! Each gradient coordinate is stochastically rounded to
//! `{−s, 0, +s}` where `s = max|gᵢ|`, giving an unbiased two-bit encoding.
//! Cited in the paper's related work as a static model-level
//! communication-reduction technique; implemented here as a comparison
//! baseline for the compression benches.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ternarized gradient: the scale `s` plus 2-bit codes.
#[derive(Debug, Clone, PartialEq)]
pub struct TernaryUpdate {
    scale: f32,
    len: usize,
    /// Four 2-bit codes per byte: `0b00` = 0, `0b01` = +s, `0b10` = −s.
    packed: Vec<u8>,
}

impl TernaryUpdate {
    /// Decodes back to a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            let byte = self.packed[i / 4];
            let code = (byte >> ((i % 4) * 2)) & 0b11;
            out.push(match code {
                0b01 => self.scale,
                0b10 => -self.scale,
                _ => 0.0,
            });
        }
        out
    }

    /// Number of coordinates.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for an empty update.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The ternary scale `s`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Wire size in bytes: 12-byte header + 2 bits per coordinate.
    pub fn wire_size(&self) -> usize {
        12 + self.packed.len()
    }

    /// Serialises to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        buf.put_u64_le(self.len as u64);
        buf.put_f32_le(self.scale);
        buf.put_slice(&self.packed);
        buf.freeze()
    }

    /// Parses the wire format produced by [`TernaryUpdate::encode`].
    ///
    /// Returns `None` when the buffer is truncated.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < 12 {
            return None;
        }
        let len = buf.get_u64_le() as usize;
        let scale = buf.get_f32_le();
        let packed_len = len.div_ceil(4);
        if buf.len() < packed_len {
            return None;
        }
        Some(TernaryUpdate {
            scale,
            len,
            packed: buf[..packed_len].to_vec(),
        })
    }
}

/// Stochastic ternary quantizer.
///
/// # Examples
///
/// ```
/// use adafl_compression::TernGrad;
///
/// let mut t = TernGrad::new(1);
/// let update = t.ternarize(&[0.5, -1.0, 0.0, 0.25]);
/// assert_eq!(update.len(), 4);
/// assert_eq!(update.scale(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TernGrad {
    rng: StdRng,
}

impl TernGrad {
    /// Creates a quantizer with the given seed.
    pub fn new(seed: u64) -> Self {
        TernGrad {
            rng: StdRng::seed_from_u64(seed ^ 0x7E56),
        }
    }

    /// Stochastically ternarizes `gradient`: coordinate `gᵢ` becomes
    /// `sign(gᵢ)·s` with probability `|gᵢ|/s`, else 0 — an unbiased
    /// estimator.
    pub fn ternarize(&mut self, gradient: &[f32]) -> TernaryUpdate {
        let scale = gradient.iter().fold(0.0f32, |m, g| m.max(g.abs()));
        let mut packed = vec![0u8; gradient.len().div_ceil(4)];
        if scale > 0.0 {
            for (i, &g) in gradient.iter().enumerate() {
                let p = g.abs() / scale;
                if self.rng.gen::<f32>() < p {
                    let code: u8 = if g >= 0.0 { 0b01 } else { 0b10 };
                    packed[i / 4] |= code << ((i % 4) * 2);
                }
            }
        }
        TernaryUpdate {
            scale,
            len: gradient.len(),
            packed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_gradient_round_trips() {
        let mut t = TernGrad::new(0);
        let u = t.ternarize(&[0.0; 7]);
        assert_eq!(u.to_dense(), vec![0.0; 7]);
        assert!(!u.is_empty());
    }

    #[test]
    fn values_are_ternary() {
        let mut t = TernGrad::new(1);
        let g: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.37).sin()).collect();
        let u = t.ternarize(&g);
        let s = u.scale();
        for v in u.to_dense() {
            assert!(v == 0.0 || (v - s).abs() < 1e-6 || (v + s).abs() < 1e-6);
        }
    }

    #[test]
    fn extreme_coordinate_always_survives() {
        // |g| == s has probability 1 of being kept.
        let mut t = TernGrad::new(2);
        for _ in 0..20 {
            let u = t.ternarize(&[2.0, 0.0]);
            assert_eq!(u.to_dense()[0], 2.0);
        }
    }

    #[test]
    fn ternarization_is_unbiased() {
        let g = [0.3f32, -0.9, 0.6];
        let mut t = TernGrad::new(3);
        let mut mean = [0.0f64; 3];
        let trials = 6000;
        for _ in 0..trials {
            for (m, v) in mean.iter_mut().zip(t.ternarize(&g).to_dense()) {
                *m += v as f64;
            }
        }
        for (m, expected) in mean.iter().zip(&g) {
            let avg = m / trials as f64;
            assert!(
                (avg - *expected as f64).abs() < 0.04,
                "biased: {avg} vs {expected}"
            );
        }
    }

    #[test]
    fn codec_round_trips() {
        let mut t = TernGrad::new(4);
        let u = t.ternarize(&[1.0, -0.5, 0.25, 0.0, 0.9]);
        let decoded = TernaryUpdate::decode(&u.encode()).unwrap();
        assert_eq!(decoded, u);
        assert!(TernaryUpdate::decode(&u.encode()[..5]).is_none());
    }

    #[test]
    fn wire_size_is_quarter_byte_per_coordinate() {
        let mut t = TernGrad::new(5);
        let u = t.ternarize(&vec![1.0f32; 1000]);
        assert_eq!(u.wire_size(), 12 + 250);
        assert!(u.wire_size() < crate::dense_wire_size(1000) / 10);
    }
}
