//! Deep Gradient Compression (Lin et al. [10]).
//!
//! DGC transmits only the largest-magnitude gradient coordinates each round
//! while **accumulating** the untransmitted remainder locally, so small
//! gradients are not lost — merely delayed. Two refinements keep convergence
//! intact at high compression, both of which the paper integrates:
//!
//! * **Momentum correction** — momentum is applied *before* accumulation
//!   (`u ← m·u + g; v ← v + u`), so the sparse updates follow the same
//!   trajectory dense momentum SGD would.
//! * **Local gradient clipping** — each new gradient is L2-clipped before
//!   accumulation to prevent exploding accumulated values under aggressive
//!   sparsity.

use crate::{top_k, SparseUpdate};
use adafl_tensor::vecops;

/// Stateful per-client DGC compressor.
///
/// One instance per federated client: the momentum and accumulation buffers
/// are local state that persists across rounds.
///
/// # Examples
///
/// ```
/// use adafl_compression::DgcCompressor;
///
/// let mut dgc = DgcCompressor::new(8, 0.9, 2.0);
/// let sparse = dgc.compress(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 4.0], 4.0);
/// assert_eq!(sparse.nnz(), 2); // 8 elements at ratio 4× → 2 kept
/// ```
#[derive(Debug, Clone)]
pub struct DgcCompressor {
    momentum: f32,
    clip_norm: f32,
    /// Momentum buffer `u`.
    velocity: Vec<f32>,
    /// Local accumulation buffer `v`.
    accumulator: Vec<f32>,
}

impl DgcCompressor {
    /// Creates a compressor for gradients of length `dim` with momentum `m`
    /// and local clipping norm `clip_norm`.
    ///
    /// # Panics
    ///
    /// Panics when `dim` is zero, `m` is outside `[0, 1)`, or `clip_norm` is
    /// not positive.
    pub fn new(dim: usize, momentum: f32, clip_norm: f32) -> Self {
        assert!(dim > 0, "gradient dimension must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(clip_norm > 0.0, "clip norm must be positive");
        DgcCompressor {
            momentum,
            clip_norm,
            velocity: vec![0.0; dim],
            accumulator: vec![0.0; dim],
        }
    }

    /// Gradient dimension this compressor was sized for.
    pub fn dim(&self) -> usize {
        self.velocity.len()
    }

    /// Momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Current residual (accumulated, untransmitted) energy — useful for
    /// diagnostics and tests.
    pub fn residual_norm(&self) -> f32 {
        vecops::l2_norm(&self.accumulator)
    }

    /// Compresses `gradient` at `compression_ratio` (e.g. `210.0` transmits
    /// one in 210 coordinates; `1.0` transmits everything).
    ///
    /// Applies clipping → momentum correction → accumulation → top-k, then
    /// zeroes the transmitted coordinates of both local buffers (the
    /// momentum-factor masking step of DGC).
    ///
    /// # Panics
    ///
    /// Panics when `gradient.len()` differs from [`DgcCompressor::dim`] or
    /// `compression_ratio < 1`.
    pub fn compress(&mut self, gradient: &[f32], compression_ratio: f32) -> SparseUpdate {
        assert_eq!(gradient.len(), self.dim(), "gradient length mismatch");
        assert!(compression_ratio >= 1.0, "compression ratio must be ≥ 1");

        // Local gradient clipping (pre-accumulation).
        let mut g = gradient.to_vec();
        vecops::clip_l2(&mut g, self.clip_norm);

        // Momentum correction: u ← m·u + g; v ← v + u.
        for ((u, v), gi) in self.velocity.iter_mut().zip(&mut self.accumulator).zip(&g) {
            *u = self.momentum * *u + gi;
            *v += *u;
        }

        let k = ((self.dim() as f32 / compression_ratio).round() as usize).max(1);
        let update = top_k(&self.accumulator, k);

        // Momentum-factor masking: clear transmitted coordinates locally.
        for &i in update.indices() {
            self.accumulator[i as usize] = 0.0;
            self.velocity[i as usize] = 0.0;
        }
        update
    }

    /// Drops all local state (used when a client resynchronises to a fresh
    /// global model).
    pub fn reset(&mut self) {
        self.velocity.fill(0.0);
        self.accumulator.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_one_transmits_everything_eventually() {
        let mut dgc = DgcCompressor::new(4, 0.0, 100.0);
        let u = dgc.compress(&[1.0, -2.0, 3.0, -4.0], 1.0);
        assert_eq!(u.nnz(), 4);
        assert_eq!(u.to_dense(), vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(dgc.residual_norm(), 0.0);
    }

    #[test]
    fn untransmitted_gradient_accumulates_locally() {
        let mut dgc = DgcCompressor::new(4, 0.0, 100.0);
        // Ratio 4 on 4 elements → 1 kept. The small coordinate accumulates.
        let u1 = dgc.compress(&[10.0, 1.0, 0.0, 0.0], 4.0);
        assert_eq!(u1.indices(), &[0]);
        assert!(dgc.residual_norm() > 0.0);
        // Feed zeros; the accumulated coordinate must eventually win top-k.
        let u2 = dgc.compress(&[0.0, 0.0, 0.0, 0.0], 4.0);
        assert_eq!(u2.indices(), &[1]);
        assert_eq!(u2.values(), &[1.0]);
        assert!(dgc.residual_norm() < 1e-6);
    }

    #[test]
    fn no_gradient_information_is_ever_lost() {
        // Sum of transmitted updates equals sum of inputs once drained
        // (momentum 0, no clipping).
        let mut dgc = DgcCompressor::new(8, 0.0, 1e9);
        let inputs: Vec<Vec<f32>> = (0..10)
            .map(|r| (0..8).map(|i| ((r * 8 + i) % 5) as f32 - 2.0).collect())
            .collect();
        let mut transmitted = vec![0.0f32; 8];
        for g in &inputs {
            dgc.compress(g, 4.0).add_into(&mut transmitted, 1.0);
        }
        // Drain the residual.
        for _ in 0..20 {
            dgc.compress(&[0.0; 8], 4.0).add_into(&mut transmitted, 1.0);
        }
        let mut expected = vec![0.0f32; 8];
        for g in &inputs {
            for (e, x) in expected.iter_mut().zip(g) {
                *e += x;
            }
        }
        for (t, e) in transmitted.iter().zip(&expected) {
            assert!((t - e).abs() < 1e-4, "leaked gradient: {t} vs {e}");
        }
    }

    #[test]
    fn ratio_one_sends_plain_gradient_every_round() {
        // With everything transmitted, masking clears the buffers each
        // round, so the sent update is exactly the (clipped) gradient.
        let mut dgc = DgcCompressor::new(2, 0.9, 1e9);
        let g = [1.0f32, -1.0];
        for _ in 0..5 {
            let sent = dgc.compress(&g, 1.0).to_dense();
            for (s, expected) in sent.iter().zip(&g) {
                assert!((s - expected).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn delayed_coordinates_carry_momentum_weighted_sums() {
        // A coordinate held back for k rounds accumulates Σ u_t where
        // u_t = m·u_{t-1} + g — more than k·g when momentum is active.
        let mut dgc = DgcCompressor::new(2, 0.9, 1e9);
        // Coordinate 0 always dominates, so coordinate 1 is delayed.
        let g = [10.0f32, 1.0];
        dgc.compress(&g, 2.0); // sends coord 0 only (k = 1)
        dgc.compress(&g, 2.0);
        // After 2 rounds: u₁ = 0.9·1 + 1 = 1.9; v₁ = 1 + 1.9 = 2.9.
        // Force coordinate 1 out by sending a zero gradient round.
        let sent = dgc.compress(&[0.0, 0.0], 2.0);
        assert_eq!(sent.indices(), &[1]);
        // v₁ after third round: u₁ = 0.9·1.9 = 1.71, v₁ = 2.9 + 1.71 = 4.61.
        assert!(
            (sent.values()[0] - 4.61).abs() < 1e-4,
            "got {}",
            sent.values()[0]
        );
        // Strictly more than the plain sum 2.0 — momentum correction at work.
        assert!(sent.values()[0] > 2.0);
    }

    #[test]
    fn clipping_bounds_accumulated_energy() {
        let mut dgc = DgcCompressor::new(4, 0.0, 1.0);
        let huge = [100.0f32, 100.0, 100.0, 100.0];
        let u = dgc.compress(&huge, 1.0);
        // The transmitted vector reflects the clipped gradient (norm 1).
        let norm = adafl_tensor::vecops::l2_norm(&u.to_dense());
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn reset_clears_state() {
        let mut dgc = DgcCompressor::new(4, 0.5, 10.0);
        dgc.compress(&[1.0, 2.0, 3.0, 4.0], 4.0);
        assert!(dgc.residual_norm() > 0.0);
        dgc.reset();
        assert_eq!(dgc.residual_norm(), 0.0);
    }

    #[test]
    fn achieved_ratio_tracks_requested_ratio() {
        let mut dgc = DgcCompressor::new(1000, 0.9, 10.0);
        let g: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        let u = dgc.compress(&g, 100.0);
        assert_eq!(u.nnz(), 10);
        assert!((u.compression_ratio() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn sub_unit_ratio_panics() {
        DgcCompressor::new(4, 0.0, 1.0).compress(&[0.0; 4], 0.5);
    }
}
