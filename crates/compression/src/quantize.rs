//! QSGD-style stochastic gradient quantization (Alistarh et al. [11]).
//!
//! The model-level baseline from the paper's related work: each gradient is
//! encoded as its L2 norm plus per-coordinate sign and a stochastically
//! rounded level in `0..=levels`, giving an unbiased estimator whose wire
//! cost is ~`log2(levels)+1` bits per coordinate (accounted at byte
//! granularity here).

use crate::codec::{DecodeError, WireCodec, QUANTIZED_HEADER_BYTES, QUANTIZED_LEN_MASK};
use bytes::{Buf, BufMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A quantized gradient: norm, per-coordinate signs and levels.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedUpdate {
    norm: f32,
    levels: u8,
    /// Sign-and-level per coordinate: `level` in low 7 bits, sign in bit 7.
    codes: Vec<u8>,
}

impl QuantizedUpdate {
    /// Decodes back to a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let s = self.levels as f32;
        self.codes
            .iter()
            .map(|&c| {
                let sign = if c & 0x80 != 0 { -1.0 } else { 1.0 };
                let level = (c & 0x7F) as f32;
                sign * self.norm * level / s
            })
            .collect()
    }

    /// Number of coordinates.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Returns `true` for an empty update.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The level count `s` the codes were rounded against.
    pub fn levels(&self) -> u8 {
        self.levels
    }
}

impl WireCodec for QuantizedUpdate {
    /// Wire size in bytes: 8-byte header + norm + one byte per coordinate.
    fn encoded_len(&self) -> usize {
        QUANTIZED_HEADER_BYTES + self.codes.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        // Coordinate count lives in the low 56 bits of the first word; the
        // level count rides in the top byte, keeping the header at the
        // same 12 bytes the size formula always charged.
        assert!(
            (self.codes.len() as u64) <= QUANTIZED_LEN_MASK,
            "update too long for the quantized wire header"
        );
        out.reserve(self.encoded_len());
        out.put_u64_le((u64::from(self.levels) << 56) | self.codes.len() as u64);
        out.put_f32_le(self.norm);
        out.put_slice(&self.codes);
    }

    /// Parses the wire format produced by [`WireCodec::encode_into`].
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] / [`DecodeError::TrailingBytes`] when the
    /// buffer disagrees with the declared coordinate count, and
    /// [`DecodeError::InvalidHeader`] for a level count the quantizer can
    /// never emit (0 or > 127).
    fn decode(mut buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.len() < QUANTIZED_HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        let header = buf.get_u64_le();
        let levels = (header >> 56) as u8;
        if !(1..=127).contains(&levels) {
            return Err(DecodeError::InvalidHeader);
        }
        let len =
            usize::try_from(header & QUANTIZED_LEN_MASK).map_err(|_| DecodeError::Truncated)?;
        let norm = buf.get_f32_le();
        if buf.len() < len {
            return Err(DecodeError::Truncated);
        }
        if buf.len() > len {
            return Err(DecodeError::TrailingBytes);
        }
        Ok(QuantizedUpdate {
            norm,
            levels,
            codes: buf.to_vec(),
        })
    }
}

/// Stateless (but seeded) QSGD quantizer.
///
/// # Examples
///
/// ```
/// use adafl_compression::QsgdQuantizer;
///
/// let mut q = QsgdQuantizer::new(4, 7);
/// let update = q.quantize(&[1.0, -0.5, 0.0]);
/// assert_eq!(update.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct QsgdQuantizer {
    levels: u8,
    rng: StdRng,
}

impl QsgdQuantizer {
    /// Creates a quantizer with `levels` quantization levels (1–127).
    ///
    /// # Panics
    ///
    /// Panics when `levels` is zero or exceeds 127 (the sign bit is packed
    /// into the same byte).
    pub fn new(levels: u8, seed: u64) -> Self {
        assert!((1..=127).contains(&levels), "levels must be in 1..=127");
        QsgdQuantizer {
            levels,
            rng: StdRng::seed_from_u64(seed ^ 0x0045_4617),
        }
    }

    /// Number of quantization levels.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Stochastically quantizes `gradient`.
    ///
    /// The expectation of [`QuantizedUpdate::to_dense`] over the rounding
    /// randomness equals `gradient` (unbiasedness), which
    /// `quantization_is_unbiased` verifies statistically.
    pub fn quantize(&mut self, gradient: &[f32]) -> QuantizedUpdate {
        let norm = adafl_tensor::vecops::l2_norm(gradient);
        if norm == 0.0 {
            return QuantizedUpdate {
                norm: 0.0,
                levels: self.levels,
                codes: vec![0; gradient.len()],
            };
        }
        let s = self.levels as f32;
        let codes = gradient
            .iter()
            .map(|&g| {
                let sign_bit = if g < 0.0 { 0x80u8 } else { 0 };
                let x = g.abs() / norm * s; // in [0, s]
                let lower = x.floor();
                let p = x - lower;
                let level = if self.rng.gen::<f32>() < p {
                    lower + 1.0
                } else {
                    lower
                };
                sign_bit | (level.min(s) as u8)
            })
            .collect();
        QuantizedUpdate {
            norm,
            levels: self.levels,
            codes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_vector_round_trips() {
        let mut q = QsgdQuantizer::new(4, 0);
        let u = q.quantize(&[0.0, 0.0]);
        assert_eq!(u.to_dense(), vec![0.0, 0.0]);
        assert!(!u.is_empty());
    }

    #[test]
    fn signs_are_preserved() {
        let mut q = QsgdQuantizer::new(127, 1);
        let g = [3.0f32, -4.0];
        let d = q.quantize(&g).to_dense();
        assert!(d[0] >= 0.0);
        assert!(d[1] <= 0.0);
    }

    #[test]
    fn quantization_is_unbiased() {
        let mut q = QsgdQuantizer::new(2, 2);
        let g = [0.6f32, -0.8];
        let mut mean = [0.0f64; 2];
        let trials = 4000;
        for _ in 0..trials {
            let d = q.quantize(&g).to_dense();
            mean[0] += d[0] as f64;
            mean[1] += d[1] as f64;
        }
        mean[0] /= trials as f64;
        mean[1] /= trials as f64;
        assert!((mean[0] - 0.6).abs() < 0.03, "biased: {}", mean[0]);
        assert!((mean[1] + 0.8).abs() < 0.03, "biased: {}", mean[1]);
    }

    #[test]
    fn more_levels_give_lower_error() {
        let g: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.31).sin()).collect();
        let err = |levels: u8| {
            let mut q = QsgdQuantizer::new(levels, 3);
            let d = q.quantize(&g).to_dense();
            g.iter().zip(&d).map(|(a, b)| (a - b).powi(2)).sum::<f32>()
        };
        assert!(err(127) < err(1));
    }

    #[test]
    fn wire_size_is_one_byte_per_coordinate() {
        let mut q = QsgdQuantizer::new(4, 4);
        let u = q.quantize(&[1.0; 100]);
        assert_eq!(u.encoded_len(), 8 + 4 + 100);
        assert!(u.encoded_len() < crate::dense_wire_size(100));
    }

    #[test]
    fn codec_round_trips() {
        let mut q = QsgdQuantizer::new(8, 6);
        let u = q.quantize(&[1.0, -0.5, 0.25, 0.0]);
        let bytes = u.encode();
        assert_eq!(bytes.len(), u.encoded_len());
        assert_eq!(QuantizedUpdate::decode(&bytes).unwrap(), u);
        assert_eq!(
            QuantizedUpdate::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn decode_rejects_bad_levels() {
        let bytes = QsgdQuantizer::new(8, 7).quantize(&[1.0; 4]).encode();
        // Zero out the levels byte (top byte of the LE u64 header).
        let mut zeroed = bytes.clone();
        zeroed[7] = 0;
        assert_eq!(
            QuantizedUpdate::decode(&zeroed).unwrap_err(),
            DecodeError::InvalidHeader
        );
        let mut sign_bit = bytes;
        sign_bit[7] = 0x80 | 3;
        assert_eq!(
            QuantizedUpdate::decode(&sign_bit).unwrap_err(),
            DecodeError::InvalidHeader
        );
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn too_many_levels_panics() {
        QsgdQuantizer::new(128, 0);
    }
}
