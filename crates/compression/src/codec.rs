//! The wire-codec layer: one vocabulary for turning updates into bytes.
//!
//! Every payload that crosses the simulated network — dense deltas, DGC
//! sparse updates, QSGD quantized updates, TernGrad ternary updates — is a
//! [`WireCodec`]: it knows its exact encoded size up front
//! ([`WireCodec::encoded_len`]), serialises itself into a byte buffer
//! ([`WireCodec::encode_into`]), and parses back defensively
//! ([`WireCodec::decode`]). The invariant
//! `encoded_len() == encode().len()` is property-tested for every form, so
//! ledger accounting can charge `encoded_len()` instead of hand-maintained
//! size formulas and is guaranteed to match the real byte stream.
//!
//! This module is the single serialization authority: the layout constants
//! ([`DENSE_HEADER_BYTES`] …) and primitive writers/readers
//! ([`write_f32s`], [`read_f32s_exact`], [`fletcher64`]) defined here are
//! the only place that knows how multi-byte fields are laid out. The
//! per-form `WireCodec` impls live next to their types (they need field
//! access) but are built exclusively from these primitives; the checkpoint
//! codec in the `fl` crate reuses the same helpers.
//!
//! # Byte layouts (all integers little-endian)
//!
//! | form | layout | size |
//! |---|---|---|
//! | dense | `u64` len · `f32`×len | `8 + 4·len` |
//! | sparse | `u64` dense_len · `u64` nnz · (`u32` idx, `f32` val)×nnz | `16 + 8·nnz` |
//! | quantized | `u64` levels≪56 \| len · `f32` norm · `u8` code×len | `12 + len` |
//! | ternary | `u64` len · `f32` scale · `u8`×⌈len/4⌉ (2-bit codes) | `12 + ⌈len/4⌉` |
//! | view | `u64` dense_len · `u32` nseg · (`u32` off, `u32` len)×nseg | `12 + 8·nseg` |
//!
//! # Decoder hardening
//!
//! All `decode` impls share the same defensive posture (mirrored from the
//! checkpoint codec): length arithmetic uses checked math so a lying
//! header cannot overflow, allocations are bounded by the actual buffer
//! length, and the buffer must be consumed exactly — trailing bytes are a
//! [`DecodeError::TrailingBytes`], not silently ignored. No input can make
//! a decoder panic or allocate unboundedly.

use bytes::{Buf, BufMut};

/// Header bytes of the dense wire form (`u64` element count).
pub const DENSE_HEADER_BYTES: usize = 8;

/// Header bytes of the sparse wire form (`u64` dense_len + `u64` nnz).
pub const SPARSE_HEADER_BYTES: usize = 16;

/// Bytes per transmitted sparse element (`u32` index + `f32` value).
pub const SPARSE_PAIR_BYTES: usize = 8;

/// Header bytes of the quantized wire form (`u64` packed levels/len +
/// `f32` norm).
pub const QUANTIZED_HEADER_BYTES: usize = 12;

/// Header bytes of the ternary wire form (`u64` len + `f32` scale).
pub const TERNARY_HEADER_BYTES: usize = 12;

/// Low 56 bits of the quantized header hold the coordinate count; the top
/// byte holds the level count.
pub const QUANTIZED_LEN_MASK: u64 = (1 << 56) - 1;

/// Header bytes of the view-descriptor wire form (`u64` dense_len +
/// `u32` segment count).
pub const VIEW_HEADER_BYTES: usize = 12;

/// Bytes per view-descriptor segment (`u32` offset + `u32` length).
pub const VIEW_SEGMENT_BYTES: usize = 8;

/// Error from a [`WireCodec::decode`] implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ended before the declared payload.
    Truncated,
    /// Indices were not strictly increasing or exceeded the dense length.
    InvalidIndices,
    /// The buffer continues past the declared payload.
    TrailingBytes,
    /// A header field holds a value the encoder can never produce.
    InvalidHeader,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer shorter than declared payload"),
            DecodeError::InvalidIndices => write!(f, "indices not strictly increasing in range"),
            DecodeError::TrailingBytes => write!(f, "buffer longer than declared payload"),
            DecodeError::InvalidHeader => write!(f, "header field out of encodable range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A payload with a binary wire format of statically known size.
///
/// Implementors guarantee `encoded_len() == encode().len()` — the property
/// the communication ledger relies on to charge bytes without actually
/// serialising — and that `decode` rejects any malformed input with a
/// [`DecodeError`] rather than panicking or over-allocating.
pub trait WireCodec: Sized {
    /// Exact number of bytes [`WireCodec::encode_into`] will append.
    fn encoded_len(&self) -> usize;

    /// Appends the wire encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Parses a buffer produced by [`WireCodec::encode_into`]. The whole
    /// buffer must be consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated, oversized, or otherwise
    /// malformed input; never panics and never allocates more than the
    /// buffer length justifies.
    fn decode(buf: &[u8]) -> Result<Self, DecodeError>;

    /// Convenience wrapper: encodes into a fresh, exactly-sized vector.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }
}

/// A dense `f32` delta in its wire form: the identity "compression".
///
/// Wraps the raw vector the dense baselines (FedAvg, FedAsync, …) ship, so
/// dense traffic is accounted and corrupted through the same codec
/// pipeline as every compressed form.
///
/// # Examples
///
/// ```
/// use adafl_compression::{DenseUpdate, WireCodec};
///
/// let u = DenseUpdate::new(vec![1.0, -2.5]);
/// let bytes = u.encode();
/// assert_eq!(bytes.len(), u.encoded_len());
/// assert_eq!(DenseUpdate::decode(&bytes).unwrap(), u);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseUpdate {
    values: Vec<f32>,
}

impl DenseUpdate {
    /// Wraps a dense vector.
    pub fn new(values: Vec<f32>) -> Self {
        DenseUpdate { values }
    }

    /// Number of coordinates.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` for an empty update.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The coordinates.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access for in-place scrubbing.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Unwraps into the dense vector.
    pub fn into_values(self) -> Vec<f32> {
        self.values
    }
}

impl WireCodec for DenseUpdate {
    fn encoded_len(&self) -> usize {
        DENSE_HEADER_BYTES + 4 * self.values.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.put_u64_le(self.values.len() as u64);
        write_f32s(out, &self.values);
    }

    fn decode(mut buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.len() < DENSE_HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        let len = usize::try_from(buf.get_u64_le()).map_err(|_| DecodeError::Truncated)?;
        let values = read_f32s_exact(buf, len)?;
        Ok(DenseUpdate { values })
    }
}

/// The coordinate mask of a parameter sub-view, as transmitted over the
/// wire alongside a sub-model update.
///
/// Heterogeneous-capacity clients train only a slice of the model
/// (federated-dropout/FedRolex width slicing, SLT layer freezing); the
/// server and client must agree which global coordinates the transmitted
/// values occupy. A `ViewDescriptor` is that agreement in compact form: a
/// sorted, disjoint list of `(offset, len)` coordinate segments into a
/// dense vector of `dense_len` coordinates. It is a [`WireCodec`], so its
/// `encoded_len()` is byte-charged to the communication ledger exactly
/// like the payload it frames — constrained-link savings from sub-model
/// training are measured net of descriptor overhead.
///
/// # Examples
///
/// ```
/// use adafl_compression::{ViewDescriptor, WireCodec};
///
/// let d = ViewDescriptor::new(10, vec![(2, 3), (7, 1)]);
/// assert_eq!(d.view_len(), 4);
/// let bytes = d.encode();
/// assert_eq!(bytes.len(), d.encoded_len());
/// assert_eq!(ViewDescriptor::decode(&bytes).unwrap(), d);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDescriptor {
    dense_len: usize,
    segments: Vec<(u32, u32)>,
}

impl ViewDescriptor {
    /// Builds a descriptor from sorted, disjoint, non-empty segments.
    ///
    /// # Panics
    ///
    /// Panics when a segment is empty, out of `dense_len` range, unsorted
    /// or overlapping, or when `dense_len` exceeds the `u32` coordinate
    /// space of the wire format.
    pub fn new(dense_len: usize, segments: Vec<(u32, u32)>) -> Self {
        assert!(
            u32::try_from(dense_len).is_ok(),
            "dense_len exceeds the u32 coordinate space"
        );
        let mut at = 0u64;
        for &(off, len) in &segments {
            assert!(len > 0, "view segments must be non-empty");
            assert!(
                u64::from(off) >= at,
                "view segments must be sorted and disjoint"
            );
            at = u64::from(off) + u64::from(len);
            assert!(at <= dense_len as u64, "view segment out of range");
        }
        ViewDescriptor {
            dense_len,
            segments,
        }
    }

    /// The trivial full-width view: one segment covering every coordinate.
    pub fn full(dense_len: usize) -> Self {
        let segments = if dense_len == 0 {
            Vec::new()
        } else {
            vec![(0u32, u32::try_from(dense_len).expect("checked by new"))]
        };
        ViewDescriptor::new(dense_len, segments)
    }

    /// The dense coordinate space the view slices.
    pub fn dense_len(&self) -> usize {
        self.dense_len
    }

    /// Number of coordinates the view covers (the transmitted value count).
    pub fn view_len(&self) -> usize {
        self.segments.iter().map(|&(_, len)| len as usize).sum()
    }

    /// The covering segments, sorted and disjoint.
    pub fn segments(&self) -> &[(u32, u32)] {
        &self.segments
    }

    /// Whether the view covers every coordinate.
    pub fn is_full(&self) -> bool {
        self.view_len() == self.dense_len
    }

    /// Gathers the covered coordinates of `dense` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics when `dense.len()` differs from [`ViewDescriptor::dense_len`].
    pub fn extract(&self, dense: &[f32]) -> Vec<f32> {
        assert_eq!(dense.len(), self.dense_len, "dense length mismatch");
        let mut out = Vec::with_capacity(self.view_len());
        for &(off, len) in &self.segments {
            out.extend_from_slice(&dense[off as usize..off as usize + len as usize]);
        }
        out
    }

    /// Writes view-local `values` into the covered coordinates of `dest`;
    /// uncovered coordinates are untouched.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree with the descriptor.
    pub fn scatter_into(&self, values: &[f32], dest: &mut [f32]) {
        assert_eq!(dest.len(), self.dense_len, "dense length mismatch");
        assert_eq!(values.len(), self.view_len(), "view length mismatch");
        let mut at = 0usize;
        for &(off, len) in &self.segments {
            let len = len as usize;
            dest[off as usize..off as usize + len].copy_from_slice(&values[at..at + len]);
            at += len;
        }
    }

    /// Accumulates `dest[covered] += scale · values` over the covered
    /// coordinates.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree with the descriptor.
    pub fn scatter_add_scaled(&self, values: &[f32], dest: &mut [f32], scale: f32) {
        assert_eq!(dest.len(), self.dense_len, "dense length mismatch");
        assert_eq!(values.len(), self.view_len(), "view length mismatch");
        let mut at = 0usize;
        for &(off, len) in &self.segments {
            let len = len as usize;
            for (d, v) in dest[off as usize..off as usize + len]
                .iter_mut()
                .zip(&values[at..at + len])
            {
                *d += scale * v;
            }
            at += len;
        }
    }

    /// Parses a descriptor from the *front* of `buf`, returning it with the
    /// number of bytes consumed — the entry point for composite frames
    /// where the descriptor headers a payload of another wire form.
    ///
    /// # Errors
    ///
    /// Rejects truncated buffers, segment counts the buffer cannot hold,
    /// and segments that are empty, unsorted, overlapping or out of range —
    /// with checked arithmetic and allocations bounded by the buffer
    /// length, like every decoder in this module.
    pub fn decode_prefix(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        let mut cur = buf;
        if cur.len() < VIEW_HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        let dense_len = usize::try_from(cur.get_u64_le()).map_err(|_| DecodeError::Truncated)?;
        if u32::try_from(dense_len).is_err() {
            return Err(DecodeError::InvalidHeader);
        }
        let nseg = cur.get_u32_le() as usize;
        let need = nseg
            .checked_mul(VIEW_SEGMENT_BYTES)
            .ok_or(DecodeError::Truncated)?;
        if cur.len() < need {
            return Err(DecodeError::Truncated);
        }
        let mut segments = Vec::with_capacity(nseg);
        let mut at = 0u64;
        for _ in 0..nseg {
            let off = cur.get_u32_le();
            let len = cur.get_u32_le();
            if len == 0 || u64::from(off) < at {
                return Err(DecodeError::InvalidIndices);
            }
            at = u64::from(off) + u64::from(len);
            if at > dense_len as u64 {
                return Err(DecodeError::InvalidIndices);
            }
            segments.push((off, len));
        }
        Ok((
            ViewDescriptor {
                dense_len,
                segments,
            },
            VIEW_HEADER_BYTES + need,
        ))
    }
}

impl WireCodec for ViewDescriptor {
    fn encoded_len(&self) -> usize {
        VIEW_HEADER_BYTES + VIEW_SEGMENT_BYTES * self.segments.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.put_u64_le(self.dense_len as u64);
        out.put_u32_le(self.segments.len() as u32);
        for &(off, len) in &self.segments {
            out.put_u32_le(off);
            out.put_u32_le(len);
        }
    }

    fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let (desc, consumed) = Self::decode_prefix(buf)?;
        if consumed < buf.len() {
            return Err(DecodeError::TrailingBytes);
        }
        Ok(desc)
    }
}

/// Appends `values` as consecutive little-endian `f32`s.
pub fn write_f32s<B: BufMut>(buf: &mut B, values: &[f32]) {
    for &v in values {
        buf.put_f32_le(v);
    }
}

/// Reads exactly `count` little-endian `f32`s, which must consume the
/// whole buffer.
///
/// Size arithmetic is checked and the allocation is sized from the actual
/// buffer, so a lying `count` can neither overflow nor force an oversized
/// allocation.
///
/// # Errors
///
/// [`DecodeError::Truncated`] when the buffer is too short (or `count`
/// overflows the byte count), [`DecodeError::TrailingBytes`] when bytes
/// remain after the last value.
pub fn read_f32s_exact(mut buf: &[u8], count: usize) -> Result<Vec<f32>, DecodeError> {
    let need = count.checked_mul(4).ok_or(DecodeError::Truncated)?;
    if buf.len() < need {
        return Err(DecodeError::Truncated);
    }
    if buf.len() > need {
        return Err(DecodeError::TrailingBytes);
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(buf.get_f32_le());
    }
    Ok(values)
}

/// Fletcher-style rolling checksum over `payload` (the checkpoint codec's
/// integrity check, shared here so every byte-layout primitive lives in
/// one module).
///
/// Two running sums mod `2^32 - 5` (the largest 32-bit prime), combined
/// into a `u64`. Detects truncation, byte flips and reordering.
pub fn fletcher64(payload: &[u8]) -> u64 {
    const MOD: u64 = 0xFFFF_FFFB;
    let mut a: u64 = 0xAD_F1;
    let mut b: u64 = 0;
    for &byte in payload {
        a = (a + u64::from(byte)) % MOD;
        b = (b + a) % MOD;
    }
    (b << 32) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trips_and_sizes() {
        let u = DenseUpdate::new(vec![0.5, -1.5, f32::MIN_POSITIVE]);
        let bytes = u.encode();
        assert_eq!(bytes.len(), u.encoded_len());
        assert_eq!(bytes.len(), crate::dense_wire_size(3));
        assert_eq!(DenseUpdate::decode(&bytes).unwrap(), u);
    }

    #[test]
    fn dense_decode_rejects_truncation_and_trailing() {
        let bytes = DenseUpdate::new(vec![1.0, 2.0]).encode();
        assert_eq!(
            DenseUpdate::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            DecodeError::Truncated
        );
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            DenseUpdate::decode(&long).unwrap_err(),
            DecodeError::TrailingBytes
        );
    }

    #[test]
    fn dense_decode_survives_lying_length_header() {
        // Header claims u64::MAX elements: the checked size math must
        // reject it without overflow or allocation.
        let mut buf = Vec::new();
        buf.put_u64_le(u64::MAX);
        buf.put_f32_le(1.0);
        assert_eq!(
            DenseUpdate::decode(&buf).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn fletcher64_detects_flips_and_order() {
        let base = fletcher64(b"adafl");
        assert_ne!(base, fletcher64(b"adafk"));
        assert_ne!(base, fletcher64(b"fldaa"));
        assert_ne!(base, fletcher64(b"adaf"));
        assert_eq!(base, fletcher64(b"adafl"));
    }

    #[test]
    fn view_descriptor_round_trips_and_sizes() {
        let d = ViewDescriptor::new(100, vec![(3, 7), (20, 1), (90, 10)]);
        assert_eq!(d.view_len(), 18);
        assert!(!d.is_full());
        let bytes = d.encode();
        assert_eq!(bytes.len(), d.encoded_len());
        assert_eq!(bytes.len(), VIEW_HEADER_BYTES + 3 * VIEW_SEGMENT_BYTES);
        assert_eq!(ViewDescriptor::decode(&bytes).unwrap(), d);
    }

    #[test]
    fn view_descriptor_full_covers_everything() {
        let d = ViewDescriptor::full(5);
        assert!(d.is_full());
        assert_eq!(d.view_len(), 5);
        assert_eq!(d.segments(), &[(0, 5)]);
        let empty = ViewDescriptor::full(0);
        assert!(empty.is_full());
        assert_eq!(empty.view_len(), 0);
    }

    #[test]
    fn view_descriptor_extract_scatter_round_trip() {
        let d = ViewDescriptor::new(8, vec![(1, 2), (5, 1)]);
        let dense: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let view = d.extract(&dense);
        assert_eq!(view, vec![1.0, 2.0, 5.0]);
        let mut dest = vec![-1.0f32; 8];
        d.scatter_into(&view, &mut dest);
        assert_eq!(dest, vec![-1.0, 1.0, 2.0, -1.0, -1.0, 5.0, -1.0, -1.0]);
        d.scatter_add_scaled(&view, &mut dest, 2.0);
        assert_eq!(dest[1], 3.0);
        assert_eq!(dest[0], -1.0);
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn view_descriptor_rejects_overlap() {
        let _ = ViewDescriptor::new(10, vec![(0, 5), (4, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn view_descriptor_rejects_out_of_range() {
        let _ = ViewDescriptor::new(10, vec![(8, 3)]);
    }

    #[test]
    fn view_descriptor_decode_rejects_malformed() {
        let d = ViewDescriptor::new(10, vec![(2, 3)]);
        let bytes = d.encode();
        assert_eq!(
            ViewDescriptor::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            DecodeError::Truncated
        );
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            ViewDescriptor::decode(&long).unwrap_err(),
            DecodeError::TrailingBytes
        );
        // Unsorted segments on the wire.
        let bad = ViewDescriptor {
            dense_len: 10,
            segments: vec![(5, 2), (1, 1)],
        };
        assert_eq!(
            ViewDescriptor::decode(&bad.encode()).unwrap_err(),
            DecodeError::InvalidIndices
        );
        // Zero-length segment on the wire.
        let zero = ViewDescriptor {
            dense_len: 10,
            segments: vec![(1, 0)],
        };
        assert_eq!(
            ViewDescriptor::decode(&zero.encode()).unwrap_err(),
            DecodeError::InvalidIndices
        );
        // dense_len beyond the u32 coordinate space.
        let mut huge = Vec::new();
        huge.put_u64_le(u64::from(u32::MAX) + 1);
        huge.put_u32_le(0);
        assert_eq!(
            ViewDescriptor::decode(&huge).unwrap_err(),
            DecodeError::InvalidHeader
        );
        // Segment count the buffer cannot hold.
        let mut lying = Vec::new();
        lying.put_u64_le(10);
        lying.put_u32_le(u32::MAX);
        assert_eq!(
            ViewDescriptor::decode(&lying).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn view_descriptor_decode_prefix_reports_consumption() {
        let d = ViewDescriptor::new(6, vec![(0, 2), (4, 2)]);
        let mut framed = d.encode();
        let header = framed.len();
        framed.extend_from_slice(&[0xAB; 9]);
        let (parsed, consumed) = ViewDescriptor::decode_prefix(&framed).unwrap();
        assert_eq!(parsed, d);
        assert_eq!(consumed, header);
    }

    #[test]
    fn read_f32s_exact_is_strict() {
        let mut buf = Vec::new();
        write_f32s(&mut buf, &[1.0, 2.0]);
        assert_eq!(read_f32s_exact(&buf, 2).unwrap(), vec![1.0, 2.0]);
        assert_eq!(
            read_f32s_exact(&buf, 3).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            read_f32s_exact(&buf, 1).unwrap_err(),
            DecodeError::TrailingBytes
        );
        assert_eq!(
            read_f32s_exact(&buf, usize::MAX).unwrap_err(),
            DecodeError::Truncated
        );
    }
}
