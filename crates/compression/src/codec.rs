//! The wire-codec layer: one vocabulary for turning updates into bytes.
//!
//! Every payload that crosses the simulated network — dense deltas, DGC
//! sparse updates, QSGD quantized updates, TernGrad ternary updates — is a
//! [`WireCodec`]: it knows its exact encoded size up front
//! ([`WireCodec::encoded_len`]), serialises itself into a byte buffer
//! ([`WireCodec::encode_into`]), and parses back defensively
//! ([`WireCodec::decode`]). The invariant
//! `encoded_len() == encode().len()` is property-tested for every form, so
//! ledger accounting can charge `encoded_len()` instead of hand-maintained
//! size formulas and is guaranteed to match the real byte stream.
//!
//! This module is the single serialization authority: the layout constants
//! ([`DENSE_HEADER_BYTES`] …) and primitive writers/readers
//! ([`write_f32s`], [`read_f32s_exact`], [`fletcher64`]) defined here are
//! the only place that knows how multi-byte fields are laid out. The
//! per-form `WireCodec` impls live next to their types (they need field
//! access) but are built exclusively from these primitives; the checkpoint
//! codec in the `fl` crate reuses the same helpers.
//!
//! # Byte layouts (all integers little-endian)
//!
//! | form | layout | size |
//! |---|---|---|
//! | dense | `u64` len · `f32`×len | `8 + 4·len` |
//! | sparse | `u64` dense_len · `u64` nnz · (`u32` idx, `f32` val)×nnz | `16 + 8·nnz` |
//! | quantized | `u64` levels≪56 \| len · `f32` norm · `u8` code×len | `12 + len` |
//! | ternary | `u64` len · `f32` scale · `u8`×⌈len/4⌉ (2-bit codes) | `12 + ⌈len/4⌉` |
//!
//! # Decoder hardening
//!
//! All `decode` impls share the same defensive posture (mirrored from the
//! checkpoint codec): length arithmetic uses checked math so a lying
//! header cannot overflow, allocations are bounded by the actual buffer
//! length, and the buffer must be consumed exactly — trailing bytes are a
//! [`DecodeError::TrailingBytes`], not silently ignored. No input can make
//! a decoder panic or allocate unboundedly.

use bytes::{Buf, BufMut};

/// Header bytes of the dense wire form (`u64` element count).
pub const DENSE_HEADER_BYTES: usize = 8;

/// Header bytes of the sparse wire form (`u64` dense_len + `u64` nnz).
pub const SPARSE_HEADER_BYTES: usize = 16;

/// Bytes per transmitted sparse element (`u32` index + `f32` value).
pub const SPARSE_PAIR_BYTES: usize = 8;

/// Header bytes of the quantized wire form (`u64` packed levels/len +
/// `f32` norm).
pub const QUANTIZED_HEADER_BYTES: usize = 12;

/// Header bytes of the ternary wire form (`u64` len + `f32` scale).
pub const TERNARY_HEADER_BYTES: usize = 12;

/// Low 56 bits of the quantized header hold the coordinate count; the top
/// byte holds the level count.
pub const QUANTIZED_LEN_MASK: u64 = (1 << 56) - 1;

/// Error from a [`WireCodec::decode`] implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ended before the declared payload.
    Truncated,
    /// Indices were not strictly increasing or exceeded the dense length.
    InvalidIndices,
    /// The buffer continues past the declared payload.
    TrailingBytes,
    /// A header field holds a value the encoder can never produce.
    InvalidHeader,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer shorter than declared payload"),
            DecodeError::InvalidIndices => write!(f, "indices not strictly increasing in range"),
            DecodeError::TrailingBytes => write!(f, "buffer longer than declared payload"),
            DecodeError::InvalidHeader => write!(f, "header field out of encodable range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A payload with a binary wire format of statically known size.
///
/// Implementors guarantee `encoded_len() == encode().len()` — the property
/// the communication ledger relies on to charge bytes without actually
/// serialising — and that `decode` rejects any malformed input with a
/// [`DecodeError`] rather than panicking or over-allocating.
pub trait WireCodec: Sized {
    /// Exact number of bytes [`WireCodec::encode_into`] will append.
    fn encoded_len(&self) -> usize;

    /// Appends the wire encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Parses a buffer produced by [`WireCodec::encode_into`]. The whole
    /// buffer must be consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated, oversized, or otherwise
    /// malformed input; never panics and never allocates more than the
    /// buffer length justifies.
    fn decode(buf: &[u8]) -> Result<Self, DecodeError>;

    /// Convenience wrapper: encodes into a fresh, exactly-sized vector.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }
}

/// A dense `f32` delta in its wire form: the identity "compression".
///
/// Wraps the raw vector the dense baselines (FedAvg, FedAsync, …) ship, so
/// dense traffic is accounted and corrupted through the same codec
/// pipeline as every compressed form.
///
/// # Examples
///
/// ```
/// use adafl_compression::{DenseUpdate, WireCodec};
///
/// let u = DenseUpdate::new(vec![1.0, -2.5]);
/// let bytes = u.encode();
/// assert_eq!(bytes.len(), u.encoded_len());
/// assert_eq!(DenseUpdate::decode(&bytes).unwrap(), u);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseUpdate {
    values: Vec<f32>,
}

impl DenseUpdate {
    /// Wraps a dense vector.
    pub fn new(values: Vec<f32>) -> Self {
        DenseUpdate { values }
    }

    /// Number of coordinates.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` for an empty update.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The coordinates.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access for in-place scrubbing.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Unwraps into the dense vector.
    pub fn into_values(self) -> Vec<f32> {
        self.values
    }
}

impl WireCodec for DenseUpdate {
    fn encoded_len(&self) -> usize {
        DENSE_HEADER_BYTES + 4 * self.values.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.put_u64_le(self.values.len() as u64);
        write_f32s(out, &self.values);
    }

    fn decode(mut buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.len() < DENSE_HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        let len = usize::try_from(buf.get_u64_le()).map_err(|_| DecodeError::Truncated)?;
        let values = read_f32s_exact(buf, len)?;
        Ok(DenseUpdate { values })
    }
}

/// Appends `values` as consecutive little-endian `f32`s.
pub fn write_f32s<B: BufMut>(buf: &mut B, values: &[f32]) {
    for &v in values {
        buf.put_f32_le(v);
    }
}

/// Reads exactly `count` little-endian `f32`s, which must consume the
/// whole buffer.
///
/// Size arithmetic is checked and the allocation is sized from the actual
/// buffer, so a lying `count` can neither overflow nor force an oversized
/// allocation.
///
/// # Errors
///
/// [`DecodeError::Truncated`] when the buffer is too short (or `count`
/// overflows the byte count), [`DecodeError::TrailingBytes`] when bytes
/// remain after the last value.
pub fn read_f32s_exact(mut buf: &[u8], count: usize) -> Result<Vec<f32>, DecodeError> {
    let need = count.checked_mul(4).ok_or(DecodeError::Truncated)?;
    if buf.len() < need {
        return Err(DecodeError::Truncated);
    }
    if buf.len() > need {
        return Err(DecodeError::TrailingBytes);
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(buf.get_f32_le());
    }
    Ok(values)
}

/// Fletcher-style rolling checksum over `payload` (the checkpoint codec's
/// integrity check, shared here so every byte-layout primitive lives in
/// one module).
///
/// Two running sums mod `2^32 - 5` (the largest 32-bit prime), combined
/// into a `u64`. Detects truncation, byte flips and reordering.
pub fn fletcher64(payload: &[u8]) -> u64 {
    const MOD: u64 = 0xFFFF_FFFB;
    let mut a: u64 = 0xAD_F1;
    let mut b: u64 = 0;
    for &byte in payload {
        a = (a + u64::from(byte)) % MOD;
        b = (b + a) % MOD;
    }
    (b << 32) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trips_and_sizes() {
        let u = DenseUpdate::new(vec![0.5, -1.5, f32::MIN_POSITIVE]);
        let bytes = u.encode();
        assert_eq!(bytes.len(), u.encoded_len());
        assert_eq!(bytes.len(), crate::dense_wire_size(3));
        assert_eq!(DenseUpdate::decode(&bytes).unwrap(), u);
    }

    #[test]
    fn dense_decode_rejects_truncation_and_trailing() {
        let bytes = DenseUpdate::new(vec![1.0, 2.0]).encode();
        assert_eq!(
            DenseUpdate::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            DecodeError::Truncated
        );
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            DenseUpdate::decode(&long).unwrap_err(),
            DecodeError::TrailingBytes
        );
    }

    #[test]
    fn dense_decode_survives_lying_length_header() {
        // Header claims u64::MAX elements: the checked size math must
        // reject it without overflow or allocation.
        let mut buf = Vec::new();
        buf.put_u64_le(u64::MAX);
        buf.put_f32_le(1.0);
        assert_eq!(
            DenseUpdate::decode(&buf).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn fletcher64_detects_flips_and_order() {
        let base = fletcher64(b"adafl");
        assert_ne!(base, fletcher64(b"adafk"));
        assert_ne!(base, fletcher64(b"fldaa"));
        assert_ne!(base, fletcher64(b"adaf"));
        assert_eq!(base, fletcher64(b"adafl"));
    }

    #[test]
    fn read_f32s_exact_is_strict() {
        let mut buf = Vec::new();
        write_f32s(&mut buf, &[1.0, 2.0]);
        assert_eq!(read_f32s_exact(&buf, 2).unwrap(), vec![1.0, 2.0]);
        assert_eq!(
            read_f32s_exact(&buf, 3).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            read_f32s_exact(&buf, 1).unwrap_err(),
            DecodeError::TrailingBytes
        );
        assert_eq!(
            read_f32s_exact(&buf, usize::MAX).unwrap_err(),
            DecodeError::Truncated
        );
    }
}
