//! Telemetry helper shared by every compression call site.

use adafl_telemetry::{names, SharedRecorder};

/// Records one compression outcome for `strategy`: pre/post byte counters
/// (`compression.bytes_pre.<strategy>` / `compression.bytes_post.<strategy>`)
/// and the achieved wire/raw ratio histogram. No-op when the recorder is
/// disabled, so uninstrumented runs pay only a virtual call.
pub fn record_compression(
    recorder: &SharedRecorder,
    strategy: &str,
    bytes_pre: usize,
    bytes_post: usize,
) {
    if !recorder.enabled() {
        return;
    }
    recorder.counter_add(
        &names::scoped(names::COMPRESSION_BYTES_PRE, strategy),
        bytes_pre as u64,
    );
    recorder.counter_add(
        &names::scoped(names::COMPRESSION_BYTES_POST, strategy),
        bytes_post as u64,
    );
    if bytes_pre > 0 {
        recorder.histogram_record(
            &names::scoped(names::COMPRESSION_RATIO, strategy),
            bytes_post as f64 / bytes_pre as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adafl_telemetry::InMemoryRecorder;

    #[test]
    fn scoped_counters_and_ratio() {
        let rec = InMemoryRecorder::shared();
        let shared: SharedRecorder = rec.clone();
        record_compression(&shared, "dgc", 4000, 40);
        record_compression(&shared, "dgc", 4000, 40);
        let t = rec.snapshot();
        assert_eq!(t.counters["compression.bytes_pre.dgc"], 8000);
        assert_eq!(t.counters["compression.bytes_post.dgc"], 80);
        let h = &t.histograms["compression.ratio.dgc"];
        assert_eq!(h.count(), 2);
        assert!((h.mean() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn noop_recorder_records_nothing() {
        // Mostly a compile-time statement: the helper takes the shared
        // handle the engines hold, whatever recorder backs it.
        record_compression(&adafl_telemetry::noop(), "topk", 100, 10);
    }
}
