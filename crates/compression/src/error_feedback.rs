//! Error-feedback compression (the EF-SGD / DoubleSqueeze [15] idea).
//!
//! Wraps any lossy compression step with a residual memory: the compression
//! error of round `t` is added back to the input of round `t + 1`, so the
//! *cumulative* transmitted signal converges to the cumulative input even
//! when every individual round is heavily compressed. DGC achieves this
//! with index-wise accumulation; error feedback is the general form that
//! also works for quantizers (QSGD, TernGrad) where "untransmitted mass"
//! is spread across all coordinates.

/// Error-feedback wrapper around an arbitrary compression function.
///
/// # Examples
///
/// ```
/// use adafl_compression::{top_k, ErrorFeedback};
///
/// let mut ef = ErrorFeedback::new(4);
/// let sent = ef.compress(&[1.0, 0.5, 0.0, 0.0], |g| top_k(g, 1).to_dense());
/// assert_eq!(sent, vec![1.0, 0.0, 0.0, 0.0]);
/// // The 0.5 lives on in the residual and is sent next round.
/// let sent2 = ef.compress(&[0.0; 4], |g| top_k(g, 1).to_dense());
/// assert_eq!(sent2, vec![0.0, 0.5, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFeedback {
    residual: Vec<f32>,
}

impl ErrorFeedback {
    /// Creates a wrapper for gradients of length `dim`.
    ///
    /// # Panics
    ///
    /// Panics when `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "gradient dimension must be positive");
        ErrorFeedback {
            residual: vec![0.0; dim],
        }
    }

    /// Gradient dimension.
    pub fn dim(&self) -> usize {
        self.residual.len()
    }

    /// L2 norm of the carried-over compression error.
    pub fn residual_norm(&self) -> f32 {
        adafl_tensor::vecops::l2_norm(&self.residual)
    }

    /// Compresses `gradient + residual` with `compressor` (which returns
    /// the dense decoding of whatever it transmitted) and retains the new
    /// error.
    ///
    /// # Panics
    ///
    /// Panics when `gradient.len()` differs from [`ErrorFeedback::dim`] or
    /// the compressor returns a different length.
    pub fn compress(
        &mut self,
        gradient: &[f32],
        compressor: impl FnOnce(&[f32]) -> Vec<f32>,
    ) -> Vec<f32> {
        assert_eq!(gradient.len(), self.dim(), "gradient length mismatch");
        let corrected: Vec<f32> = gradient
            .iter()
            .zip(&self.residual)
            .map(|(g, r)| g + r)
            .collect();
        let sent = compressor(&corrected);
        assert_eq!(sent.len(), self.dim(), "compressor changed the length");
        for ((r, c), s) in self.residual.iter_mut().zip(&corrected).zip(&sent) {
            *r = c - s;
        }
        sent
    }

    /// Drops the residual (when resynchronising to a fresh model).
    pub fn reset(&mut self) {
        self.residual.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{top_k, QsgdQuantizer, TernGrad};

    #[test]
    fn no_compression_leaves_no_residual() {
        let mut ef = ErrorFeedback::new(3);
        let sent = ef.compress(&[1.0, 2.0, 3.0], |g| g.to_vec());
        assert_eq!(sent, vec![1.0, 2.0, 3.0]);
        assert_eq!(ef.residual_norm(), 0.0);
    }

    #[test]
    fn cumulative_mass_is_conserved_with_top_k() {
        let mut ef = ErrorFeedback::new(8);
        let inputs: Vec<Vec<f32>> = (0..6)
            .map(|r| (0..8).map(|i| ((r * 8 + i) % 5) as f32 - 2.0).collect())
            .collect();
        let mut transmitted = [0.0f32; 8];
        for g in &inputs {
            let sent = ef.compress(g, |x| top_k(x, 2).to_dense());
            for (t, s) in transmitted.iter_mut().zip(&sent) {
                *t += s;
            }
        }
        // Drain the residual.
        for _ in 0..32 {
            let sent = ef.compress(&[0.0; 8], |x| top_k(x, 2).to_dense());
            for (t, s) in transmitted.iter_mut().zip(&sent) {
                *t += s;
            }
        }
        let mut expected = vec![0.0f32; 8];
        for g in &inputs {
            for (e, x) in expected.iter_mut().zip(g) {
                *e += x;
            }
        }
        for (t, e) in transmitted.iter().zip(&expected) {
            assert!((t - e).abs() < 1e-3, "mass leak: {t} vs {e}");
        }
    }

    #[test]
    fn works_with_quantizers() {
        let mut ef = ErrorFeedback::new(4);
        let mut q = QsgdQuantizer::new(2, 7);
        let g = [0.9f32, -0.3, 0.1, 0.5];
        let sent = ef.compress(&g, |x| q.quantize(x).to_dense());
        assert_eq!(sent.len(), 4);
        // Residual equals input minus transmitted.
        for ((r, gi), s) in ef.residual.iter().zip(&g).zip(&sent) {
            assert!((r - (gi - s)).abs() < 1e-6);
        }
    }

    #[test]
    fn works_with_terngrad() {
        let mut ef = ErrorFeedback::new(3);
        let mut t = TernGrad::new(9);
        let sent = ef.compress(&[1.0, -0.2, 0.0], |x| t.ternarize(x).to_dense());
        assert_eq!(sent.len(), 3);
    }

    #[test]
    fn reset_clears_residual() {
        let mut ef = ErrorFeedback::new(2);
        ef.compress(&[1.0, 1.0], |_| vec![0.0, 0.0]);
        assert!(ef.residual_norm() > 0.0);
        ef.reset();
        assert_eq!(ef.residual_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "changed the length")]
    fn length_changing_compressor_panics() {
        ErrorFeedback::new(2).compress(&[1.0, 2.0], |_| vec![0.0]);
    }
}
