//! Magnitude top-k sparsification.

use crate::SparseUpdate;

/// Keeps the `k` largest-magnitude elements of `dense`, returning them as a
/// [`SparseUpdate`].
///
/// Ties at the threshold magnitude are broken by index order (lower indices
/// win), so the result is deterministic. `k = 0` yields an empty update;
/// `k ≥ len` yields a dense-equivalent update.
///
/// # Examples
///
/// ```
/// use adafl_compression::top_k;
///
/// let u = top_k(&[0.1, -5.0, 3.0, 0.0], 2);
/// assert_eq!(u.indices(), &[1, 2]);
/// assert_eq!(u.values(), &[-5.0, 3.0]);
/// ```
pub fn top_k(dense: &[f32], k: usize) -> SparseUpdate {
    let n = dense.len();
    if k == 0 || n == 0 {
        return SparseUpdate::zero(n);
    }
    let k = k.min(n);
    // Find the k-th largest magnitude with a partial sort of index keys.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.select_nth_unstable_by(k - 1, |&a, &b| {
        let ma = dense[a as usize].abs();
        let mb = dense[b as usize].abs();
        mb.partial_cmp(&ma)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    let mut keep: Vec<u32> = order[..k].to_vec();
    keep.sort_unstable();
    let values: Vec<f32> = keep.iter().map(|&i| dense[i as usize]).collect();
    SparseUpdate::new(keep, values, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_largest_magnitudes() {
        let u = top_k(&[1.0, -10.0, 5.0, -2.0], 2);
        assert_eq!(u.indices(), &[1, 2]);
        assert_eq!(u.values(), &[-10.0, 5.0]);
    }

    #[test]
    fn k_zero_is_empty() {
        let u = top_k(&[1.0, 2.0], 0);
        assert_eq!(u.nnz(), 0);
        assert_eq!(u.dense_len(), 2);
    }

    #[test]
    fn k_larger_than_len_keeps_everything() {
        let u = top_k(&[1.0, 2.0], 10);
        assert_eq!(u.nnz(), 2);
        assert_eq!(u.to_dense(), vec![1.0, 2.0]);
    }

    #[test]
    fn ties_resolve_to_lower_indices() {
        let u = top_k(&[1.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(u.indices(), &[0, 1]);
    }

    #[test]
    fn empty_input_is_fine() {
        let u = top_k(&[], 3);
        assert_eq!(u.nnz(), 0);
        assert_eq!(u.dense_len(), 0);
    }

    #[test]
    fn reconstruction_error_shrinks_with_k() {
        let dense: Vec<f32> = (0..100).map(|i| ((i * 37) % 19) as f32 - 9.0).collect();
        let err = |k: usize| {
            let d = top_k(&dense, k).to_dense();
            dense
                .iter()
                .zip(&d)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f32>()
        };
        assert!(err(50) < err(10));
        assert!(err(100) < 1e-9);
    }
}
