//! Property-based tests for the compression stack.

use adafl_compression::{top_k, DgcCompressor, QsgdQuantizer, SparseUpdate, WireCodec};
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..50.0, len)
}

proptest! {
    #[test]
    fn top_k_keeps_exactly_k(dense in vec_f32(64), k in 0usize..80) {
        let u = top_k(&dense, k);
        prop_assert_eq!(u.nnz(), k.min(64));
        prop_assert_eq!(u.dense_len(), 64);
    }

    #[test]
    fn top_k_values_dominate_dropped_values(dense in vec_f32(32), k in 1usize..32) {
        let u = top_k(&dense, k);
        let kept_min = u.values().iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        let kept: std::collections::HashSet<u32> = u.indices().iter().copied().collect();
        for (i, v) in dense.iter().enumerate() {
            if !kept.contains(&(i as u32)) {
                prop_assert!(v.abs() <= kept_min + 1e-6);
            }
        }
    }

    #[test]
    fn sparse_codec_round_trips(dense in vec_f32(48), k in 0usize..48) {
        let u = top_k(&dense, k);
        let decoded = SparseUpdate::decode(&u.encode()).unwrap();
        prop_assert_eq!(decoded, u);
    }

    #[test]
    fn dgc_conserves_gradient_mass(grads in proptest::collection::vec(vec_f32(16), 1..6)) {
        // With momentum 0 and no clipping, transmitted + residual == sum of
        // inputs at every point in time.
        let mut dgc = DgcCompressor::new(16, 0.0, 1e12);
        let mut transmitted = vec![0.0f32; 16];
        let mut expected = vec![0.0f32; 16];
        for g in &grads {
            dgc.compress(g, 8.0).add_into(&mut transmitted, 1.0);
            for (e, x) in expected.iter_mut().zip(g) {
                *e += x;
            }
        }
        // Drain residual.
        for _ in 0..64 {
            dgc.compress(&[0.0; 16], 8.0).add_into(&mut transmitted, 1.0);
        }
        for (t, e) in transmitted.iter().zip(&expected) {
            prop_assert!((t - e).abs() < 1e-2 * (1.0 + e.abs()), "mass leak {t} vs {e}");
        }
    }

    #[test]
    fn dgc_nnz_matches_ratio(g in vec_f32(100), ratio in 1.0f32..100.0) {
        let mut dgc = DgcCompressor::new(100, 0.9, 10.0);
        let u = dgc.compress(&g, ratio);
        let expected = ((100.0 / ratio).round() as usize).max(1);
        prop_assert_eq!(u.nnz(), expected.min(100));
    }

    #[test]
    fn quantizer_error_bounded_by_norm(g in vec_f32(32)) {
        let mut q = QsgdQuantizer::new(8, 9);
        let u = q.quantize(&g);
        let d = u.to_dense();
        let norm = adafl_tensor::vecops::l2_norm(&g);
        for (a, b) in g.iter().zip(&d) {
            // Each coordinate is off by at most one quantization step.
            prop_assert!((a - b).abs() <= norm / 8.0 + 1e-4);
        }
    }
}
