//! Decoder-robustness properties for every [`WireCodec`] implementation,
//! mirroring the checkpoint codec's suite: any strict prefix and any
//! lying length header must produce a [`DecodeError`]; no input — flipped,
//! truncated, or arbitrary — may panic or force an oversized allocation.
//!
//! CI's `codec-robustness` job reruns this binary with
//! `PROPTEST_CASES=2048` in release mode.

use adafl_compression::{
    top_k, DenseUpdate, QsgdQuantizer, QuantizedUpdate, SparseUpdate, TernGrad, TernaryUpdate,
    WireCodec,
};
use proptest::prelude::*;

fn gradient() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..50.0, 0..64)
}

/// Encodes each of the four wire forms built from the same gradient, so
/// every property exercises every codec on every case.
fn all_frames(g: &[f32], k: usize, levels: u8, seed: u64) -> Vec<Vec<u8>> {
    vec![
        DenseUpdate::new(g.to_vec()).encode(),
        top_k(g, k.min(g.len())).encode(),
        QsgdQuantizer::new(levels, seed).quantize(g).encode(),
        TernGrad::new(seed).ternarize(g).encode(),
    ]
}

/// Decodes `buf` with the codec that produced frame `form` (the order of
/// [`all_frames`]), discarding the value: the property under test is
/// "returns, never panics".
fn decode_form(form: usize, buf: &[u8]) -> Result<(), adafl_compression::DecodeError> {
    match form {
        0 => DenseUpdate::decode(buf).map(|_| ()),
        1 => SparseUpdate::decode(buf).map(|_| ()),
        2 => QuantizedUpdate::decode(buf).map(|_| ()),
        _ => TernaryUpdate::decode(buf).map(|_| ()),
    }
}

proptest! {
    #[test]
    fn round_trips_are_lossless(g in gradient(), k in 1usize..64, levels in 2u8..16, seed in 0u64..1000) {
        let dense = DenseUpdate::new(g.clone());
        prop_assert_eq!(DenseUpdate::decode(&dense.encode()).unwrap(), dense);

        let sparse = top_k(&g, k.min(g.len()));
        prop_assert_eq!(SparseUpdate::decode(&sparse.encode()).unwrap(), sparse);

        let quantized = QsgdQuantizer::new(levels, seed).quantize(&g);
        prop_assert_eq!(QuantizedUpdate::decode(&quantized.encode()).unwrap(), quantized);

        let ternary = TernGrad::new(seed).ternarize(&g);
        prop_assert_eq!(TernaryUpdate::decode(&ternary.encode()).unwrap(), ternary);
    }

    #[test]
    fn encoded_len_matches_actual_bytes(g in gradient(), k in 1usize..64, levels in 2u8..16, seed in 0u64..1000) {
        let dense = DenseUpdate::new(g.clone());
        prop_assert_eq!(dense.encode().len(), dense.encoded_len());
        let sparse = top_k(&g, k.min(g.len()));
        prop_assert_eq!(sparse.encode().len(), sparse.encoded_len());
        let quantized = QsgdQuantizer::new(levels, seed).quantize(&g);
        prop_assert_eq!(quantized.encode().len(), quantized.encoded_len());
        let ternary = TernGrad::new(seed).ternarize(&g);
        prop_assert_eq!(ternary.encode().len(), ternary.encoded_len());
    }

    #[test]
    fn any_strict_prefix_is_an_error(
        g in gradient(),
        k in 1usize..64,
        levels in 2u8..16,
        seed in 0u64..1000,
        cut in 0.0f64..1.0,
    ) {
        for (form, bytes) in all_frames(&g, k, levels, seed).into_iter().enumerate() {
            let len = (cut * bytes.len() as f64) as usize; // always < full length
            prop_assert!(
                decode_form(form, &bytes[..len]).is_err(),
                "form {form}: decoding a {len}-byte prefix of a {}-byte frame succeeded",
                bytes.len()
            );
        }
    }

    #[test]
    fn single_byte_flips_never_panic(
        g in gradient(),
        k in 1usize..64,
        levels in 2u8..16,
        seed in 0u64..1000,
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // A flipped value byte may still decode (floats are opaque); the
        // property is that the decoder always returns instead of panicking
        // or over-allocating.
        for (form, mut bytes) in all_frames(&g, k, levels, seed).into_iter().enumerate() {
            let idx = ((pos * bytes.len() as f64) as usize).min(bytes.len() - 1);
            bytes[idx] ^= 1 << bit;
            let _ = decode_form(form, &bytes);
        }
    }

    #[test]
    fn lying_length_header_is_an_error(
        g in gradient(),
        k in 1usize..64,
        levels in 2u8..16,
        seed in 0u64..1000,
        lie in 1u64..1_000_000,
    ) {
        // Every form leads with a u64 element count (sparse's nnz is the
        // second u64; the first — dense_len — only bounds indices). Adding
        // a nonzero lie desynchronises the declared and actual payload
        // sizes, which exact-consumption decoding must reject without
        // trusting the header for its allocation.
        for (form, mut bytes) in all_frames(&g, k, levels, seed).into_iter().enumerate() {
            let at = if form == 1 { 8 } else { 0 };
            let mut field = [0u8; 8];
            field.copy_from_slice(&bytes[at..at + 8]);
            let truth = u64::from_le_bytes(field);
            let lied = match form {
                // Keep the quantized level byte (top 8 bits) intact so the
                // lie targets the length field, not the level field.
                2 => (truth & !((1u64 << 56) - 1)) | ((truth + lie) & ((1u64 << 56) - 1)),
                // Ternary packs four coordinates per byte: scale the lie so
                // the declared packed length always actually moves.
                3 => truth + lie * 4,
                _ => truth + lie,
            };
            prop_assume!(lied != truth);
            bytes[at..at + 8].copy_from_slice(&lied.to_le_bytes());
            prop_assert!(
                decode_form(form, &bytes).is_err(),
                "form {form}: lying count {lied} (truth {truth}) decoded successfully"
            );
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(0u8..255, 0..160)) {
        for form in 0..4 {
            let _ = decode_form(form, &data);
        }
    }
}
