//! Flat-vector kernels used at the federated-learning boundary.
//!
//! Model updates travel between clients and the server as plain `&[f32]`
//! slices. The AdaFL utility score, gradient aggregation and compression all
//! operate on these flat vectors, so the kernels live here in the tensor
//! crate where both `adafl-nn` and `adafl-fl` can share them.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Cosine similarity in `[-1, 1]`.
///
/// Returns `0.0` when either vector has zero norm — the conventional choice
/// for "no directional information", which the AdaFL utility score treats as
/// neutral.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity length mismatch");
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// In-place `a += k * b`.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn axpy(a: &mut [f32], k: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += k * y;
    }
}

/// In-place `a *= k`.
pub fn scale(a: &mut [f32], k: f32) {
    for x in a.iter_mut() {
        *x *= k;
    }
}

/// Weighted average of vectors: `Σ wᵢ·vᵢ / Σ wᵢ`.
///
/// Returns `None` when `vectors` is empty, the weights sum to zero, or any
/// vector length differs from the first.
pub fn weighted_average(vectors: &[&[f32]], weights: &[f32]) -> Option<Vec<f32>> {
    if vectors.is_empty() || vectors.len() != weights.len() {
        return None;
    }
    let len = vectors[0].len();
    if vectors.iter().any(|v| v.len() != len) {
        return None;
    }
    let total: f32 = weights.iter().sum();
    if total == 0.0 {
        return None;
    }
    let mut out = vec![0.0f32; len];
    for (v, &w) in vectors.iter().zip(weights) {
        axpy(&mut out, w / total, v);
    }
    Some(out)
}

/// Gathers the coordinates covered by `segments` (sorted, disjoint
/// `(offset, len)` ranges into `src`) into `out`, clearing it first.
///
/// These segment kernels are the flat-vector face of parameter sub-views:
/// a sliced weight matrix (an output-neuron column range of a row-major
/// gemm operand) flattens to a run of strided segments, and gathering
/// them materialises the sub-view's contiguous value vector.
///
/// # Panics
///
/// Panics when a segment reaches past `src.len()`.
pub fn gather_segments_into(src: &[f32], segments: &[(u32, u32)], out: &mut Vec<f32>) {
    out.clear();
    out.reserve(segments.iter().map(|&(_, len)| len as usize).sum());
    for &(off, len) in segments {
        out.extend_from_slice(&src[off as usize..off as usize + len as usize]);
    }
}

/// Scatters `values` (a vector gathered by [`gather_segments_into`]) back
/// into the covered coordinates of `dst`; uncovered coordinates are left
/// untouched.
///
/// # Panics
///
/// Panics when `values.len()` differs from the segments' total length or a
/// segment reaches past `dst.len()`.
pub fn scatter_segments(dst: &mut [f32], segments: &[(u32, u32)], values: &[f32]) {
    let mut at = 0usize;
    for &(off, len) in segments {
        let len = len as usize;
        dst[off as usize..off as usize + len].copy_from_slice(&values[at..at + len]);
        at += len;
    }
    assert_eq!(at, values.len(), "segment/value length mismatch");
}

/// Accumulates `dst[covered] += k · values` over the covered coordinates,
/// the scatter-add counterpart of [`scatter_segments`].
///
/// # Panics
///
/// Panics when `values.len()` differs from the segments' total length or a
/// segment reaches past `dst.len()`.
pub fn scatter_add_segments(dst: &mut [f32], segments: &[(u32, u32)], values: &[f32], k: f32) {
    let mut at = 0usize;
    for &(off, len) in segments {
        let len = len as usize;
        axpy(
            &mut dst[off as usize..off as usize + len],
            k,
            &values[at..at + len],
        );
        at += len;
    }
    assert_eq!(at, values.len(), "segment/value length mismatch");
}

/// Zeroes every coordinate of `buf` *outside* the covered segments — the
/// gradient mask of sub-view training (frozen coordinates must not move).
///
/// # Panics
///
/// Panics when segments are unsorted, overlapping, or out of range.
pub fn zero_outside_segments(buf: &mut [f32], segments: &[(u32, u32)]) {
    let mut at = 0usize;
    for &(off, len) in segments {
        let off = off as usize;
        assert!(off >= at, "segments must be sorted and disjoint");
        buf[at..off].fill(0.0);
        at = off + len as usize;
    }
    buf[at..].fill(0.0);
}

/// Clips `a` in place to the L2 ball of radius `max_norm`, returning the
/// scaling factor applied (1.0 when no clipping occurred).
///
/// Used by DGC's local gradient clipping.
pub fn clip_l2(a: &mut [f32], max_norm: f32) -> f32 {
    let n = l2_norm(a);
    if n > max_norm && n > 0.0 {
        let k = max_norm / n;
        scale(a, k);
        k
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert!((l2_distance(&[1.0, 1.0], &[4.0, 5.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-3.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_neutral() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_similarity(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_is_clamped_against_rounding() {
        let a = [1e-20f32, 1e-20, 1e-20];
        let c = cosine_similarity(&a, &a);
        assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = vec![1.0, 2.0];
        axpy(&mut a, 2.0, &[10.0, 20.0]);
        assert_eq!(a, vec![21.0, 42.0]);
        scale(&mut a, 0.5);
        assert_eq!(a, vec![10.5, 21.0]);
    }

    #[test]
    fn weighted_average_normalises() {
        let v1 = [0.0f32, 0.0];
        let v2 = [4.0f32, 8.0];
        let avg = weighted_average(&[&v1, &v2], &[1.0, 3.0]).unwrap();
        assert_eq!(avg, vec![3.0, 6.0]);
    }

    #[test]
    fn weighted_average_rejects_bad_input() {
        assert!(weighted_average(&[], &[]).is_none());
        let v1 = [1.0f32];
        let v2 = [1.0f32, 2.0];
        assert!(weighted_average(&[&v1, &v2], &[1.0, 1.0]).is_none());
        assert!(weighted_average(&[&v1], &[0.0]).is_none());
        assert!(weighted_average(&[&v1], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn segment_gather_scatter_round_trip() {
        let src: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let segs = [(1u32, 2u32), (5, 1), (8, 2)];
        let mut gathered = Vec::new();
        gather_segments_into(&src, &segs, &mut gathered);
        assert_eq!(gathered, vec![1.0, 2.0, 5.0, 8.0, 9.0]);

        let mut dst = vec![0.0f32; 10];
        scatter_segments(&mut dst, &segs, &gathered);
        assert_eq!(dst, vec![0.0, 1.0, 2.0, 0.0, 0.0, 5.0, 0.0, 0.0, 8.0, 9.0]);

        let mut acc = vec![1.0f32; 10];
        scatter_add_segments(&mut acc, &segs, &gathered, 2.0);
        assert_eq!(acc[1], 3.0);
        assert_eq!(acc[0], 1.0);
        assert_eq!(acc[9], 19.0);
    }

    #[test]
    fn zero_outside_segments_masks_complement() {
        let mut buf = vec![1.0f32; 8];
        zero_outside_segments(&mut buf, &[(2, 2), (6, 1)]);
        assert_eq!(buf, vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
        let mut all = vec![1.0f32; 4];
        zero_outside_segments(&mut all, &[(0, 4)]);
        assert_eq!(all, vec![1.0; 4]);
        let mut none = vec![1.0f32; 3];
        zero_outside_segments(&mut none, &[]);
        assert_eq!(none, vec![0.0; 3]);
    }

    #[test]
    fn clip_l2_caps_norm() {
        let mut a = vec![3.0, 4.0];
        let k = clip_l2(&mut a, 1.0);
        assert!((l2_norm(&a) - 1.0).abs() < 1e-6);
        assert!((k - 0.2).abs() < 1e-6);
        let mut b = vec![0.1, 0.1];
        assert_eq!(clip_l2(&mut b, 1.0), 1.0);
        assert_eq!(b, vec![0.1, 0.1]);
    }
}
