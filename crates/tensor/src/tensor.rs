use crate::{Result, Shape, TensorError};
use std::fmt;

/// Contiguous row-major n-dimensional array of `f32`.
///
/// `Tensor` is the workhorse value type of the workspace: model activations,
/// weights, gradients and dataset batches are all `Tensor`s. Data is always
/// contiguous, so flattening (needed at the federated-learning boundary,
/// where updates travel as plain vectors) is free.
///
/// # Examples
///
/// ```
/// use adafl_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.volume()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![1.0; shape.volume()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.volume()],
            shape,
        }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a data vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the shape's volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            data: data.to_vec(),
            shape: Shape::new(&[data.len()]),
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(&[]),
        }
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the flat data slice (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns the flat data slice mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes in place to `dims`, reusing the existing allocation.
    ///
    /// Elements added when the volume grows are zero; existing elements are
    /// kept (callers that need a clean buffer overwrite it anyway). When the
    /// dims already match, this is a no-op — in particular no `Shape` is
    /// rebuilt, so steady-state reuse of a scratch tensor never allocates.
    pub fn resize_reuse(&mut self, dims: &[usize]) {
        if self.shape.dims() != dims {
            self.shape.set_dims(dims);
        }
        let volume = self.shape.volume();
        if self.data.len() != volume {
            self.data.resize(volume, 0.0);
        }
    }

    /// Copies `src`'s shape and contents into `self`, reusing the allocation.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.resize_reuse(src.shape.dims());
        self.data.copy_from_slice(&src.data);
    }

    /// Consumes the tensor, returning its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// Returns `None` when the index rank or any coordinate is out of bounds.
    pub fn get(&self, index: &[usize]) -> Option<f32> {
        if index.len() != self.shape.rank() {
            return None;
        }
        let mut flat = 0usize;
        let strides = self.shape.strides();
        for (i, (&ix, &dim)) in index.iter().zip(self.shape.dims()).enumerate() {
            if ix >= dim {
                return None;
            }
            flat += ix * strides[i];
        }
        self.data.get(flat).copied()
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds; use [`Tensor::get`] to probe
    /// bounds safely.
    pub fn set(&mut self, index: &[usize], value: f32) {
        assert_eq!(index.len(), self.shape.rank(), "index rank mismatch");
        let strides = self.shape.strides();
        let mut flat = 0usize;
        for (i, (&ix, &dim)) in index.iter().zip(self.shape.dims()).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for dim {i} (extent {dim})"
            );
            flat += ix * strides[i];
        }
        self.data[flat] = value;
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(mut self, dims: &[usize]) -> Result<Self> {
        let new_shape = Shape::new(dims);
        if new_shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: new_shape.volume(),
                actual: self.data.len(),
            });
        }
        self.shape = new_shape;
        Ok(self)
    }

    /// Returns a flattened rank-1 copy of the tensor's view (free: moves data).
    pub fn into_flat(self) -> Tensor {
        let len = self.data.len();
        Tensor {
            data: self.data,
            shape: Shape::new(&[len]),
        }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose",
            });
        }
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Returns row `i` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank-2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a matrix");
        let cols = self.shape.dims()[1];
        &self.data[i * cols..(i + 1) * cols]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor{} {:?}",
            self.shape,
            &self.data[..self.data.len().min(8)]
        )?;
        if self.data.len() > 8 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

impl From<Vec<f32>> for Tensor {
    fn from(data: Vec<f32>) -> Self {
        let len = data.len();
        Tensor {
            data,
            shape: Shape::new(&[len]),
        }
    }
}

impl FromIterator<f32> for Tensor {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Tensor::from(iter.into_iter().collect::<Vec<f32>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_right_volume() {
        assert_eq!(Tensor::zeros(&[3, 4]).len(), 12);
        assert!(Tensor::ones(&[2, 2]).as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_eq!(t.get(&[i, j]), Some(expected));
            }
        }
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.get(&[1, 2, 3]), Some(7.5));
        assert_eq!(t.get(&[0, 0, 0]), Some(0.0));
        assert_eq!(t.get(&[2, 0, 0]), None);
        assert_eq!(t.get(&[0, 0]), None);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let r = t.clone().reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn transpose_matrix() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.shape().dims(), &[3, 2]);
        assert_eq!(tt.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(Tensor::zeros(&[2]).transpose().is_err());
    }

    #[test]
    fn row_slices_matrix() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn scalar_is_rank_zero() {
        let s = Tensor::scalar(3.0);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&[]), Some(3.0));
    }

    #[test]
    fn from_iterator_collects() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.shape().dims(), &[4]);
    }

    #[test]
    fn display_truncates_long_tensors() {
        let t = Tensor::zeros(&[100]);
        assert!(t.to_string().contains('…'));
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
