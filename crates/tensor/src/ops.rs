//! Elementwise arithmetic on [`Tensor`].
//!
//! Binary operations require identical shapes, except for the row-broadcast
//! helpers used by bias addition. Operator overloads (`+`, `-`, `*` by
//! scalar) are provided for the common same-shape cases and panic on shape
//! mismatch; the method forms return [`Result`] instead.

use crate::{Result, Tensor, TensorError};
use std::ops::{Add, Mul, Neg, Sub};

impl Tensor {
    fn check_same_shape(&self, rhs: &Tensor, op: &'static str) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().dims().to_vec(),
                rhs: rhs.shape().dims().to_vec(),
                op,
            });
        }
        Ok(())
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_checked(&self, rhs: &Tensor) -> Result<Tensor> {
        self.check_same_shape(rhs, "add")?;
        let data = self
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_vec(data, self.shape().dims())
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub_checked(&self, rhs: &Tensor) -> Result<Tensor> {
        self.check_same_shape(rhs, "sub")?;
        let data = self
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(a, b)| a - b)
            .collect();
        Tensor::from_vec(data, self.shape().dims())
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul_checked(&self, rhs: &Tensor) -> Result<Tensor> {
        self.check_same_shape(rhs, "mul")?;
        let data = self
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(a, b)| a * b)
            .collect();
        Tensor::from_vec(data, self.shape().dims())
    }

    /// Multiplies every element by `k`, returning a new tensor.
    pub fn scale(&self, k: f32) -> Tensor {
        let data = self.as_slice().iter().map(|a| a * k).collect();
        Tensor::from_vec(data, self.shape().dims()).expect("same volume")
    }

    /// Adds `rhs * k` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, k: f32, rhs: &Tensor) -> Result<()> {
        self.check_same_shape(rhs, "axpy")?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += k * b;
        }
        Ok(())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.as_slice().iter().map(|&a| f(a)).collect();
        Tensor::from_vec(data, self.shape().dims()).expect("same volume")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in self.as_mut_slice() {
            *a = f(*a);
        }
    }

    /// Adds a rank-1 `bias` to each row of a rank-2 tensor in place.
    ///
    /// Used by fully-connected bias addition: `self` is `[batch, features]`,
    /// `bias` is `[features]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `self` is not a matrix, or
    /// [`TensorError::ShapeMismatch`] when widths differ.
    pub fn add_row_broadcast(&mut self, bias: &Tensor) -> Result<()> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "add_row_broadcast",
            });
        }
        let cols = self.shape().dims()[1];
        if bias.len() != cols {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().dims().to_vec(),
                rhs: bias.shape().dims().to_vec(),
                op: "add_row_broadcast",
            });
        }
        let b = bias.as_slice();
        for row in self.as_mut_slice().chunks_mut(cols) {
            for (x, bb) in row.iter_mut().zip(b) {
                *x += bb;
            }
        }
        Ok(())
    }
}

impl Add for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics when shapes differ; use [`Tensor::add_checked`] for a fallible
    /// variant.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.add_checked(rhs)
            .expect("tensor addition shape mismatch")
    }
}

impl Sub for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics when shapes differ; use [`Tensor::sub_checked`] for a fallible
    /// variant.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.sub_checked(rhs)
            .expect("tensor subtraction shape mismatch")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, k: f32) -> Tensor {
        self.scale(k)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_slice(data)
    }

    #[test]
    fn add_sub_mul_elementwise() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul_checked(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        assert!(a.add_checked(&b).is_err());
        assert!(a.sub_checked(&b).is_err());
        assert!(a.mul_checked(&b).is_err());
        assert!(a.clone().axpy(1.0, &b).is_err());
    }

    #[test]
    fn scale_and_neg() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, -4.0]);
        assert_eq!((&a * 0.5).as_slice(), &[0.5, -1.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(2.0, &t(&[3.0, 4.0])).unwrap();
        assert_eq!(a.as_slice(), &[7.0, 9.0]);
    }

    #[test]
    fn map_applies_function() {
        let a = t(&[-1.0, 2.0]);
        assert_eq!(a.map(|x| x.max(0.0)).as_slice(), &[0.0, 2.0]);
        let mut b = a.clone();
        b.map_inplace(|x| x * x);
        assert_eq!(b.as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn row_broadcast_adds_bias_to_each_row() {
        let mut m = Tensor::from_vec(vec![0.0; 6], &[2, 3]).unwrap();
        m.add_row_broadcast(&t(&[1.0, 2.0, 3.0])).unwrap();
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_broadcast_validates() {
        let mut v = t(&[0.0; 3]);
        assert!(v.add_row_broadcast(&t(&[1.0])).is_err());
        let mut m = Tensor::zeros(&[2, 3]);
        assert!(m.add_row_broadcast(&t(&[1.0, 2.0])).is_err());
    }
}
