use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and arithmetic.
///
/// All fallible public functions in this crate return
/// [`Result<T, TensorError>`](crate::Result).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided data length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An axis argument is out of bounds for the tensor's rank.
    AxisOutOfBounds {
        /// The offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// A tensor with zero elements was used where data is required.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => {
                write!(f, "{op} requires rank {expected}, got rank {actual}")
            }
            TensorError::AxisOutOfBounds { axis, rank } => {
                write!(f, "axis {axis} out of bounds for rank {rank}")
            }
            TensorError::Empty { op } => write!(f, "{op} requires a non-empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_shapes() {
        let err = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4, 5],
            op: "add",
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4, 5]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn display_length_mismatch() {
        let err = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert_eq!(
            err.to_string(),
            "data length 5 does not match shape volume 6"
        );
    }
}
