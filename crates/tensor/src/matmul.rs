//! Register-blocked matrix multiplication kernels.
//!
//! Three variants cover the needs of forward and backward passes without
//! materialising transposes:
//!
//! * [`Tensor::matmul`] / [`matmul_into`] — `C = A · B`
//! * [`matmul_tn`] — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_nt`] — `C = A · Bᵀ` (input gradients)
//!
//! All three run a register-blocked micro-kernel: an `MR`-row × `NR`-column
//! tile of `C` is accumulated in local arrays across a k-block, so each
//! loaded panel of `B` feeds `MR` rows of output and `C` is touched once per
//! k-block instead of once per `(i, kk)` pair. The accumulators are plain
//! fixed-size `f32` arrays with independent lanes, which LLVM autovectorises
//! without any unordered reductions — results stay bit-deterministic for a
//! given shape. The kernels are dense on purpose: sparsity-aware paths live
//! in `crates/compression`, not here.
//!
//! The [`oracle`] module keeps the naive triple-loop kernels as a reference
//! for unit and property tests.

use crate::{Result, Tensor, TensorError};

/// k-blocking factor: bounds the `B` panel touched by one micro-kernel pass
/// to `KC × NR × 4` bytes (16 KiB), which stays L1-resident.
const KC: usize = 256;
/// Rows of `C` accumulated per micro-kernel invocation.
const MR: usize = 4;
/// Columns of `C` accumulated per micro-kernel invocation. Sized so the
/// `MR × NR` accumulator block (eight 256-bit vectors) fits the AVX2
/// register file without spilling, leaving registers for the `B` panel.
const NR: usize = 16;
/// Lane width for the dot-product (`NT`) kernel accumulators: two 256-bit
/// vectors per dot product, giving eight independent FMA chains across a
/// 4-wide column tile to cover FMA latency.
const LANES: usize = 16;

fn dims2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
            op,
        });
    }
    Ok((t.shape().dims()[0], t.shape().dims()[1]))
}

impl Tensor {
    /// Matrix product `self · rhs` for rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] when inner dimensions disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use adafl_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok::<(), adafl_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = dims2(self, "matmul")?;
        let (k2, n) = dims2(rhs, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().dims().to_vec(),
                rhs: rhs.shape().dims().to_vec(),
                op: "matmul",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.as_slice(), rhs.as_slice(), out.as_mut_slice(), m, k, n);
        Ok(out)
    }
}

/// Micro-kernel for `matmul_into`: accumulates `R` rows of `C` starting at
/// row `i`, over the k-range `kb..ke`, for every column tile.
#[allow(clippy::too_many_arguments)]
fn nn_panel<const R: usize>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i: usize,
    kb: usize,
    ke: usize,
    k: usize,
    n: usize,
) {
    let kc = ke - kb;
    let a_rows: [&[f32]; R] = core::array::from_fn(|r| &a[(i + r) * k + kb..][..kc]);
    let mut j = 0;
    while j + NR <= n {
        let mut acc = [[0.0f32; NR]; R];
        for kk in 0..kc {
            let bp = &b[(kb + kk) * n + j..][..NR];
            for r in 0..R {
                let av = a_rows[r][kk];
                for (x, &bv) in acc[r].iter_mut().zip(bp) {
                    *x += av * bv;
                }
            }
        }
        for (r, lane) in acc.iter().enumerate() {
            let c_row = &mut c[(i + r) * n + j..][..NR];
            for (cv, &x) in c_row.iter_mut().zip(lane) {
                *cv += x;
            }
        }
        j += NR;
    }
    if j < n {
        let w = n - j;
        let mut acc = [[0.0f32; NR]; R];
        for kk in 0..kc {
            let bp = &b[(kb + kk) * n + j..][..w];
            for r in 0..R {
                let av = a_rows[r][kk];
                for (x, &bv) in acc[r][..w].iter_mut().zip(bp) {
                    *x += av * bv;
                }
            }
        }
        for (r, lane) in acc.iter().enumerate() {
            let c_row = &mut c[(i + r) * n + j..][..w];
            for (cv, &x) in c_row.iter_mut().zip(&lane[..w]) {
                *cv += x;
            }
        }
    }
}

/// Computes `c += a · b` where `a` is `m×k`, `b` is `k×n`, `c` is `m×n`,
/// all row-major flat slices.
///
/// Register-blocked: 4×16 tiles of `c` accumulate in locals across each
/// k-block, so one loaded `b` panel feeds four output rows.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for kb in (0..k).step_by(KC) {
        let ke = (kb + KC).min(k);
        let mut i = 0;
        while i + MR <= m {
            nn_panel::<MR>(a, b, c, i, kb, ke, k, n);
            i += MR;
        }
        match m - i {
            3 => nn_panel::<3>(a, b, c, i, kb, ke, k, n),
            2 => nn_panel::<2>(a, b, c, i, kb, ke, k, n),
            1 => nn_panel::<1>(a, b, c, i, kb, ke, k, n),
            _ => {}
        }
    }
}

/// Micro-kernel for `matmul_tn`: same tile shape as [`nn_panel`], but `a` is
/// `k×m`, so the `R` row values for a given `kk` are contiguous.
#[allow(clippy::too_many_arguments)]
fn tn_panel<const R: usize>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i: usize,
    kb: usize,
    ke: usize,
    m: usize,
    n: usize,
) {
    let mut j = 0;
    while j + NR <= n {
        let mut acc = [[0.0f32; NR]; R];
        for kk in kb..ke {
            let avs = &a[kk * m + i..][..R];
            let bp = &b[kk * n + j..][..NR];
            for r in 0..R {
                let av = avs[r];
                for (x, &bv) in acc[r].iter_mut().zip(bp) {
                    *x += av * bv;
                }
            }
        }
        for (r, lane) in acc.iter().enumerate() {
            let c_row = &mut c[(i + r) * n + j..][..NR];
            for (cv, &x) in c_row.iter_mut().zip(lane) {
                *cv += x;
            }
        }
        j += NR;
    }
    if j < n {
        let w = n - j;
        let mut acc = [[0.0f32; NR]; R];
        for kk in kb..ke {
            let avs = &a[kk * m + i..][..R];
            let bp = &b[kk * n + j..][..w];
            for r in 0..R {
                let av = avs[r];
                for (x, &bv) in acc[r][..w].iter_mut().zip(bp) {
                    *x += av * bv;
                }
            }
        }
        for (r, lane) in acc.iter().enumerate() {
            let c_row = &mut c[(i + r) * n + j..][..w];
            for (cv, &x) in c_row.iter_mut().zip(&lane[..w]) {
                *cv += x;
            }
        }
    }
}

/// Computes `c += aᵀ · b` where `a` is `k×m`, `b` is `k×n`, `c` is `m×n`.
///
/// This is the weight-gradient kernel: `dW = Xᵀ · dY` without materialising
/// `Xᵀ`. Same 4×16 register blocking as [`matmul_into`]; the transposed
/// layout makes the four per-row `a` values one contiguous load.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for kb in (0..k).step_by(KC) {
        let ke = (kb + KC).min(k);
        let mut i = 0;
        while i + MR <= m {
            tn_panel::<MR>(a, b, c, i, kb, ke, m, n);
            i += MR;
        }
        match m - i {
            3 => tn_panel::<3>(a, b, c, i, kb, ke, m, n),
            2 => tn_panel::<2>(a, b, c, i, kb, ke, m, n),
            1 => tn_panel::<1>(a, b, c, i, kb, ke, m, n),
            _ => {}
        }
    }
}

/// `Q` simultaneous dot products of `a` against rows of `b` starting at row
/// `j`, each accumulated in [`LANES`] independent lanes and horizontally
/// summed in a fixed order (left to right), so results are deterministic.
fn nt_dots<const Q: usize>(a: &[f32], b: &[f32], j: usize, k: usize) -> [f32; Q] {
    let b_rows: [&[f32]; Q] = core::array::from_fn(|q| &b[(j + q) * k..][..k]);
    let mut acc = [[0.0f32; LANES]; Q];
    let chunks = k / LANES;
    for t in 0..chunks {
        let al = &a[t * LANES..][..LANES];
        for (q, lane) in acc.iter_mut().enumerate() {
            let bl = &b_rows[q][t * LANES..][..LANES];
            for ((x, &av), &bv) in lane.iter_mut().zip(al).zip(bl) {
                *x += av * bv;
            }
        }
    }
    let mut out = [0.0f32; Q];
    for (q, lane) in acc.iter().enumerate() {
        let mut sum = 0.0f32;
        for &x in lane {
            sum += x;
        }
        for kk in chunks * LANES..k {
            sum += a[kk] * b_rows[q][kk];
        }
        out[q] = sum;
    }
    out
}

/// Computes `c += a · bᵀ` where `a` is `m×k`, `b` is `n×k`, `c` is `m×n`.
///
/// This is the input-gradient kernel: `dX = dY · Wᵀ` without materialising
/// `Wᵀ`. Both operands are contiguous along `k`, so the kernel runs four
/// lane-accumulated dot products at a time, reusing each loaded `a` chunk
/// across four `b` rows.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for i in 0..m {
        let a_row = &a[i * k..][..k];
        let c_row = &mut c[i * n..][..n];
        let mut j = 0;
        while j + 4 <= n {
            let d = nt_dots::<4>(a_row, b, j, k);
            for (cv, &x) in c_row[j..j + 4].iter_mut().zip(&d) {
                *cv += x;
            }
            j += 4;
        }
        while j < n {
            let d = nt_dots::<1>(a_row, b, j, k);
            c_row[j] += d[0];
            j += 1;
        }
    }
}

/// Naive triple-loop reference kernels.
///
/// These are the correctness oracle for the blocked kernels above — used by
/// unit tests here and the property tests in `tests/kernel_equivalence.rs`.
/// Never call them from production code.
pub mod oracle {
    /// `C = A · B` by the textbook i-j-k triple loop.
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    /// `C = Aᵀ · B` with `a` stored `k×m`.
    pub fn matmul_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[kk * m + i] * b[kk * n + j];
                }
            }
        }
        c
    }

    /// `C = A · Bᵀ` with `b` stored `n×k`.
    pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[j * k + kk];
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(Tensor::zeros(&[3]).matmul(&b).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[3, 3]).unwrap();
        let c = a.matmul(&Tensor::eye(3)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        // Sizes chosen to straddle both the row/column tiles and the k-block.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (65, 66, 67),
            (2, 130, 3),
            (4, 257, 16),
            (5, 300, 17),
        ] {
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 11) as f32) - 5.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 53 % 13) as f32) - 6.0).collect();
            let mut c = vec![0.0; m * n];
            matmul_into(&a, &b, &mut c, m, k, n);
            let expected = oracle::matmul(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&expected) {
                assert!((x - y).abs() < 1e-3, "mismatch {x} vs {y}");
            }
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let (k, m, n) = (4, 3, 5);
        let a: Vec<f32> = (0..k * m).map(|i| i as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.25 - 1.0).collect();
        // Explicit transpose of a (k×m → m×k).
        let mut at = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                at[i * k + kk] = a[kk * m + i];
            }
        }
        let expected = oracle::matmul(&at, &b, m, k, n);
        let mut c = vec![0.0; m * n];
        matmul_tn(&a, &b, &mut c, k, m, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..n * k).map(|i| i as f32 * 0.25 - 1.0).collect();
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b[j * k + kk];
            }
        }
        let expected = oracle::matmul(&a, &bt, m, k, n);
        let mut c = vec![0.0; m * n];
        matmul_nt(&a, &b, &mut c, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        // All three kernels are `c +=`, not `c =`.
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut c = [100.0f32; 4];
        matmul_into(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [119.0, 122.0, 143.0, 150.0]);
    }
}
