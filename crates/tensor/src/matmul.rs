//! Cache-blocked matrix multiplication kernels.
//!
//! Three variants cover the needs of forward and backward passes without
//! materialising transposes:
//!
//! * [`Tensor::matmul`] / [`matmul_into`] — `C = A · B`
//! * [`matmul_tn`] — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_nt`] — `C = A · Bᵀ` (input gradients)

use crate::{Result, Tensor, TensorError};

const BLOCK: usize = 64;

fn dims2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
            op,
        });
    }
    Ok((t.shape().dims()[0], t.shape().dims()[1]))
}

impl Tensor {
    /// Matrix product `self · rhs` for rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] when inner dimensions disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use adafl_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok::<(), adafl_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = dims2(self, "matmul")?;
        let (k2, n) = dims2(rhs, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().dims().to_vec(),
                rhs: rhs.shape().dims().to_vec(),
                op: "matmul",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.as_slice(), rhs.as_slice(), out.as_mut_slice(), m, k, n);
        Ok(out)
    }
}

/// Computes `c += a · b` where `a` is `m×k`, `b` is `k×n`, `c` is `m×n`,
/// all row-major flat slices.
///
/// Uses i-k-j loop order with k-blocking, which vectorises well and avoids
/// striding through `b` column-wise.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for kb in (0..k).step_by(BLOCK) {
        let k_end = (kb + BLOCK).min(k);
        for i in 0..m {
            let c_row = &mut c[i * n..(i + 1) * n];
            for kk in kb..k_end {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    }
}

/// Computes `c += aᵀ · b` where `a` is `k×m`, `b` is `k×n`, `c` is `m×n`.
///
/// This is the weight-gradient kernel: `dW = Xᵀ · dY` without materialising
/// `Xᵀ`.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Computes `c += a · bᵀ` where `a` is `m×k`, `b` is `n×k`, `c` is `m×n`.
///
/// This is the input-gradient kernel: `dX = dY · Wᵀ` without materialising
/// `Wᵀ`.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matmul_matches_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(Tensor::zeros(&[3]).matmul(&b).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[3, 3]).unwrap();
        let c = a.matmul(&Tensor::eye(3)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        // Sizes chosen to straddle the blocking factor.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (65, 66, 67), (2, 130, 3)] {
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 11) as f32) - 5.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 53 % 13) as f32) - 6.0).collect();
            let mut c = vec![0.0; m * n];
            matmul_into(&a, &b, &mut c, m, k, n);
            let expected = naive(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&expected) {
                assert!((x - y).abs() < 1e-3, "mismatch {x} vs {y}");
            }
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let (k, m, n) = (4, 3, 5);
        let a: Vec<f32> = (0..k * m).map(|i| i as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.25 - 1.0).collect();
        // Explicit transpose of a (k×m → m×k).
        let mut at = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                at[i * k + kk] = a[kk * m + i];
            }
        }
        let expected = naive(&at, &b, m, k, n);
        let mut c = vec![0.0; m * n];
        matmul_tn(&a, &b, &mut c, k, m, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..n * k).map(|i| i as f32 * 0.25 - 1.0).collect();
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b[j * k + kk];
            }
        }
        let expected = naive(&a, &bt, m, k, n);
        let mut c = vec![0.0; m * n];
        matmul_nt(&a, &b, &mut c, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
