//! Panel-packed, register-blocked matrix multiplication kernels.
//!
//! Three variants cover the needs of forward and backward passes without
//! materialising transposes:
//!
//! * [`Tensor::matmul`] / [`matmul_into`] — `C = A · B`
//! * [`matmul_tn`] — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_nt`] — `C = A · Bᵀ` (input gradients)
//!
//! All three follow the same two-step shape: **pack once, stream lanes**.
//! Operands are first repacked into contiguous panels inside a reusable
//! [`PackBuf`] — `B` into `KC × NR` column panels (tail columns zero-padded
//! to the full lane width), `A` into `KC × MR` row panels — and the
//! micro-kernel then streams those panels with perfectly sequential loads.
//! Packing is a layout change only: every floating-point operation happens
//! in exactly the same order as the unpacked kernels did, so results are
//! bit-for-bit identical, and the zero-padded tail lanes are discarded
//! before write-back so they never contribute.
//!
//! The micro-kernel accumulates an `MR`-row × `NR`-column tile of `C` in
//! local arrays across a k-block, touching `C` once per k-block. With the
//! `simd` cargo feature the tile runs on explicit `std::arch` intrinsics
//! (AVX2 on x86_64, NEON on aarch64) using *separate* multiply and add
//! instructions — never FMA — so the SIMD lanes compute the exact same
//! IEEE-754 sequence as the scalar fallback and stay bit-deterministic.
//! Without the feature (or on other architectures) a scalar tile with
//! independent lanes autovectorises and produces the same bits.
//!
//! ```text
//! B panel layout (one KC-deep k-block, NR = 16 lanes per column tile):
//!
//!   b[(kb+kk)*n + j .. +NR]  ──pack──▶  panel[jt][kk*NR .. kk*NR+NR]
//!
//!   jt=0 tile               jt=1 tile              … (tail zero-padded)
//!   ┌────────────────┐      ┌────────────────┐
//!   │ kk=0: 16 lanes │      │ kk=0: 16 lanes │
//!   │ kk=1: 16 lanes │      │ kk=1: 16 lanes │
//!   │      …         │      │      …         │
//!   │ kk=KC-1        │      │ kk=KC-1        │
//!   └────────────────┘      └────────────────┘
//!   contiguous in memory ── the micro-kernel walks straight through.
//! ```
//!
//! The kernels are dense on purpose: sparsity-aware paths live in
//! `crates/compression`, not here.
//!
//! The [`oracle`] module keeps the naive triple-loop kernels as a reference
//! for approximate checks, plus `*_ordered` variants that replicate the
//! exact blocked reduction order for bitwise-equality tests.

use crate::{Result, Tensor, TensorError};
use std::cell::RefCell;

/// k-blocking factor: bounds the `B` panel touched by one micro-kernel pass
/// to `KC × NR × 4` bytes (16 KiB), which stays L1-resident.
const KC: usize = 256;
/// Rows of `C` accumulated per micro-kernel invocation.
const MR: usize = 4;
/// Columns of `C` accumulated per micro-kernel invocation. Sized so the
/// `MR × NR` accumulator block (eight 256-bit vectors) fits the AVX2
/// register file without spilling, leaving registers for the `B` panel.
const NR: usize = 16;
/// Lane width for the dot-product (`NT`) kernel accumulators: two 256-bit
/// vectors per dot product, giving eight independent multiply-add chains
/// across a 4-wide column tile to cover arithmetic latency.
const LANES: usize = 16;

/// Reusable packing scratch for the matmul kernels.
///
/// Holds the packed `A` and `B` panels between calls so steady-state
/// training performs no per-step heap allocation. Buffers only ever grow;
/// a `PackBuf` can be reused across arbitrary shapes. The convenience
/// wrappers ([`matmul_into`] etc.) fall back to a thread-local `PackBuf`;
/// hot paths thread one through explicitly via the `*_with` variants.
#[derive(Debug, Default)]
pub struct PackBuf {
    a: Vec<f32>,
    b: Vec<f32>,
    /// Transpose scratch for the short-`k` NT path, which rewrites the
    /// transposed operand once and reruns the NN kernel.
    t: Vec<f32>,
}

impl PackBuf {
    /// Creates an empty packing buffer; it grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static PACK: RefCell<PackBuf> = RefCell::new(PackBuf::new());
}

/// Grows `v` to at least `len` elements without shrinking capacity.
fn ensure_len(v: &mut Vec<f32>, len: usize) {
    if v.len() < len {
        v.resize(len, 0.0);
    }
}

fn dims2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
            op,
        });
    }
    Ok((t.shape().dims()[0], t.shape().dims()[1]))
}

impl Tensor {
    /// Matrix product `self · rhs` for rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] when inner dimensions disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use adafl_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok::<(), adafl_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = dims2(self, "matmul")?;
        let (k2, n) = dims2(rhs, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().dims().to_vec(),
                rhs: rhs.shape().dims().to_vec(),
                op: "matmul",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.as_slice(), rhs.as_slice(), out.as_mut_slice(), m, k, n);
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Whether panel-packing pays for an NN/TN problem of this shape.
///
/// Packing wins once the `B` k-slab outgrows half of a typical L1d (strided
/// panel walks start missing) or the column count is ragged past one tile
/// (packed tiles zero-pad the tail lanes; the direct kernel re-runs a
/// narrow scalar tail per row block). Below that the raw slab is
/// cache-resident, every pass over it is cheap, and the pack writes are
/// pure overhead — the direct register-blocked panels are faster.
fn worth_packing(k: usize, n: usize) -> bool {
    let slab_bytes = k.min(KC) * n * core::mem::size_of::<f32>();
    slab_bytes > 16 * 1024 || (n > NR && !n.is_multiple_of(NR))
}

/// Whether the explicit SIMD micro-kernels may run on this CPU. Call once
/// per kernel invocation and thread the answer down — the cached feature
/// probe is cheap but not free in a per-tile loop.
#[inline]
fn simd_tiles_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        true
    }
    #[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    {
        false
    }
}

/// Packs the `kb..ke` k-slab of row-major `b` (`k×n`) into contiguous
/// `kc×NR` column tiles; tail lanes beyond `n` are zero-filled so the
/// micro-kernel always streams full `NR`-wide rows.
fn pack_b_panels(b: &[f32], kb: usize, ke: usize, n: usize, out: &mut Vec<f32>) {
    let kc = ke - kb;
    let tiles = n.div_ceil(NR);
    ensure_len(out, tiles * kc * NR);
    for jt in 0..tiles {
        let j = jt * NR;
        let w = NR.min(n - j);
        let tile = &mut out[jt * kc * NR..][..kc * NR];
        for kk in 0..kc {
            let dst = &mut tile[kk * NR..][..NR];
            dst[..w].copy_from_slice(&b[(kb + kk) * n + j..][..w]);
            dst[w..].fill(0.0);
        }
    }
}

/// Packs `r` rows of row-major `a` (`m×k`) starting at row `i`, k-slab
/// `kb..ke`, into `kc×r` layout: the `r` values for one `kk` are adjacent.
fn pack_a_nn(a: &[f32], i: usize, r: usize, kb: usize, ke: usize, k: usize, out: &mut Vec<f32>) {
    let kc = ke - kb;
    ensure_len(out, kc * r);
    for rr in 0..r {
        let row = &a[(i + rr) * k + kb..][..kc];
        for (kk, &v) in row.iter().enumerate() {
            out[kk * r + rr] = v;
        }
    }
}

/// Packs `r` columns of column-stored `a` (`k×m`, the TN operand) starting
/// at column `i`, k-slab `kb..ke`, into the same `kc×r` layout as
/// [`pack_a_nn`]. The source values are already adjacent per `kk`.
fn pack_a_tn(a: &[f32], i: usize, r: usize, kb: usize, ke: usize, m: usize, out: &mut Vec<f32>) {
    let kc = ke - kb;
    ensure_len(out, kc * r);
    for kk in 0..kc {
        out[kk * r..][..r].copy_from_slice(&a[(kb + kk) * m + i..][..r]);
    }
}

// ---------------------------------------------------------------------------
// Micro-kernel tiles (scalar + SIMD)
// ---------------------------------------------------------------------------

/// Scalar `R×NR` tile: independent accumulator lanes, `kk` ascending, so
/// LLVM autovectorises without reordering any reduction.
#[allow(clippy::needless_range_loop)]
fn tile_scalar<const R: usize>(
    a_pack: &[f32],
    b_tile: &[f32],
    kc: usize,
    acc: &mut [[f32; NR]; R],
) {
    for kk in 0..kc {
        let av = &a_pack[kk * R..][..R];
        let bv = &b_tile[kk * NR..][..NR];
        for r in 0..R {
            let a = av[r];
            for (x, &b) in acc[r].iter_mut().zip(bv) {
                *x += a * b;
            }
        }
    }
}

/// AVX2 `R×NR` tile. Uses separate multiply and add (never FMA) so every
/// lane computes the exact IEEE-754 sequence of [`tile_scalar`].
///
/// # Safety
///
/// Caller must ensure AVX2 is available and that `a_pack` holds at least
/// `kc*R` and `b_tile` at least `kc*NR` elements.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn tile_avx2<const R: usize>(
    a_pack: &[f32],
    b_tile: &[f32],
    kc: usize,
    acc: &mut [[f32; NR]; R],
) {
    use core::arch::x86_64::*;
    let mut lo = [_mm256_setzero_ps(); R];
    let mut hi = [_mm256_setzero_ps(); R];
    let ap = a_pack.as_ptr();
    let bp = b_tile.as_ptr();
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(kk * NR));
        let b1 = _mm256_loadu_ps(bp.add(kk * NR + 8));
        for r in 0..R {
            let a = _mm256_set1_ps(*ap.add(kk * R + r));
            lo[r] = _mm256_add_ps(lo[r], _mm256_mul_ps(a, b0));
            hi[r] = _mm256_add_ps(hi[r], _mm256_mul_ps(a, b1));
        }
    }
    for r in 0..R {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), lo[r]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), hi[r]);
    }
}

/// NEON `R×NR` tile; same bit-exact separate multiply/add discipline as
/// [`tile_avx2`].
///
/// # Safety
///
/// Caller must ensure `a_pack` holds at least `kc*R` and `b_tile` at least
/// `kc*NR` elements. NEON itself is mandatory on aarch64.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
unsafe fn tile_neon<const R: usize>(
    a_pack: &[f32],
    b_tile: &[f32],
    kc: usize,
    acc: &mut [[f32; NR]; R],
) {
    use core::arch::aarch64::*;
    let mut v = [[vdupq_n_f32(0.0); 4]; R];
    let ap = a_pack.as_ptr();
    let bp = b_tile.as_ptr();
    for kk in 0..kc {
        let b0 = vld1q_f32(bp.add(kk * NR));
        let b1 = vld1q_f32(bp.add(kk * NR + 4));
        let b2 = vld1q_f32(bp.add(kk * NR + 8));
        let b3 = vld1q_f32(bp.add(kk * NR + 12));
        for r in 0..R {
            let a = vdupq_n_f32(*ap.add(kk * R + r));
            v[r][0] = vaddq_f32(v[r][0], vmulq_f32(a, b0));
            v[r][1] = vaddq_f32(v[r][1], vmulq_f32(a, b1));
            v[r][2] = vaddq_f32(v[r][2], vmulq_f32(a, b2));
            v[r][3] = vaddq_f32(v[r][3], vmulq_f32(a, b3));
        }
    }
    for r in 0..R {
        for q in 0..4 {
            vst1q_f32(acc[r].as_mut_ptr().add(q * 4), v[r][q]);
        }
    }
}

/// Runs one `R×NR` tile over a packed k-slab, dispatching to the widest
/// bit-compatible implementation available. `simd` is the hoisted
/// [`simd_tiles_available`] answer.
#[cfg_attr(
    not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))),
    allow(unused_variables)
)]
#[inline]
fn run_tile<const R: usize>(
    simd: bool,
    a_pack: &[f32],
    b_tile: &[f32],
    kc: usize,
    acc: &mut [[f32; NR]; R],
) {
    debug_assert!(a_pack.len() >= kc * R);
    debug_assert!(b_tile.len() >= kc * NR);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd {
        // SAFETY: AVX2 presence checked by the caller; lengths asserted.
        unsafe { tile_avx2::<R>(a_pack, b_tile, kc, acc) };
        return;
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if simd {
        // SAFETY: NEON is mandatory on aarch64; lengths asserted above.
        unsafe { tile_neon::<R>(a_pack, b_tile, kc, acc) };
        return;
    }
    tile_scalar::<R>(a_pack, b_tile, kc, acc);
}

/// Accumulates `R` packed rows against every packed `B` column tile of one
/// k-slab, writing `c +=` for the first `w` real lanes of each tile.
#[allow(clippy::too_many_arguments)]
fn gemm_packed<const R: usize>(
    simd: bool,
    a_pack: &[f32],
    b_pack: &[f32],
    c: &mut [f32],
    i: usize,
    kc: usize,
    n: usize,
) {
    let mut jt = 0;
    let mut j = 0;
    while j < n {
        let w = NR.min(n - j);
        let b_tile = &b_pack[jt * kc * NR..][..kc * NR];
        let mut acc = [[0.0f32; NR]; R];
        run_tile::<R>(simd, &a_pack[..kc * R], b_tile, kc, &mut acc);
        for (r, lane) in acc.iter().enumerate() {
            let c_row = &mut c[(i + r) * n + j..][..w];
            for (cv, &x) in c_row.iter_mut().zip(&lane[..w]) {
                *cv += x;
            }
        }
        j += NR;
        jt += 1;
    }
}

/// Direct (no-pack) micro-kernel for `matmul_into`: accumulates `R` rows of
/// `C` over the k-slab `kb..ke`, reading the raw strided operands. Used when
/// `worth_packing` says the slab is cache-resident; the per-element
/// accumulation order is identical to the packed path.
#[allow(clippy::too_many_arguments)]
fn nn_panel<const R: usize>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i: usize,
    kb: usize,
    ke: usize,
    k: usize,
    n: usize,
) {
    let kc = ke - kb;
    let a_rows: [&[f32]; R] = core::array::from_fn(|r| &a[(i + r) * k + kb..][..kc]);
    let mut j = 0;
    while j + NR <= n {
        let mut acc = [[0.0f32; NR]; R];
        for kk in 0..kc {
            let bp = &b[(kb + kk) * n + j..][..NR];
            for r in 0..R {
                let av = a_rows[r][kk];
                for (x, &bv) in acc[r].iter_mut().zip(bp) {
                    *x += av * bv;
                }
            }
        }
        for (r, lane) in acc.iter().enumerate() {
            let c_row = &mut c[(i + r) * n + j..][..NR];
            for (cv, &x) in c_row.iter_mut().zip(lane) {
                *cv += x;
            }
        }
        j += NR;
    }
    if j < n {
        let w = n - j;
        let mut acc = [[0.0f32; NR]; R];
        for kk in 0..kc {
            let bp = &b[(kb + kk) * n + j..][..w];
            for r in 0..R {
                let av = a_rows[r][kk];
                for (x, &bv) in acc[r][..w].iter_mut().zip(bp) {
                    *x += av * bv;
                }
            }
        }
        for (r, lane) in acc.iter().enumerate() {
            let c_row = &mut c[(i + r) * n + j..][..w];
            for (cv, &x) in c_row.iter_mut().zip(&lane[..w]) {
                *cv += x;
            }
        }
    }
}

/// Direct (no-pack) micro-kernel for `matmul_tn`: same tile shape as
/// [`nn_panel`], but `a` is `k×m`, so the `R` row values for a given `kk`
/// are one contiguous load.
#[allow(clippy::too_many_arguments)]
fn tn_panel<const R: usize>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i: usize,
    kb: usize,
    ke: usize,
    m: usize,
    n: usize,
) {
    let mut j = 0;
    while j + NR <= n {
        let mut acc = [[0.0f32; NR]; R];
        for kk in kb..ke {
            let avs = &a[kk * m + i..][..R];
            let bp = &b[kk * n + j..][..NR];
            for r in 0..R {
                let av = avs[r];
                for (x, &bv) in acc[r].iter_mut().zip(bp) {
                    *x += av * bv;
                }
            }
        }
        for (r, lane) in acc.iter().enumerate() {
            let c_row = &mut c[(i + r) * n + j..][..NR];
            for (cv, &x) in c_row.iter_mut().zip(lane) {
                *cv += x;
            }
        }
        j += NR;
    }
    if j < n {
        let w = n - j;
        let mut acc = [[0.0f32; NR]; R];
        for kk in kb..ke {
            let avs = &a[kk * m + i..][..R];
            let bp = &b[kk * n + j..][..w];
            for r in 0..R {
                let av = avs[r];
                for (x, &bv) in acc[r][..w].iter_mut().zip(bp) {
                    *x += av * bv;
                }
            }
        }
        for (r, lane) in acc.iter().enumerate() {
            let c_row = &mut c[(i + r) * n + j..][..w];
            for (cv, &x) in c_row.iter_mut().zip(&lane[..w]) {
                *cv += x;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Computes `c += a · b` where `a` is `m×k`, `b` is `k×n`, `c` is `m×n`,
/// all row-major flat slices. Uses a thread-local [`PackBuf`]; hot paths
/// should prefer [`matmul_into_with`].
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    PACK.with(|p| matmul_into_with(a, b, c, m, k, n, &mut p.borrow_mut()));
}

/// [`matmul_into`] with an explicit packing buffer.
///
/// When `worth_packing` approves, each `KC`-deep slab of `b` is packed
/// once into contiguous `NR`-wide column tiles and reused across every row
/// block of `a`, whose rows are packed `kc×MR`; the micro-kernel then
/// streams both panels with unit-stride loads. Cache-resident shapes skip
/// the packing and run the same tiles over the raw strided operands.
/// Accumulation order is identical either way, so results are bit-for-bit
/// unchanged.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_into_with(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    pack: &mut PackBuf,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    if !worth_packing(k, n) {
        for kb in (0..k).step_by(KC) {
            let ke = (kb + KC).min(k);
            let mut i = 0;
            while i + MR <= m {
                nn_panel::<MR>(a, b, c, i, kb, ke, k, n);
                i += MR;
            }
            match m - i {
                3 => nn_panel::<3>(a, b, c, i, kb, ke, k, n),
                2 => nn_panel::<2>(a, b, c, i, kb, ke, k, n),
                1 => nn_panel::<1>(a, b, c, i, kb, ke, k, n),
                _ => {}
            }
        }
        return;
    }
    let simd = simd_tiles_available();
    for kb in (0..k).step_by(KC) {
        let ke = (kb + KC).min(k);
        let kc = ke - kb;
        pack_b_panels(b, kb, ke, n, &mut pack.b);
        let mut i = 0;
        while i + MR <= m {
            pack_a_nn(a, i, MR, kb, ke, k, &mut pack.a);
            gemm_packed::<MR>(simd, &pack.a, &pack.b, c, i, kc, n);
            i += MR;
        }
        let r = m - i;
        if r > 0 {
            pack_a_nn(a, i, r, kb, ke, k, &mut pack.a);
            match r {
                3 => gemm_packed::<3>(simd, &pack.a, &pack.b, c, i, kc, n),
                2 => gemm_packed::<2>(simd, &pack.a, &pack.b, c, i, kc, n),
                1 => gemm_packed::<1>(simd, &pack.a, &pack.b, c, i, kc, n),
                _ => unreachable!(),
            }
        }
    }
}

/// Computes `c += aᵀ · b` where `a` is `k×m`, `b` is `k×n`, `c` is `m×n`.
/// Uses a thread-local [`PackBuf`]; hot paths should prefer
/// [`matmul_tn_with`].
///
/// This is the weight-gradient kernel: `dW = Xᵀ · dY` without materialising
/// `Xᵀ`.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    PACK.with(|p| matmul_tn_with(a, b, c, k, m, n, &mut p.borrow_mut()));
}

/// [`matmul_tn`] with an explicit packing buffer. Same panel scheme,
/// shape-dependent pack/direct split and bitwise guarantee as
/// [`matmul_into_with`]; the transposed `a` layout makes its panel packing
/// a straight `memcpy` per `kk`.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_tn_with(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
    pack: &mut PackBuf,
) {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    if !worth_packing(k, n) {
        for kb in (0..k).step_by(KC) {
            let ke = (kb + KC).min(k);
            let mut i = 0;
            while i + MR <= m {
                tn_panel::<MR>(a, b, c, i, kb, ke, m, n);
                i += MR;
            }
            match m - i {
                3 => tn_panel::<3>(a, b, c, i, kb, ke, m, n),
                2 => tn_panel::<2>(a, b, c, i, kb, ke, m, n),
                1 => tn_panel::<1>(a, b, c, i, kb, ke, m, n),
                _ => {}
            }
        }
        return;
    }
    let simd = simd_tiles_available();
    for kb in (0..k).step_by(KC) {
        let ke = (kb + KC).min(k);
        let kc = ke - kb;
        pack_b_panels(b, kb, ke, n, &mut pack.b);
        let mut i = 0;
        while i + MR <= m {
            pack_a_tn(a, i, MR, kb, ke, m, &mut pack.a);
            gemm_packed::<MR>(simd, &pack.a, &pack.b, c, i, kc, n);
            i += MR;
        }
        let r = m - i;
        if r > 0 {
            pack_a_tn(a, i, r, kb, ke, m, &mut pack.a);
            match r {
                3 => gemm_packed::<3>(simd, &pack.a, &pack.b, c, i, kc, n),
                2 => gemm_packed::<2>(simd, &pack.a, &pack.b, c, i, kc, n),
                1 => gemm_packed::<1>(simd, &pack.a, &pack.b, c, i, kc, n),
                _ => unreachable!(),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NT (A · Bᵀ) kernel
// ---------------------------------------------------------------------------

/// `Q` simultaneous dot products of `a` against rows of `b` starting at row
/// `j`, each accumulated in [`LANES`] independent lanes and horizontally
/// summed in a fixed order (left to right), so results are deterministic.
/// Unpacked fallback used for column tails and `k < LANES`.
fn nt_dots<const Q: usize>(a: &[f32], b: &[f32], j: usize, k: usize) -> [f32; Q] {
    let b_rows: [&[f32]; Q] = core::array::from_fn(|q| &b[(j + q) * k..][..k]);
    let mut acc = [[0.0f32; LANES]; Q];
    let chunks = k / LANES;
    for t in 0..chunks {
        let al = &a[t * LANES..][..LANES];
        for (q, lane) in acc.iter_mut().enumerate() {
            let bl = &b_rows[q][t * LANES..][..LANES];
            for ((x, &av), &bv) in lane.iter_mut().zip(al).zip(bl) {
                *x += av * bv;
            }
        }
    }
    let mut out = [0.0f32; Q];
    for (q, lane) in acc.iter().enumerate() {
        let mut sum = 0.0f32;
        for &x in lane {
            sum += x;
        }
        for kk in chunks * LANES..k {
            sum += a[kk] * b_rows[q][kk];
        }
        out[q] = sum;
    }
    out
}

/// Packs full 4-row column tiles of `b` (`n×k`) into chunk-interleaved
/// layout: chunk `t` of tile rows `q∈0..4` lands at `(t*4+q)*LANES`, so the
/// micro-kernel reads one `a` chunk and four adjacent `b` chunks per step.
fn pack_b_nt(b: &[f32], n: usize, k: usize, chunks: usize, out: &mut Vec<f32>) {
    let tiles4 = n / 4;
    let tile_len = chunks * 4 * LANES;
    ensure_len(out, tiles4 * tile_len);
    for jt in 0..tiles4 {
        let tile = &mut out[jt * tile_len..][..tile_len];
        for q in 0..4 {
            let row = &b[(jt * 4 + q) * k..][..k];
            for t in 0..chunks {
                tile[(t * 4 + q) * LANES..][..LANES].copy_from_slice(&row[t * LANES..][..LANES]);
            }
        }
    }
}

/// Scalar lane accumulation over a packed NT tile; bit-identical to the
/// chunked phase of `nt_dots`.
#[allow(clippy::needless_range_loop)]
fn nt_acc_scalar(a_row: &[f32], b_tile: &[f32], chunks: usize, acc: &mut [[f32; LANES]; 4]) {
    for t in 0..chunks {
        let al = &a_row[t * LANES..][..LANES];
        let bt = &b_tile[t * 4 * LANES..][..4 * LANES];
        for q in 0..4 {
            let bl = &bt[q * LANES..][..LANES];
            for ((x, &av), &bv) in acc[q].iter_mut().zip(al).zip(bl) {
                *x += av * bv;
            }
        }
    }
}

/// AVX2 NT tile: lane accumulation over the packed chunks (separate
/// mul/add, no FMA), then the horizontal finish done in-register — the
/// `4×LANES` accumulator block is transposed with shuffles so one SSE lane
/// per dot product walks the exact left-to-right scalar sum sequence of
/// [`nt_finish`], 16 sequential vector adds replacing 60 scalar ones.
/// Returns the four chunk-phase dot values; the `k % LANES` tail is the
/// caller's job.
///
/// # Safety
///
/// Caller must ensure AVX2 is available, `a_row` holds at least
/// `chunks*LANES` and `b_tile` at least `chunks*4*LANES` elements.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn nt_tile_avx2(a_row: &[f32], b_tile: &[f32], chunks: usize) -> [f32; 4] {
    use core::arch::x86_64::*;
    let mut lo = [_mm256_setzero_ps(); 4];
    let mut hi = [_mm256_setzero_ps(); 4];
    let ap = a_row.as_ptr();
    let bp = b_tile.as_ptr();
    for t in 0..chunks {
        let a0 = _mm256_loadu_ps(ap.add(t * LANES));
        let a1 = _mm256_loadu_ps(ap.add(t * LANES + 8));
        for q in 0..4 {
            let base = (t * 4 + q) * LANES;
            let b0 = _mm256_loadu_ps(bp.add(base));
            let b1 = _mm256_loadu_ps(bp.add(base + 8));
            lo[q] = _mm256_add_ps(lo[q], _mm256_mul_ps(a0, b0));
            hi[q] = _mm256_add_ps(hi[q], _mm256_mul_ps(a1, b1));
        }
    }
    // Transpose the 4×8 `lo` block: `v{t}` holds lane column `t` of all
    // four dots in its low 128 bits and column `t+4` in its high bits.
    let u0 = _mm256_unpacklo_ps(lo[0], lo[1]);
    let u1 = _mm256_unpackhi_ps(lo[0], lo[1]);
    let u2 = _mm256_unpacklo_ps(lo[2], lo[3]);
    let u3 = _mm256_unpackhi_ps(lo[2], lo[3]);
    let v0 = _mm256_shuffle_ps(u0, u2, 0b0100_0100);
    let v1 = _mm256_shuffle_ps(u0, u2, 0b1110_1110);
    let v2 = _mm256_shuffle_ps(u1, u3, 0b0100_0100);
    let v3 = _mm256_shuffle_ps(u1, u3, 0b1110_1110);
    // Same for the `hi` block: columns 8..11 low, 12..15 high.
    let u4 = _mm256_unpacklo_ps(hi[0], hi[1]);
    let u5 = _mm256_unpackhi_ps(hi[0], hi[1]);
    let u6 = _mm256_unpacklo_ps(hi[2], hi[3]);
    let u7 = _mm256_unpackhi_ps(hi[2], hi[3]);
    let w0 = _mm256_shuffle_ps(u4, u6, 0b0100_0100);
    let w1 = _mm256_shuffle_ps(u4, u6, 0b1110_1110);
    let w2 = _mm256_shuffle_ps(u5, u7, 0b0100_0100);
    let w3 = _mm256_shuffle_ps(u5, u7, 0b1110_1110);
    // Strict left-to-right sum of the 16 lane columns, all four dots in
    // parallel lanes: identical IEEE sequence to the scalar finish.
    let mut s = _mm_setzero_ps();
    s = _mm_add_ps(s, _mm256_castps256_ps128(v0));
    s = _mm_add_ps(s, _mm256_castps256_ps128(v1));
    s = _mm_add_ps(s, _mm256_castps256_ps128(v2));
    s = _mm_add_ps(s, _mm256_castps256_ps128(v3));
    s = _mm_add_ps(s, _mm256_extractf128_ps(v0, 1));
    s = _mm_add_ps(s, _mm256_extractf128_ps(v1, 1));
    s = _mm_add_ps(s, _mm256_extractf128_ps(v2, 1));
    s = _mm_add_ps(s, _mm256_extractf128_ps(v3, 1));
    s = _mm_add_ps(s, _mm256_castps256_ps128(w0));
    s = _mm_add_ps(s, _mm256_castps256_ps128(w1));
    s = _mm_add_ps(s, _mm256_castps256_ps128(w2));
    s = _mm_add_ps(s, _mm256_castps256_ps128(w3));
    s = _mm_add_ps(s, _mm256_extractf128_ps(w0, 1));
    s = _mm_add_ps(s, _mm256_extractf128_ps(w1, 1));
    s = _mm_add_ps(s, _mm256_extractf128_ps(w2, 1));
    s = _mm_add_ps(s, _mm256_extractf128_ps(w3, 1));
    let mut out = [0.0f32; 4];
    _mm_storeu_ps(out.as_mut_ptr(), s);
    out
}

/// NEON lane accumulation over a packed NT tile (separate mul/add, no FMA).
///
/// # Safety
///
/// Caller must ensure `a_row` holds at least `chunks*LANES` and `b_tile` at
/// least `chunks*4*LANES` elements. NEON itself is mandatory on aarch64.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
unsafe fn nt_acc_neon(a_row: &[f32], b_tile: &[f32], chunks: usize, acc: &mut [[f32; LANES]; 4]) {
    use core::arch::aarch64::*;
    let mut v = [[vdupq_n_f32(0.0); 4]; 4];
    let ap = a_row.as_ptr();
    let bp = b_tile.as_ptr();
    for t in 0..chunks {
        let a0 = vld1q_f32(ap.add(t * LANES));
        let a1 = vld1q_f32(ap.add(t * LANES + 4));
        let a2 = vld1q_f32(ap.add(t * LANES + 8));
        let a3 = vld1q_f32(ap.add(t * LANES + 12));
        for q in 0..4 {
            let base = (t * 4 + q) * LANES;
            v[q][0] = vaddq_f32(v[q][0], vmulq_f32(a0, vld1q_f32(bp.add(base))));
            v[q][1] = vaddq_f32(v[q][1], vmulq_f32(a1, vld1q_f32(bp.add(base + 4))));
            v[q][2] = vaddq_f32(v[q][2], vmulq_f32(a2, vld1q_f32(bp.add(base + 8))));
            v[q][3] = vaddq_f32(v[q][3], vmulq_f32(a3, vld1q_f32(bp.add(base + 12))));
        }
    }
    for q in 0..4 {
        for h in 0..4 {
            vst1q_f32(acc[q].as_mut_ptr().add(h * 4), v[q][h]);
        }
    }
}

/// Four dot products against one packed NT tile: lane accumulation on the
/// packed chunks, then the fixed-order horizontal sum and sequential tail
/// of [`nt_finish`] (done in-register on AVX2), reading tail elements from
/// the raw `b` rows. Bit-identical to `nt_dots::<4>`. `simd` is the hoisted
/// [`simd_tiles_available`] answer.
#[cfg_attr(
    not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))),
    allow(unused_variables)
)]
#[inline]
fn nt_tile4(
    simd: bool,
    a_row: &[f32],
    b_tile: &[f32],
    b: &[f32],
    j: usize,
    k: usize,
    chunks: usize,
) -> [f32; 4] {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd {
        // SAFETY: AVX2 presence checked by the caller; callers size slices.
        let mut d = unsafe { nt_tile_avx2(a_row, b_tile, chunks) };
        let tail = chunks * LANES;
        if tail < k {
            for (q, sum) in d.iter_mut().enumerate() {
                let b_row = &b[(j + q) * k..][..k];
                for kk in tail..k {
                    *sum += a_row[kk] * b_row[kk];
                }
            }
        }
        return d;
    }
    let mut acc = [[0.0f32; LANES]; 4];
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if simd {
        // SAFETY: NEON is mandatory on aarch64; callers size the slices.
        unsafe { nt_acc_neon(a_row, b_tile, chunks, &mut acc) };
        return nt_finish(a_row, b, j, k, chunks, &acc);
    }
    nt_acc_scalar(a_row, b_tile, chunks, &mut acc);
    nt_finish(a_row, b, j, k, chunks, &acc)
}

/// Rewrites the short-`k` NT operand `b` (`n×k`, `k < LANES`) as its `k×n`
/// transpose so the NN kernel can take over. With no full lane chunk, the
/// NT dot order degenerates to a plain ascending-`k` sum — exactly the NN
/// kernel's per-element order — so the handoff is bit-exact while replacing
/// `n` short serial dot chains per row with full-width column tiles.
fn transpose_short_k(b: &[f32], n: usize, k: usize, out: &mut Vec<f32>) {
    ensure_len(out, k * n);
    for (j, row) in b.chunks_exact(k).enumerate() {
        for (kk, &v) in row.iter().enumerate() {
            out[kk * n + j] = v;
        }
    }
}

/// Shared NT finishing step: fixed-order horizontal lane sum plus the
/// sequential `k % LANES` tail from the raw operand.
fn nt_finish(
    a_row: &[f32],
    b: &[f32],
    j: usize,
    k: usize,
    chunks: usize,
    acc: &[[f32; LANES]; 4],
) -> [f32; 4] {
    let mut out = [0.0f32; 4];
    for (q, lane) in acc.iter().enumerate() {
        let mut sum = 0.0f32;
        for &x in lane {
            sum += x;
        }
        let b_row = &b[(j + q) * k..][..k];
        for kk in chunks * LANES..k {
            sum += a_row[kk] * b_row[kk];
        }
        out[q] = sum;
    }
    out
}

/// Computes `c += a · bᵀ` where `a` is `m×k`, `b` is `n×k`, `c` is `m×n`.
/// Uses a thread-local [`PackBuf`]; hot paths should prefer
/// [`matmul_nt_with`].
///
/// This is the input-gradient kernel: `dX = dY · Wᵀ` without materialising
/// `Wᵀ`.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    PACK.with(|p| matmul_nt_with(a, b, c, m, k, n, &mut p.borrow_mut()));
}

/// [`matmul_nt`] with an explicit packing buffer.
///
/// Three shape-dependent schedules, all computing the identical per-element
/// reduction:
///
/// * `k < LANES` — no full lane chunk exists, so the dot order degenerates
///   to a plain ascending-`k` sum; `b` is transposed once (tiny) and the
///   problem reruns as [`matmul_into_with`], which vectorises across output
///   columns instead of running short serial dots.
/// * `k ≥ LANES` with `n ≥ 4` — full 4-row column tiles of `b` are packed
///   once into a chunk-interleaved panel (fixing the strided-access penalty
///   of walking four `k`-long rows in parallel) and reused across every row
///   of `a`; on AVX2 the per-tile horizontal finish runs in-register.
/// * Otherwise — the unpacked `nt_dots` fallback.
///
/// # Panics
///
/// Panics when slice lengths do not match the stated dimensions.
pub fn matmul_nt_with(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    pack: &mut PackBuf,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    let chunks = k / LANES;
    if chunks == 0 && k > 0 {
        transpose_short_k(b, n, k, &mut pack.t);
        let bt = core::mem::take(&mut pack.t);
        matmul_into_with(a, &bt[..k * n], c, m, k, n, pack);
        pack.t = bt;
        return;
    }
    let packed = chunks > 0 && n >= 4;
    let simd = simd_tiles_available();
    if packed {
        pack_b_nt(b, n, k, chunks, &mut pack.b);
    }
    let tile_len = chunks * 4 * LANES;
    for i in 0..m {
        let a_row = &a[i * k..][..k];
        let c_row = &mut c[i * n..][..n];
        let mut j = 0;
        while j + 4 <= n {
            let d = if packed {
                let b_tile = &pack.b[(j / 4) * tile_len..][..tile_len];
                nt_tile4(simd, a_row, b_tile, b, j, k, chunks)
            } else {
                nt_dots::<4>(a_row, b, j, k)
            };
            for (cv, &x) in c_row[j..j + 4].iter_mut().zip(&d) {
                *cv += x;
            }
            j += 4;
        }
        while j < n {
            let d = nt_dots::<1>(a_row, b, j, k);
            c_row[j] += d[0];
            j += 1;
        }
    }
}

/// Naive triple-loop reference kernels plus ordered-reduction references.
///
/// The naive kernels are the approximate-correctness oracle for the packed
/// kernels above; the `*_ordered` variants replicate the production
/// kernels' exact reduction order (k-blocked partial sums, lane-split dot
/// products) with simple loops, so tests can assert *bitwise* f32 equality.
/// Never call any of them from production code.
pub mod oracle {
    /// `C = A · B` by the textbook i-j-k triple loop.
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    /// `C = Aᵀ · B` with `a` stored `k×m`.
    pub fn matmul_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[kk * m + i] * b[kk * n + j];
                }
            }
        }
        c
    }

    /// `C = A · Bᵀ` with `b` stored `n×k`.
    pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[j * k + kk];
                }
            }
        }
        c
    }

    /// `C = A · B` with the production reduction order: per-element partial
    /// sums over each `KC`-deep k-block, accumulated left to right. Bitwise
    /// equal to [`super::matmul_into`] on a zeroed output.
    pub fn matmul_ordered(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for kb in (0..k).step_by(super::KC) {
            let ke = (kb + super::KC).min(k);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in kb..ke {
                        acc += a[i * k + kk] * b[kk * n + j];
                    }
                    c[i * n + j] += acc;
                }
            }
        }
        c
    }

    /// `C = Aᵀ · B` with the production reduction order (k-blocked partial
    /// sums). Bitwise equal to [`super::matmul_tn`] on a zeroed output.
    pub fn matmul_tn_ordered(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for kb in (0..k).step_by(super::KC) {
            let ke = (kb + super::KC).min(k);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in kb..ke {
                        acc += a[kk * m + i] * b[kk * n + j];
                    }
                    c[i * n + j] += acc;
                }
            }
        }
        c
    }

    /// `C = A · Bᵀ` with the production reduction order: `LANES` independent
    /// lanes over the chunked prefix, a left-to-right horizontal sum, then
    /// the sequential tail. Bitwise equal to [`super::matmul_nt`] on a
    /// zeroed output.
    pub fn matmul_nt_ordered(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        const LANES: usize = super::LANES;
        let chunks = k / LANES;
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut lanes = [0.0f32; LANES];
                for t in 0..chunks {
                    for (l, x) in lanes.iter_mut().enumerate() {
                        *x += a[i * k + t * LANES + l] * b[j * k + t * LANES + l];
                    }
                }
                let mut sum = 0.0f32;
                for &x in &lanes {
                    sum += x;
                }
                for kk in chunks * LANES..k {
                    sum += a[i * k + kk] * b[j * k + kk];
                }
                c[i * n + j] = sum;
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(Tensor::zeros(&[3]).matmul(&b).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[3, 3]).unwrap();
        let c = a.matmul(&Tensor::eye(3)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        // Sizes chosen to straddle both the row/column tiles and the k-block.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (65, 66, 67),
            (2, 130, 3),
            (4, 257, 16),
            (5, 300, 17),
        ] {
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 11) as f32) - 5.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 53 % 13) as f32) - 6.0).collect();
            let mut c = vec![0.0; m * n];
            matmul_into(&a, &b, &mut c, m, k, n);
            let expected = oracle::matmul(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&expected) {
                assert!((x - y).abs() < 1e-3, "mismatch {x} vs {y}");
            }
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let (k, m, n) = (4, 3, 5);
        let a: Vec<f32> = (0..k * m).map(|i| i as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.25 - 1.0).collect();
        // Explicit transpose of a (k×m → m×k).
        let mut at = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                at[i * k + kk] = a[kk * m + i];
            }
        }
        let expected = oracle::matmul(&at, &b, m, k, n);
        let mut c = vec![0.0; m * n];
        matmul_tn(&a, &b, &mut c, k, m, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..n * k).map(|i| i as f32 * 0.25 - 1.0).collect();
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b[j * k + kk];
            }
        }
        let expected = oracle::matmul(&a, &bt, m, k, n);
        let mut c = vec![0.0; m * n];
        matmul_nt(&a, &b, &mut c, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        // All three kernels are `c +=`, not `c =`.
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut c = [100.0f32; 4];
        matmul_into(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [119.0, 122.0, 143.0, 150.0]);
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn packed_bitwise_matches_ordered_oracle() {
        // Shapes straddle every boundary: MR/NR tails, k-block edges, the
        // LANES remainder, and the 4-wide NT column tiles.
        for &(m, k, n) in &[
            (1, 1, 1),
            (5, 17, 3),
            (4, 256, 16),
            (7, 257, 19),
            (13, 300, 33),
            (65, 66, 67),
        ] {
            let a = fill(m * k, (m * 1000 + k * 10 + n) as u64);
            let b_nn = fill(k * n, (n * 1000 + m) as u64);
            let mut c = vec![0.0f32; m * n];
            matmul_into(&a, &b_nn, &mut c, m, k, n);
            assert_eq!(
                c,
                oracle::matmul_ordered(&a, &b_nn, m, k, n),
                "{m}x{k}x{n} nn"
            );

            let a_tn = fill(k * m, (m + k + n) as u64);
            let mut c = vec![0.0f32; m * n];
            matmul_tn(&a_tn, &b_nn, &mut c, k, m, n);
            assert_eq!(
                c,
                oracle::matmul_tn_ordered(&a_tn, &b_nn, k, m, n),
                "{m}x{k}x{n} tn"
            );

            let b_nt = fill(n * k, (k * 7 + 3) as u64);
            let mut c = vec![0.0f32; m * n];
            matmul_nt(&a, &b_nt, &mut c, m, k, n);
            assert_eq!(
                c,
                oracle::matmul_nt_ordered(&a, &b_nt, m, k, n),
                "{m}x{k}x{n} nt"
            );
        }
    }

    #[test]
    fn pack_buf_reuse_across_shapes() {
        // One PackBuf serving shrinking and growing shapes must not leak
        // stale panel data between calls.
        let mut pack = PackBuf::new();
        for &(m, k, n) in &[(9, 280, 21), (2, 3, 2), (33, 64, 47), (1, 500, 1)] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c = vec![0.0f32; m * n];
            matmul_into_with(&a, &b, &mut c, m, k, n, &mut pack);
            assert_eq!(c, oracle::matmul_ordered(&a, &b, m, k, n));

            let b_nt = fill(n * k, 3);
            let mut c = vec![0.0f32; m * n];
            matmul_nt_with(&a, &b_nt, &mut c, m, k, n, &mut pack);
            assert_eq!(c, oracle::matmul_nt_ordered(&a, &b_nt, m, k, n));
        }
    }
}
