//! Seeded weight-initialisation schemes.
//!
//! Every initialiser takes an explicit RNG so model construction is fully
//! deterministic — a requirement for reproducible federated-learning
//! experiments where all clients must start from the same global model.

use crate::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Samples a tensor uniformly from `[-limit, limit]`.
///
/// # Panics
///
/// Panics when `limit` is negative or not finite.
pub fn uniform_init<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], limit: f32) -> Tensor {
    assert!(
        limit.is_finite() && limit >= 0.0,
        "limit must be a non-negative finite value"
    );
    if limit == 0.0 {
        return Tensor::zeros(dims);
    }
    let dist = Uniform::new_inclusive(-limit, limit);
    let volume: usize = dims.iter().product();
    let data: Vec<f32> = (0..volume).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

/// Xavier/Glorot uniform initialisation: `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// Suitable for layers followed by symmetric activations (tanh, identity).
///
/// # Panics
///
/// Panics when `fan_in + fan_out` is zero.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_init(rng, dims, limit)
}

/// He (Kaiming) normal initialisation: `σ = sqrt(2 / fan_in)`.
///
/// Suitable for layers followed by ReLU, as in the paper's CNN/ResNet/VGG
/// models.
///
/// # Panics
///
/// Panics when `fan_in` is zero.
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let sigma = (2.0 / fan_in as f32).sqrt();
    let volume: usize = dims.iter().product();
    // Box-Muller transform; rand's StandardNormal lives in rand_distr which we
    // avoid pulling in for one distribution.
    let mut data = Vec::with_capacity(volume);
    while data.len() < volume {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * sigma);
        if data.len() < volume {
            data.push(r * theta.sin() * sigma);
        }
    }
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform_init(&mut rng, &[1000], 0.5);
        assert!(t.as_slice().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn zero_limit_gives_zeros() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform_init(&mut rng, &[10], 0.0);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = uniform_init(&mut StdRng::seed_from_u64(42), &[64], 1.0);
        let b = uniform_init(&mut StdRng::seed_from_u64(42), &[64], 1.0);
        let c = uniform_init(&mut StdRng::seed_from_u64(43), &[64], 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(7);
        let wide = xavier_uniform(&mut rng, &[4096], 2048, 2048);
        let limit = (6.0f32 / 4096.0).sqrt();
        assert!(wide.as_slice().iter().all(|&x| x.abs() <= limit + 1e-6));
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let fan_in = 128;
        let t = he_normal(&mut rng, &[20_000], fan_in);
        let var: f32 = t.as_slice().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        let expected = 2.0 / fan_in as f32;
        assert!(
            (var - expected).abs() < expected * 0.1,
            "sample variance {var} too far from {expected}"
        );
        // Mean near zero.
        assert!(t.mean().abs() < 0.005);
    }

    #[test]
    fn he_normal_odd_volume() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(he_normal(&mut rng, &[7], 4).len(), 7);
    }
}
