use std::fmt;

/// Shape of a tensor: the extent of each dimension, row-major.
///
/// `Shape` is a thin, validated wrapper around `Vec<usize>` providing volume
/// and stride computation. It is cheap to clone for the small ranks (≤ 4)
/// used throughout the workspace.
///
/// # Examples
///
/// ```
/// use adafl_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Replaces the extents in place, reusing the existing allocation when
    /// capacity allows (the common case: rank is stable across reuse).
    pub fn set_dims(&mut self, dims: &[usize]) {
        self.0.clear();
        self.0.extend_from_slice(dims);
    }

    /// Returns the number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Returns the extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Returns the total number of elements (product of extents).
    ///
    /// An empty (rank-0) shape has volume 1, matching the scalar convention.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns the row-major strides for this shape.
    ///
    /// The last dimension always has stride 1.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Returns the extent of dimension `axis`, or `None` if out of bounds.
    pub fn dim(&self, axis: usize) -> Option<usize> {
        self.0.get(axis).copied()
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_empty_shape_is_one() {
        assert_eq!(Shape::new(&[]).volume(), 1);
    }

    #[test]
    fn volume_multiplies_extents() {
        assert_eq!(Shape::new(&[2, 3, 4]).volume(), 24);
        assert_eq!(Shape::new(&[7]).volume(), 7);
        assert_eq!(Shape::new(&[5, 0, 3]).volume(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[10]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn dim_access_bounds_checked() {
        let s = Shape::new(&[4, 5]);
        assert_eq!(s.dim(0), Some(4));
        assert_eq!(s.dim(1), Some(5));
        assert_eq!(s.dim(2), None);
    }

    #[test]
    fn conversions_round_trip() {
        let dims = vec![3usize, 2];
        let s: Shape = dims.clone().into();
        assert_eq!(s.as_ref(), dims.as_slice());
        assert_eq!(s.rank(), 2);
    }

    #[test]
    fn display_shows_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }
}
