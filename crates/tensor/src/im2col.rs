//! `im2col` / `col2im` transforms that turn 2-D convolution into matrix
//! multiplication.
//!
//! For an input of shape `[channels, height, width]` and a kernel of
//! `kh × kw`, [`im2col`] produces a `[kh·kw·channels, out_h·out_w]` patch
//! matrix; convolution is then a single matmul with the `[out_channels,
//! kh·kw·channels]` weight matrix. [`col2im`] scatters patch-space gradients
//! back to image space for the backward pass.

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D convolution: input/kernel sizes, stride and padding.
///
/// Captures everything needed to compute output dimensions and run
/// [`im2col`]/[`col2im`]; constructed once per layer.
///
/// # Examples
///
/// ```
/// use adafl_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(1, 28, 28, 5, 1, 0);
/// assert_eq!((g.out_h(), g.out_w()), (24, 24));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    channels: usize,
    height: usize,
    width: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
}

impl Conv2dGeometry {
    /// Creates convolution geometry for a square `kernel × kernel` filter.
    ///
    /// # Panics
    ///
    /// Panics when `stride` is zero or the kernel (plus padding) does not fit
    /// within the input.
    pub fn new(
        channels: usize,
        height: usize,
        width: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(
            height + 2 * padding >= kernel && width + 2 * padding >= kernel,
            "kernel {kernel} larger than padded input {height}x{width} (+{padding})"
        );
        Conv2dGeometry {
            channels,
            height,
            width,
            kernel,
            stride,
            padding,
        }
    }

    /// Input channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Input height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Input width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each border.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.height + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.width + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Rows of the patch matrix: `kernel² · channels`.
    pub fn patch_len(&self) -> usize {
        self.kernel * self.kernel * self.channels
    }

    /// Columns of the patch matrix: `out_h · out_w`.
    pub fn n_patches(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Flat input volume `channels · height · width`.
    pub fn input_volume(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// Unfolds a `[channels, height, width]` image into a
/// `[patch_len, n_patches]` matrix of convolution patches.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `image.len()` differs from
/// the geometry's input volume.
pub fn im2col(image: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    if image.len() != geom.input_volume() {
        return Err(TensorError::LengthMismatch {
            expected: geom.input_volume(),
            actual: image.len(),
        });
    }
    let mut out = vec![0.0f32; geom.patch_len() * geom.n_patches()];
    im2col_into(image.as_slice(), geom, &mut out);
    Tensor::from_vec(out, &[geom.patch_len(), geom.n_patches()])
}

/// Slice-based [`im2col`] that writes into a caller-provided buffer of
/// `patch_len() · n_patches()` elements, allocating nothing.
///
/// Every position is written (padding positions as zero), so the buffer may
/// hold stale data from a previous call.
///
/// # Panics
///
/// Panics when `img` or `out` has the wrong length for the geometry.
pub fn im2col_into(img: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
    assert_eq!(img.len(), geom.input_volume(), "im2col_into: image length");
    assert_eq!(
        out.len(),
        geom.patch_len() * geom.n_patches(),
        "im2col_into: output length"
    );
    let (c, h, w) = (geom.channels, geom.height, geom.width);
    let (kh, stride, pad) = (geom.kernel, geom.stride, geom.padding);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let n_patches = oh * ow;
    let mut row = 0usize;
    for ch in 0..c {
        for ky in 0..kh {
            for kx in 0..kh {
                let out_row = &mut out[row * n_patches..(row + 1) * n_patches];
                let mut patch = 0usize;
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        out_row[patch] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize
                        {
                            img[ch * h * w + iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        patch += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Folds a `[patch_len, n_patches]` gradient matrix back into
/// `[channels, height, width]` image space, summing overlapping patches.
///
/// This is the adjoint of [`im2col`] and is used to propagate convolution
/// gradients to the layer input.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `cols.len()` differs from the
/// geometry's patch-matrix volume.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    let expected = geom.patch_len() * geom.n_patches();
    if cols.len() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: cols.len(),
        });
    }
    let mut img = vec![0.0f32; geom.input_volume()];
    col2im_into(cols.as_slice(), geom, &mut img);
    Tensor::from_vec(img, &[geom.channels, geom.height, geom.width])
}

/// Slice-based [`col2im`] that overwrites a caller-provided buffer of
/// `input_volume()` elements, allocating nothing.
///
/// The buffer is zeroed first, then overlapping patches are summed into it.
///
/// # Panics
///
/// Panics when `cols` or `img` has the wrong length for the geometry.
pub fn col2im_into(cols: &[f32], geom: &Conv2dGeometry, img: &mut [f32]) {
    assert_eq!(
        cols.len(),
        geom.patch_len() * geom.n_patches(),
        "col2im_into: cols length"
    );
    assert_eq!(img.len(), geom.input_volume(), "col2im_into: image length");
    img.fill(0.0);
    let (c, h, w) = (geom.channels, geom.height, geom.width);
    let (kh, stride, pad) = (geom.kernel, geom.stride, geom.padding);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let n_patches = oh * ow;
    let mut row = 0usize;
    for ch in 0..c {
        for ky in 0..kh {
            for kx in 0..kh {
                let in_row = &cols[row * n_patches..(row + 1) * n_patches];
                let mut patch = 0usize;
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            img[ch * h * w + iy as usize * w + ix as usize] += in_row[patch];
                        }
                        patch += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_output_dims() {
        let g = Conv2dGeometry::new(3, 32, 32, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
        let g2 = Conv2dGeometry::new(1, 28, 28, 5, 1, 0);
        assert_eq!((g2.out_h(), g2.out_w()), (24, 24));
        let g3 = Conv2dGeometry::new(1, 8, 8, 2, 2, 0);
        assert_eq!((g3.out_h(), g3.out_w()), (4, 4));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        Conv2dGeometry::new(1, 4, 4, 2, 0, 0);
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn oversized_kernel_panics() {
        Conv2dGeometry::new(1, 2, 2, 5, 1, 0);
    }

    #[test]
    fn im2col_simple_2x2() {
        // 1 channel, 3x3 image, 2x2 kernel, stride 1, no padding → 4 patches.
        let img = Tensor::from_vec((1..=9).map(|i| i as f32).collect(), &[9]).unwrap();
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0);
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 4]);
        // Patch top-left corners: (0,0),(0,1),(1,0),(1,1).
        // Row 0 = kernel position (0,0) across patches: 1,2,4,5
        assert_eq!(cols.row(0), &[1.0, 2.0, 4.0, 5.0]);
        // Row 3 = kernel position (1,1): 5,6,8,9
        assert_eq!(cols.row(3), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_respects_padding() {
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let g = Conv2dGeometry::new(1, 2, 2, 3, 1, 1);
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.shape().dims(), &[9, 4]);
        // Kernel centre row (position (1,1)) sees the raw pixels.
        assert_eq!(cols.row(4), &[1.0, 2.0, 3.0, 4.0]);
        // Corner position (0,0) only overlaps the image for the last patch.
        assert_eq!(cols.row(0), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn im2col_validates_length() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0);
        let img = Tensor::from_slice(&[1.0; 5]);
        assert!(im2col(&img, &g).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
        // checked with pseudo-random vectors.
        let g = Conv2dGeometry::new(2, 5, 5, 3, 2, 1);
        let x: Vec<f32> = (0..g.input_volume())
            .map(|i| ((i * 31 % 17) as f32) - 8.0)
            .collect();
        let y: Vec<f32> = (0..g.patch_len() * g.n_patches())
            .map(|i| ((i * 29 % 19) as f32) - 9.0)
            .collect();
        let xt = Tensor::from_vec(x.clone(), &[g.input_volume()]).unwrap();
        let yt = Tensor::from_vec(y.clone(), &[g.patch_len() * g.n_patches()]).unwrap();
        let ax = im2col(&xt, &g).unwrap();
        let aty = col2im(&yt, &g).unwrap();
        let lhs: f32 = ax.as_slice().iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(aty.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_validates_length() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0);
        assert!(col2im(&Tensor::from_slice(&[0.0; 3]), &g).is_err());
    }
}
