//! Reductions: sums, means, norms, extrema and softmax.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements; `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn max(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| {
                Some(acc.map_or(x, |a| a.max(x)))
            })
            .ok_or(TensorError::Empty { op: "max" })
    }

    /// Index of the maximum element (first occurrence).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "argmax" });
        }
        let mut best = 0usize;
        let s = self.as_slice();
        for (i, &x) in s.iter().enumerate() {
            if x > s[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax of a rank-2 tensor (one prediction per batch row).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices or
    /// [`TensorError::Empty`] when a row is empty.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "argmax_rows",
            });
        }
        let cols = self.shape().dims()[1];
        if cols == 0 {
            return Err(TensorError::Empty { op: "argmax_rows" });
        }
        Ok(self
            .as_slice()
            .chunks(cols)
            .map(|row| {
                let mut best = 0usize;
                for (i, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect())
    }

    /// Sums each column of a rank-2 tensor, returning a rank-1 tensor.
    ///
    /// Used to reduce per-sample bias gradients across a batch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "sum_rows",
            });
        }
        let cols = self.shape().dims()[1];
        let mut out = vec![0.0f32; cols];
        for row in self.as_slice().chunks(cols) {
            for (o, x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        Ok(Tensor::from(out))
    }

    /// Numerically-stable row-wise softmax of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "softmax_rows",
            });
        }
        let cols = self.shape().dims()[1];
        let mut out = Vec::with_capacity(self.len());
        for row in self.as_slice().chunks(cols) {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|x| (x - m).exp()).collect();
            let z: f32 = exps.iter().sum();
            out.extend(exps.iter().map(|e| e / z));
        }
        Tensor::from_vec(out, self.shape().dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean_norm() {
        let t = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.mean(), 3.5);
        assert!((t.norm() - 5.0).abs() < 1e-6);
        let empty = Tensor::from_slice(&[]);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.norm(), 0.0);
    }

    #[test]
    fn max_and_argmax() {
        let t = Tensor::from_slice(&[1.0, 9.0, 3.0, 9.0]);
        assert_eq!(t.max().unwrap(), 9.0);
        assert_eq!(t.argmax().unwrap(), 1); // first occurrence
        assert!(Tensor::from_slice(&[]).max().is_err());
        assert!(Tensor::from_slice(&[]).argmax().is_err());
    }

    #[test]
    fn argmax_rows_per_row() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2], &[2, 2]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
        assert!(Tensor::from_slice(&[1.0]).argmax_rows().is_err());
    }

    #[test]
    fn sum_rows_reduces_batch() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum_rows().unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_stable() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0, -1000.0, -1001.0], &[2, 2]).unwrap();
        let s = t.softmax_rows().unwrap();
        for row in s.as_slice().chunks(2) {
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|x| x.is_finite()));
        }
        // Larger logit gets larger probability.
        assert!(s.as_slice()[1] > s.as_slice()[0]);
        assert!(s.as_slice()[2] > s.as_slice()[3]);
    }
}
