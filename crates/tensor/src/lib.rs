//! Dense `f32` tensor substrate for the AdaFL federated-learning reproduction.
//!
//! This crate provides the minimal-but-complete numeric core that the rest of
//! the workspace builds on: a contiguous row-major n-dimensional [`Tensor`],
//! shape/stride bookkeeping ([`Shape`]), elementwise and reduction kernels,
//! a cache-blocked matrix multiply, and the `im2col`/`col2im` transforms that
//! power convolution in `adafl-nn`.
//!
//! No external BLAS or ML dependency is used; everything is portable Rust so
//! the workspace runs on embedded-class devices and CI machines alike.
//!
//! # Examples
//!
//! ```
//! use adafl_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok::<(), adafl_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod im2col;
mod init;
mod matmul;
mod ops;
mod reduce;
mod shape;
mod tensor;
pub mod vecops;

pub use error::TensorError;
pub use im2col::{col2im, col2im_into, im2col, im2col_into, Conv2dGeometry};
pub use init::{he_normal, uniform_init, xavier_uniform};
pub use matmul::{
    matmul_into, matmul_into_with, matmul_nt, matmul_nt_with, matmul_tn, matmul_tn_with, oracle,
    PackBuf,
};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
