//! Property-based tests for the tensor substrate.

use adafl_tensor::{col2im, im2col, vecops, Conv2dGeometry, Tensor};
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #[test]
    fn add_is_commutative(data in vec_f32(16), data2 in vec_f32(16)) {
        let a = Tensor::from_slice(&data);
        let b = Tensor::from_slice(&data2);
        let ab = &a + &b;
        let ba = &b + &a;
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    #[test]
    fn sub_then_add_round_trips(data in vec_f32(16), data2 in vec_f32(16)) {
        let a = Tensor::from_slice(&data);
        let b = Tensor::from_slice(&data2);
        let r = &(&a - &b) + &b;
        for (x, y) in r.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3);
        }
    }

    #[test]
    fn scale_is_linear(data in vec_f32(8), k in -10.0f32..10.0) {
        let a = Tensor::from_slice(&data);
        let lhs = a.scale(k).sum();
        let rhs = a.sum() * k;
        prop_assert!((lhs - rhs).abs() <= 1e-1 * (1.0 + rhs.abs()));
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i as u64 * 7 + seed) % 13) as f32).collect();
        let t = Tensor::from_vec(data, &[rows, cols]).unwrap();
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(t, tt);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in vec_f32(6), b in vec_f32(6), c in vec_f32(6)
    ) {
        // A·(B+C) == A·B + A·C for 2x3 · 3x2 matrices.
        let a = Tensor::from_vec(a, &[2, 3]).unwrap();
        let b = Tensor::from_vec(b, &[3, 2]).unwrap();
        let c = Tensor::from_vec(c, &[3, 2]).unwrap();
        let lhs = a.matmul(&(&b + &c)).unwrap();
        let rhs = &a.matmul(&b).unwrap() + &a.matmul(&c).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-1);
        }
    }

    #[test]
    fn cosine_similarity_bounded(a in vec_f32(32), b in vec_f32(32)) {
        let c = vecops::cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn cosine_similarity_scale_invariant(a in vec_f32(16), b in vec_f32(16), k in 0.1f32..50.0) {
        let scaled: Vec<f32> = a.iter().map(|x| x * k).collect();
        let c1 = vecops::cosine_similarity(&a, &b);
        let c2 = vecops::cosine_similarity(&scaled, &b);
        prop_assert!((c1 - c2).abs() <= 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(data in vec_f32(12)) {
        let t = Tensor::from_vec(data, &[3, 4]).unwrap();
        let s = t.softmax_rows().unwrap();
        for row in s.as_slice().chunks(4) {
            let total: f32 = row.iter().sum();
            prop_assert!((total - 1.0).abs() <= 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..100,
    ) {
        let (c, h, w) = (2usize, 6usize, 6usize);
        prop_assume!(h + 2 * padding >= kernel);
        let geom = Conv2dGeometry::new(c, h, w, kernel, stride, padding);
        let xs: Vec<f32> = (0..geom.input_volume())
            .map(|i| (((i as u64 * 31 + seed) % 17) as f32) - 8.0)
            .collect();
        let ys: Vec<f32> = (0..geom.patch_len() * geom.n_patches())
            .map(|i| (((i as u64 * 29 + seed) % 19) as f32) - 9.0)
            .collect();
        let x = Tensor::from_vec(xs.clone(), &[geom.input_volume()]).unwrap();
        let y = Tensor::from_vec(ys.clone(), &[geom.patch_len() * geom.n_patches()]).unwrap();
        let ax = im2col(&x, &geom).unwrap();
        let aty = col2im(&y, &geom).unwrap();
        let lhs = vecops::dot(ax.as_slice(), &ys);
        let rhs = vecops::dot(&xs, aty.as_slice());
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn weighted_average_stays_in_hull(v1 in vec_f32(4), v2 in vec_f32(4), w in 0.01f32..0.99) {
        let avg = vecops::weighted_average(&[&v1, &v2], &[w, 1.0 - w]).unwrap();
        for i in 0..4 {
            let lo = v1[i].min(v2[i]) - 1e-3;
            let hi = v1[i].max(v2[i]) + 1e-3;
            prop_assert!(avg[i] >= lo && avg[i] <= hi);
        }
    }

    #[test]
    fn clip_l2_never_exceeds_bound(mut a in vec_f32(16), max_norm in 0.1f32..10.0) {
        vecops::clip_l2(&mut a, max_norm);
        prop_assert!(vecops::l2_norm(&a) <= max_norm * 1.001);
    }
}
