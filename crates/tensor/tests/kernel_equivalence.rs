//! Property tests: the register-blocked matmul kernels must agree with the
//! naive triple-loop oracle on ragged shapes.
//!
//! Shapes are drawn from {1..17} ∪ {63, 64, 65} per dimension, straddling
//! every kernel boundary: partial MR row tiles, partial NR column tiles,
//! and the KC k-block edge. Accumulation order differs between the blocked
//! kernels and the oracle, so equality is up to a small relative tolerance.

use adafl_tensor::{matmul_into, matmul_nt, matmul_tn, oracle};
use proptest::prelude::*;

/// Maps a raw draw in `0..20` onto {1..17} ∪ {63, 64, 65}.
fn dim(raw: usize) -> usize {
    match raw {
        0..=16 => raw + 1,
        17 => 63,
        18 => 64,
        _ => 65,
    }
}

/// Deterministic data fill: small signed values, varied per seed.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed)
                .rotate_left(17);
            ((x % 31) as f32 - 15.0) * 0.25
        })
        .collect()
}

fn close(x: f32, y: f32) -> bool {
    (x - y).abs() <= 1e-3 * (1.0 + y.abs())
}

proptest! {
    #[test]
    fn blocked_matmul_matches_oracle(
        rm in 0usize..20, rk in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (dim(rm), dim(rk), dim(rn));
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0xA5A5);
        let mut c = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut c, m, k, n);
        let expected = oracle::matmul(&a, &b, m, k, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(close(x, y), "C[{i}] = {x} vs oracle {y} (m={m} k={k} n={n})");
        }
    }

    #[test]
    fn blocked_matmul_tn_matches_oracle(
        rm in 0usize..20, rk in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (dim(rm), dim(rk), dim(rn));
        // A stored k×m (transposed operand).
        let a = fill(k * m, seed);
        let b = fill(k * n, seed ^ 0x5A5A);
        let mut c = vec![0.0f32; m * n];
        matmul_tn(&a, &b, &mut c, k, m, n);
        let expected = oracle::matmul_tn(&a, &b, k, m, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(close(x, y), "C[{i}] = {x} vs oracle {y} (m={m} k={k} n={n})");
        }
    }

    #[test]
    fn blocked_matmul_nt_matches_oracle(
        rm in 0usize..20, rk in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (dim(rm), dim(rk), dim(rn));
        let a = fill(m * k, seed);
        // B stored n×k (transposed operand).
        let b = fill(n * k, seed ^ 0x3C3C);
        let mut c = vec![0.0f32; m * n];
        matmul_nt(&a, &b, &mut c, m, k, n);
        let expected = oracle::matmul_nt(&a, &b, m, k, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(close(x, y), "C[{i}] = {x} vs oracle {y} (m={m} k={k} n={n})");
        }
    }

    #[test]
    fn blocked_kernels_accumulate_into_c(
        rm in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        // The kernels accumulate (C += A·B); engines rely on this for
        // per-sample gradient accumulation.
        let (m, k, n) = (dim(rm), 8, dim(rn));
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0x77);
        let mut c = vec![1.0f32; m * n];
        matmul_into(&a, &b, &mut c, m, k, n);
        let expected = oracle::matmul(&a, &b, m, k, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(close(x, y + 1.0), "C[{i}] = {x} vs oracle+1 {} ", y + 1.0);
        }
    }
}
