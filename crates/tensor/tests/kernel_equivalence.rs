//! Property tests: the panel-packed matmul kernels must agree with the
//! naive triple-loop oracle on ragged shapes.
//!
//! Shapes are drawn from {1..17} ∪ {63, 64, 80} per dimension, straddling
//! every kernel boundary: partial MR row tiles, partial NR column tiles,
//! and the KC k-block edge. Two comparison tiers:
//!
//! * against the **naive** oracles, whose accumulation order differs,
//!   equality holds up to a small relative tolerance;
//! * against the **ordered** oracles, which replay the production
//!   reduction order in plain scalar code, equality is **exact** — the
//!   bitwise contract the golden traces rely on, and the property that
//!   pins the SIMD tiles (`--features simd`) to the scalar ones.

use adafl_tensor::{
    matmul_into, matmul_into_with, matmul_nt, matmul_nt_with, matmul_tn, matmul_tn_with, oracle,
    PackBuf,
};
use proptest::prelude::*;

/// Maps a raw draw in `0..20` onto {1..17} ∪ {63, 64, 80}.
///
/// 80 pushes the `B` k-slab past the pack-vs-direct threshold, so shape
/// pairs drawn here exercise both schedules of every kernel.
fn dim(raw: usize) -> usize {
    match raw {
        0..=16 => raw + 1,
        17 => 63,
        18 => 64,
        _ => 80,
    }
}

/// Deterministic data fill: small signed values, varied per seed.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed)
                .rotate_left(17);
            ((x % 31) as f32 - 15.0) * 0.25
        })
        .collect()
}

fn close(x: f32, y: f32) -> bool {
    (x - y).abs() <= 1e-3 * (1.0 + y.abs())
}

proptest! {
    #[test]
    fn blocked_matmul_matches_oracle(
        rm in 0usize..20, rk in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (dim(rm), dim(rk), dim(rn));
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0xA5A5);
        let mut c = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut c, m, k, n);
        let expected = oracle::matmul(&a, &b, m, k, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(close(x, y), "C[{i}] = {x} vs oracle {y} (m={m} k={k} n={n})");
        }
    }

    #[test]
    fn blocked_matmul_tn_matches_oracle(
        rm in 0usize..20, rk in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (dim(rm), dim(rk), dim(rn));
        // A stored k×m (transposed operand).
        let a = fill(k * m, seed);
        let b = fill(k * n, seed ^ 0x5A5A);
        let mut c = vec![0.0f32; m * n];
        matmul_tn(&a, &b, &mut c, k, m, n);
        let expected = oracle::matmul_tn(&a, &b, k, m, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(close(x, y), "C[{i}] = {x} vs oracle {y} (m={m} k={k} n={n})");
        }
    }

    #[test]
    fn blocked_matmul_nt_matches_oracle(
        rm in 0usize..20, rk in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (dim(rm), dim(rk), dim(rn));
        let a = fill(m * k, seed);
        // B stored n×k (transposed operand).
        let b = fill(n * k, seed ^ 0x3C3C);
        let mut c = vec![0.0f32; m * n];
        matmul_nt(&a, &b, &mut c, m, k, n);
        let expected = oracle::matmul_nt(&a, &b, m, k, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(close(x, y), "C[{i}] = {x} vs oracle {y} (m={m} k={k} n={n})");
        }
    }

    #[test]
    fn packed_matmul_bitwise_matches_ordered_oracle(
        rm in 0usize..20, rk in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (dim(rm), dim(rk), dim(rn));
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0xA5A5);
        let mut c = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut c, m, k, n);
        let expected = oracle::matmul_ordered(&a, &b, m, k, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "C[{i}] = {x:?} vs ordered oracle {y:?} (m={m} k={k} n={n})"
            );
        }
    }

    #[test]
    fn packed_matmul_tn_bitwise_matches_ordered_oracle(
        rm in 0usize..20, rk in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (dim(rm), dim(rk), dim(rn));
        let a = fill(k * m, seed);
        let b = fill(k * n, seed ^ 0x5A5A);
        let mut c = vec![0.0f32; m * n];
        matmul_tn(&a, &b, &mut c, k, m, n);
        let expected = oracle::matmul_tn_ordered(&a, &b, k, m, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "C[{i}] = {x:?} vs ordered oracle {y:?} (m={m} k={k} n={n})"
            );
        }
    }

    #[test]
    fn packed_matmul_nt_bitwise_matches_ordered_oracle(
        rm in 0usize..20, rk in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        let (m, k, n) = (dim(rm), dim(rk), dim(rn));
        let a = fill(m * k, seed);
        let b = fill(n * k, seed ^ 0x3C3C);
        let mut c = vec![0.0f32; m * n];
        matmul_nt(&a, &b, &mut c, m, k, n);
        let expected = oracle::matmul_nt_ordered(&a, &b, m, k, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "C[{i}] = {x:?} vs ordered oracle {y:?} (m={m} k={k} n={n})"
            );
        }
    }

    #[test]
    fn reused_pack_buffer_is_bitwise_equivalent(
        rm in 0usize..20, rk in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        // One PackBuf carried across all three kernels and a second,
        // differently-shaped call: stale panel contents must never leak.
        let (m, k, n) = (dim(rm), dim(rk), dim(rn));
        let mut pack = PackBuf::new();
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0xA5A5);
        let bt = fill(n * k, seed ^ 0x3C3C);
        let at = fill(k * m, seed ^ 0x5A5A);

        let mut c = vec![0.0f32; m * n];
        matmul_into_with(&a, &b, &mut c, m, k, n, &mut pack);
        let mut fresh = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut fresh, m, k, n);
        prop_assert_eq!(&c, &fresh);

        let mut c = vec![0.0f32; m * n];
        matmul_tn_with(&at, &b, &mut c, k, m, n, &mut pack);
        let mut fresh = vec![0.0f32; m * n];
        matmul_tn(&at, &b, &mut fresh, k, m, n);
        prop_assert_eq!(&c, &fresh);

        let mut c = vec![0.0f32; m * n];
        matmul_nt_with(&a, &bt, &mut c, m, k, n, &mut pack);
        let mut fresh = vec![0.0f32; m * n];
        matmul_nt(&a, &bt, &mut fresh, m, k, n);
        prop_assert_eq!(&c, &fresh);

        // Smaller follow-up shape through the same (now oversized) buffer.
        let (m2, k2, n2) = (m.div_ceil(2), k.div_ceil(2), n.div_ceil(2));
        let a2 = fill(m2 * k2, seed ^ 0x99);
        let b2 = fill(k2 * n2, seed ^ 0x66);
        let mut c = vec![0.0f32; m2 * n2];
        matmul_into_with(&a2, &b2, &mut c, m2, k2, n2, &mut pack);
        let expected = oracle::matmul_ordered(&a2, &b2, m2, k2, n2);
        prop_assert_eq!(&c, &expected);
    }

    #[test]
    fn blocked_kernels_accumulate_into_c(
        rm in 0usize..20, rn in 0usize..20, seed in 0u64..1_000_000
    ) {
        // The kernels accumulate (C += A·B); engines rely on this for
        // per-sample gradient accumulation.
        let (m, k, n) = (dim(rm), 8, dim(rn));
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0x77);
        let mut c = vec![1.0f32; m * n];
        matmul_into(&a, &b, &mut c, m, k, n);
        let expected = oracle::matmul(&a, &b, m, k, n);
        for (i, (&x, &y)) in c.iter().zip(&expected).enumerate() {
            prop_assert!(close(x, y + 1.0), "C[{i}] = {x} vs oracle+1 {} ", y + 1.0);
        }
    }
}
