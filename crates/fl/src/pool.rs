//! Persistent worker pool for parallel client training.
//!
//! The engines used to spawn one OS thread per selected client per round
//! (`std::thread::scope`), which puts thread creation and teardown on the
//! hot path of every simulated round. [`WorkerPool`] keeps a fixed set of
//! workers alive for the engine's whole lifetime and feeds them scoped jobs
//! over a channel; [`WorkerPool::scope_run`] returns results in submission
//! order, so parallel and sequential execution stay byte-identical.
//!
//! Built on `std` threads and channels only — no external dependencies.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A lifetime-erased unit of work queued to the workers.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size pool of persistent worker threads.
///
/// Created once per engine; dropped with the engine (workers shut down and
/// are joined). On single-core hosts (or `threads <= 1`) the pool spawns no
/// workers at all and [`WorkerPool::scope_run`] runs jobs inline, which is
/// both fastest and trivially deterministic.
///
/// # Examples
///
/// ```
/// use adafl_fl::pool::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let data = vec![1u64, 2, 3];
/// let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = data
///     .iter()
///     .map(|&x| Box::new(move || x * 10) as Box<_>)
///     .collect();
/// assert_eq!(pool.scope_run(jobs), vec![10, 20, 30]);
/// ```
pub struct WorkerPool {
    /// `None` only during drop (taken to hang up the channel).
    injector: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn worker_loop(queue: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only while dequeuing, never while running a job.
        let job = match queue.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => break,
        };
        match job {
            Ok(job) => job(),
            // Sender dropped: the pool is shutting down.
            Err(_) => break,
        }
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` workers. `threads <= 1` spawns no
    /// threads; jobs then run inline on the caller.
    pub fn new(threads: usize) -> Self {
        let (tx, rx) = channel::<Job>();
        let queue = Arc::new(Mutex::new(rx));
        let workers = if threads > 1 {
            (0..threads)
                .map(|i| {
                    let queue = Arc::clone(&queue);
                    std::thread::Builder::new()
                        .name(format!("adafl-worker-{i}"))
                        .spawn(move || worker_loop(queue))
                        .expect("failed to spawn worker thread")
                })
                .collect()
        } else {
            Vec::new()
        };
        WorkerPool {
            injector: Some(tx),
            workers,
        }
    }

    /// Creates a pool sized by the `ADAFL_THREADS` environment variable
    /// when it holds a positive integer, falling back to the host's
    /// available parallelism. The variable is how bench binaries and CI
    /// pin pool width without plumbing a flag through every constructor.
    pub fn from_env_or_default() -> Self {
        match std::env::var("ADAFL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => WorkerPool::new(n),
            _ => WorkerPool::with_default_size(),
        }
    }

    /// Creates a pool sized to the host's available parallelism.
    pub fn with_default_size() -> Self {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(n)
    }

    /// Number of worker threads (zero means jobs run inline).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs every job to completion and returns their results **in
    /// submission order**, regardless of which worker finished first — this
    /// is what keeps pool-parallel engine rounds byte-identical to
    /// sequential ones.
    ///
    /// Jobs may borrow from the caller's stack (`'env`): `scope_run` blocks
    /// until every job has reported back, so no borrow outlives the call —
    /// the same contract as `std::thread::scope`, without respawning
    /// threads.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is re-raised on the caller *after* all
    /// jobs have finished (so `'env` borrows still end inside this call).
    pub fn scope_run<'env, T: Send + 'env>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        // A single job, or no workers: inline execution on the caller.
        if n == 1 || self.workers.is_empty() {
            return jobs.into_iter().map(|job| job()).collect();
        }

        let (tx, rx) = channel::<(usize, std::thread::Result<T>)>();
        let injector = self.injector.as_ref().expect("pool is alive");
        for (idx, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(job));
                // The receiver only disappears if the caller's stack is
                // unwinding already; losing the result is fine then.
                let _ = tx.send((idx, result));
            });
            // SAFETY: the only difference between the two types is the
            // closure's lifetime bound. The borrows captured by `wrapped`
            // stay valid for the whole call: every submitted job sends
            // exactly one message (the `catch_unwind` guarantees the send
            // happens even when the job panics), and the loop below blocks
            // until all `n` messages arrive — so every job has finished,
            // and released its `'env` borrows, before `scope_run` returns.
            let wrapped: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(wrapped) };
            injector.send(wrapped).expect("worker threads are alive");
        }
        drop(tx);

        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, result) = rx.recv().expect("every job reports exactly once");
            slots[idx] = Some(result);
        }

        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in slots {
            match slot.expect("all slots filled after n receives") {
                Ok(value) => out.push(value),
                Err(payload) => panic = panic.or(Some(payload)),
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Hang up the job channel so workers drain and exit, then join.
        drop(self.injector.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    // Stagger finish times so out-of-order completion is
                    // actually exercised.
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i * i
                }) as Box<_>
            })
            .collect();
        let results = pool.scope_run(jobs);
        assert_eq!(results, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_can_borrow_caller_state_mutably() {
        let pool = WorkerPool::new(2);
        let mut buffers = vec![vec![0u32; 4]; 3];
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send + '_>> = buffers
            .iter_mut()
            .enumerate()
            .map(|(i, buf)| {
                Box::new(move || {
                    buf.fill(i as u32 + 1);
                    buf.iter().sum()
                }) as Box<_>
            })
            .collect();
        assert_eq!(pool.scope_run(jobs), vec![4, 8, 12]);
        assert_eq!(buffers[2], vec![3, 3, 3, 3]);
    }

    #[test]
    fn pool_is_reusable_across_many_rounds() {
        let pool = WorkerPool::new(3);
        for round in 0..50u64 {
            let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..5)
                .map(|i| Box::new(move || round * 10 + i) as Box<_>)
                .collect();
            let expected: Vec<u64> = (0..5).map(|i| round * 10 + i).collect();
            assert_eq!(pool.scope_run(jobs), expected);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 0);
        let caller = std::thread::current().id();
        let jobs: Vec<Box<dyn FnOnce() -> std::thread::ThreadId + Send>> = (0..3)
            .map(|_| Box::new(|| std::thread::current().id()) as Box<_>)
            .collect();
        for id in pool.scope_run(jobs) {
            assert_eq!(id, caller, "no workers means inline execution");
        }
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(pool.scope_run(jobs).is_empty());
    }

    #[test]
    fn job_panic_propagates_after_all_jobs_finish() {
        let pool = WorkerPool::new(2);
        let finished = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
                .map(|i| {
                    let finished = std::sync::Arc::clone(&finished);
                    Box::new(move || {
                        if i == 1 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        i
                    }) as Box<_>
                })
                .collect();
            pool.scope_run(jobs)
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The three non-panicking jobs all completed before the re-raise.
        assert_eq!(finished.load(std::sync::atomic::Ordering::SeqCst), 3);
        // The pool survives a panicking round.
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> =
            vec![Box::new(|| 7u8) as Box<_>, Box::new(|| 9u8) as Box<_>];
        assert_eq!(pool.scope_run(jobs), vec![7, 9]);
    }
}
