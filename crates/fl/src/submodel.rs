//! Heterogeneous-capacity submodel training: tiers, policies, and
//! coverage-weighted aggregation.
//!
//! Embedded fleets mix device classes: a gateway-class node can train the
//! full model while a sensor-class node only has the memory and cycles for
//! a quarter of it. This module turns that budget into a *capacity tier*
//! ([`CapacityTier`]) and a per-round assignment ([`CapacityPolicy`]), and
//! closes the loop server-side with [`coverage_weighted_fold`] — the
//! FedAvg generalisation where each global coordinate averages only the
//! clients whose slice covered it.
//!
//! The tiers map onto the two slicing families of
//! [`adafl_nn::SubView`]: fractional width (federated dropout / FedRolex
//! rolling windows) and top-k trainable layers (SLT-style freezing). With
//! every client at [`CapacityTier::Full`], the fold is bitwise identical
//! to FedAvg's weighted average — the property pinned by the
//! `subview_roundtrip` proptests.

use crate::runtime::{RoundUpdate, UpdatePayload};
use adafl_nn::{ParamSegmentMap, SubView};

/// How much of the model a client trains this round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityTier {
    /// The whole model: the trivial full view.
    Full,
    /// A rolling width slice keeping this fraction of each block's output
    /// units (in `(0, 1]`; `0.5` = half width, `0.25` = quarter).
    Width(f32),
    /// Only the last `k` parameterised layers train (SLT-style freezing).
    Layers(usize),
}

impl CapacityTier {
    /// Parses a tier from its config spelling: `full`, `half`, `quarter`,
    /// `width:<fraction>`, or `layers:<k>`.
    ///
    /// # Errors
    ///
    /// Returns the offending token when it matches none of the forms or
    /// carries an out-of-range argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        let t = s.trim();
        match t {
            "full" => return Ok(CapacityTier::Full),
            "half" => return Ok(CapacityTier::Width(0.5)),
            "quarter" => return Ok(CapacityTier::Width(0.25)),
            _ => {}
        }
        if let Some(frac) = t.strip_prefix("width:") {
            let f: f32 = frac
                .parse()
                .map_err(|_| format!("bad width fraction in tier `{t}`"))?;
            if !(f > 0.0 && f <= 1.0) {
                return Err(format!("width fraction out of (0, 1] in tier `{t}`"));
            }
            return Ok(CapacityTier::Width(f));
        }
        if let Some(k) = t.strip_prefix("layers:") {
            let k: usize = k
                .parse()
                .map_err(|_| format!("bad layer count in tier `{t}`"))?;
            if k == 0 {
                return Err(format!("layer count must be positive in tier `{t}`"));
            }
            return Ok(CapacityTier::Layers(k));
        }
        Err(format!("unknown capacity tier `{t}`"))
    }

    /// The canonical config spelling ([`CapacityTier::parse`]'s inverse).
    pub fn canonical(&self) -> String {
        match *self {
            CapacityTier::Full => "full".to_string(),
            CapacityTier::Width(f) => {
                if f == 0.5 {
                    "half".to_string()
                } else if f == 0.25 {
                    "quarter".to_string()
                } else {
                    format!("width:{f}")
                }
            }
            CapacityTier::Layers(k) => format!("layers:{k}"),
        }
    }

    /// Materialises the tier as a concrete coordinate view for `round`.
    pub fn view(&self, map: &ParamSegmentMap, round: u64) -> SubView {
        match *self {
            CapacityTier::Full => SubView::full(map),
            CapacityTier::Width(f) => SubView::width(map, f, round),
            CapacityTier::Layers(k) => SubView::layers(map, k),
        }
    }
}

/// Assigns each client a capacity tier per round — the submodel
/// counterpart of the compression policy.
///
/// Implementations are deterministic functions of their inputs and
/// observed history, keeping runs reproducible. [`CapacityPolicy::observe`]
/// feeds back AdaFL's utility score (cosine similarity of the client's
/// update to the aggregated gradient estimate) so adaptive policies can
/// promote clients whose slices help and demote those whose don't.
pub trait CapacityPolicy: std::fmt::Debug + Send {
    /// The tier `client` trains at in `round`.
    fn assign(&mut self, round: u64, client: usize) -> CapacityTier;

    /// Post-aggregation feedback: the utility score of `client`'s update
    /// this round. Default: ignored (static policies).
    fn observe(&mut self, round: u64, client: usize, score: f32) {
        let _ = (round, client, score);
    }
}

/// The static tiered policy: client `i` permanently trains at tier
/// `tiers[i % tiers.len()]` — a fixed fleet mix like 25% full / 50% half /
/// 25% quarter.
#[derive(Debug, Clone)]
pub struct StaticCapacity {
    tiers: Vec<CapacityTier>,
}

impl StaticCapacity {
    /// Builds the policy from a non-empty tier cycle.
    ///
    /// # Panics
    ///
    /// Panics when `tiers` is empty.
    pub fn new(tiers: Vec<CapacityTier>) -> Self {
        assert!(!tiers.is_empty(), "need at least one capacity tier");
        StaticCapacity { tiers }
    }
}

impl CapacityPolicy for StaticCapacity {
    fn assign(&mut self, _round: u64, client: usize) -> CapacityTier {
        self.tiers[client % self.tiers.len()]
    }
}

/// Coverage-weighted aggregation: each global coordinate averages only
/// the clients whose slice covered it.
///
/// For coordinate `i`, the result is `Σ_{covering c} w_c·v_c[i] / Σ_
/// {covering c} w_c`; coordinates no client covered stay `0.0` (the
/// global model does not move there). Full-width payloads cover every
/// coordinate — including sparse ones, which transmitted the whole dense
/// coordinate space with zeros off-support.
///
/// The accumulation order replicates
/// [`adafl_tensor::vecops::weighted_average`] exactly — per-coordinate
/// denominators build by client order, then each client folds in with
/// `w/den[i]` — so when every client is full-width the result is bitwise
/// `==` FedAvg's weighted average.
///
/// Returns `None` when `updates` is empty or all weights are zero.
pub fn coverage_weighted_fold(dim: usize, updates: &[RoundUpdate]) -> Option<Vec<f32>> {
    if updates.is_empty() {
        return None;
    }
    let mut den = vec![0.0f32; dim];
    for u in updates {
        match u.payload.view_descriptor() {
            Some(desc) => {
                for &(off, len) in desc.segments() {
                    for d in &mut den[off as usize..(off + len) as usize] {
                        *d += u.weight;
                    }
                }
            }
            None => {
                for d in den.iter_mut() {
                    *d += u.weight;
                }
            }
        }
    }
    if den.iter().all(|&d| d == 0.0) {
        return None;
    }
    let mut mean = vec![0.0f32; dim];
    for u in updates {
        fold_one(&u.payload, u.weight, &den, &mut mean);
    }
    Some(mean)
}

/// Adds one client's contribution `mean[i] += (w / den[i]) · v[i]` over
/// the coordinates its payload covers.
fn fold_one(payload: &UpdatePayload, weight: f32, den: &[f32], mean: &mut [f32]) {
    match payload {
        UpdatePayload::Dense(d) => {
            for (i, &v) in d.values().iter().enumerate() {
                if den[i] != 0.0 {
                    mean[i] += (weight / den[i]) * v;
                }
            }
        }
        UpdatePayload::Sparse(s) => {
            // Same index walk as `SparseUpdate::add_into`, with the
            // per-coordinate scale.
            for (&idx, &v) in s.indices().iter().zip(s.values()) {
                let i = idx as usize;
                if den[i] != 0.0 {
                    mean[i] += (weight / den[i]) * v;
                }
            }
        }
        UpdatePayload::Quantized { values, .. } | UpdatePayload::Ternary { values, .. } => {
            for (i, &v) in values.iter().enumerate() {
                if den[i] != 0.0 {
                    mean[i] += (weight / den[i]) * v;
                }
            }
        }
        UpdatePayload::SubView { desc, inner } => {
            // View-local values walk the descriptor's segments; a sparse
            // inner densifies within the view first.
            let scatter = |values: &[f32], mean: &mut [f32]| {
                let mut at = 0usize;
                for &(off, len) in desc.segments() {
                    for (i, &v) in
                        (off as usize..(off + len) as usize).zip(&values[at..at + len as usize])
                    {
                        if den[i] != 0.0 {
                            mean[i] += (weight / den[i]) * v;
                        }
                    }
                    at += len as usize;
                }
            };
            match inner.as_ref() {
                UpdatePayload::Dense(d) => scatter(d.values(), mean),
                UpdatePayload::Quantized { values, .. } | UpdatePayload::Ternary { values, .. } => {
                    scatter(values, mean)
                }
                UpdatePayload::Sparse(s) => scatter(&s.to_dense(), mean),
                UpdatePayload::SubView { .. } => unreachable!("sub-views cannot nest"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adafl_compression::ViewDescriptor;
    use adafl_tensor::vecops;

    #[test]
    fn tier_parse_round_trips() {
        for spelling in ["full", "half", "quarter", "width:0.7", "layers:2"] {
            let tier = CapacityTier::parse(spelling).unwrap();
            assert_eq!(tier.canonical(), spelling);
            assert_eq!(CapacityTier::parse(&tier.canonical()).unwrap(), tier);
        }
        assert!(CapacityTier::parse("w:0.5").is_err());
        assert!(CapacityTier::parse("width:0").is_err());
        assert!(CapacityTier::parse("width:1.5").is_err());
        assert!(CapacityTier::parse("layers:0").is_err());
        assert!(CapacityTier::parse("layers:x").is_err());
    }

    #[test]
    fn static_capacity_cycles_tiers() {
        let mut p = StaticCapacity::new(vec![
            CapacityTier::Full,
            CapacityTier::Width(0.5),
            CapacityTier::Width(0.25),
        ]);
        assert_eq!(p.assign(0, 0), CapacityTier::Full);
        assert_eq!(p.assign(0, 1), CapacityTier::Width(0.5));
        assert_eq!(p.assign(0, 2), CapacityTier::Width(0.25));
        assert_eq!(p.assign(5, 3), CapacityTier::Full);
        // Assignment is per-client, not per-round.
        assert_eq!(p.assign(9, 1), CapacityTier::Width(0.5));
    }

    fn dense_update(client: usize, v: Vec<f32>, weight: f32) -> RoundUpdate {
        RoundUpdate {
            client,
            payload: UpdatePayload::dense(v),
            weight,
        }
    }

    #[test]
    fn all_full_width_fold_is_bitwise_fedavg() {
        let v1 = vec![0.25f32, -1.5, 3.0, 0.125];
        let v2 = vec![1.0f32, 2.0, -0.5, 0.75];
        let v3 = vec![-0.375f32, 0.1, 0.2, -0.3];
        let updates = vec![
            dense_update(0, v1.clone(), 3.0),
            dense_update(1, v2.clone(), 5.0),
            dense_update(2, v3.clone(), 2.0),
        ];
        let fold = coverage_weighted_fold(4, &updates).unwrap();
        let reference = vecops::weighted_average(
            &[v1.as_slice(), v2.as_slice(), v3.as_slice()],
            &[3.0, 5.0, 2.0],
        )
        .unwrap();
        assert_eq!(fold, reference);
    }

    #[test]
    fn partial_coverage_averages_covering_clients_only() {
        // Client 0 covers everything; client 1 covers only [2, 4).
        let view = UpdatePayload::sub_view(
            ViewDescriptor::new(4, vec![(2, 2)]),
            UpdatePayload::dense(vec![10.0, 20.0]),
        );
        let updates = vec![
            dense_update(0, vec![1.0, 2.0, 3.0, 4.0], 1.0),
            RoundUpdate {
                client: 1,
                payload: view,
                weight: 1.0,
            },
        ];
        let fold = coverage_weighted_fold(4, &updates).unwrap();
        assert_eq!(fold[0], 1.0);
        assert_eq!(fold[1], 2.0);
        assert_eq!(fold[2], (3.0 + 10.0) / 2.0);
        assert_eq!(fold[3], (4.0 + 20.0) / 2.0);
    }

    #[test]
    fn uncovered_coordinates_stay_zero() {
        let view = UpdatePayload::sub_view(
            ViewDescriptor::new(3, vec![(0, 1)]),
            UpdatePayload::dense(vec![6.0]),
        );
        let updates = vec![RoundUpdate {
            client: 0,
            payload: view,
            weight: 2.0,
        }];
        let fold = coverage_weighted_fold(3, &updates).unwrap();
        assert_eq!(fold, vec![6.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_or_zero_weight_folds_to_none() {
        assert!(coverage_weighted_fold(3, &[]).is_none());
        let updates = vec![dense_update(0, vec![1.0, 1.0, 1.0], 0.0)];
        assert!(coverage_weighted_fold(3, &updates).is_none());
    }
}
