//! Model checkpointing: a versioned binary format for flat parameter
//! vectors, so a federated server can persist and resume the global model
//! across restarts — table stakes for a production deployment on flaky
//! embedded infrastructure.
//!
//! Format: magic `ADFL` + format version (u16) + global round (u64) +
//! parameter count (u64) + raw little-endian `f32`s + a Fletcher-64-style
//! checksum over everything before it (magic and version included, so a
//! bit flip anywhere in the buffer is detected).
//!
//! The primitive writers/readers and the checksum are the shared ones from
//! [`adafl_compression::codec`] — the checkpoint is just another consumer
//! of the one serialization authority, and its byte format is unchanged by
//! the rebase (`fletcher64` is the exact checksum this module always used).

use adafl_compression::codec::{fletcher64, read_f32s_exact, write_f32s};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"ADFL";
const VERSION: u16 = 1;

/// A saved global-model state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Communication round at which the snapshot was taken.
    pub round: u64,
    /// Flat global parameters.
    pub params: Vec<f32>,
}

/// Error from [`Checkpoint::decode`] / [`Checkpoint::read_file`].
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The buffer is not a checkpoint (bad magic or truncated header).
    InvalidFormat,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The payload checksum does not match (corruption).
    ChecksumMismatch,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::InvalidFormat => write!(f, "not a checkpoint file"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint payload corrupted"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl Checkpoint {
    /// Creates a checkpoint of `params` at `round`.
    pub fn new(round: u64, params: Vec<f32>) -> Self {
        Checkpoint { round, params }
    }

    /// Serialises to the binary format.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(4 + 2 + 16 + 4 * self.params.len() + 8);
        out.put_slice(MAGIC);
        out.put_u16_le(VERSION);
        out.put_u64_le(self.round);
        out.put_u64_le(self.params.len() as u64);
        write_f32s(&mut out, &self.params);
        let sum = fletcher64(&out);
        out.put_u64_le(sum);
        out.freeze()
    }

    /// Parses the binary format.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] for non-checkpoint data, a newer
    /// version, or a corrupted payload.
    pub fn decode(buf: &[u8]) -> Result<Self, CheckpointError> {
        if buf.len() < 4 + 2 + 16 + 8 || &buf[..4] != MAGIC {
            return Err(CheckpointError::InvalidFormat);
        }
        let mut rest = &buf[4..];
        let version = rest.get_u16_le();
        if version > VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        // The checksum covers magic + version + payload, so any single-byte
        // corruption in the buffer is caught (version is checked first to
        // give newer formats a distinct error).
        let stored_sum = (&buf[buf.len() - 8..]).get_u64_le();
        if fletcher64(&buf[..buf.len() - 8]) != stored_sum {
            return Err(CheckpointError::ChecksumMismatch);
        }
        let mut p = &buf[6..buf.len() - 8];
        let round = p.get_u64_le();
        let count = usize::try_from(p.get_u64_le()).map_err(|_| CheckpointError::InvalidFormat)?;
        let params = read_f32s_exact(p, count).map_err(|_| CheckpointError::InvalidFormat)?;
        Ok(Checkpoint { round, params })
    }

    /// Writes the checkpoint to a file (atomically via a sibling temp file).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failures.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.encode())?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on I/O failures or malformed content.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let data = fs::read(path)?;
        Checkpoint::decode(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint::new(42, (0..100).map(|i| (i as f32 * 0.37).sin()).collect())
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = sample();
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn empty_params_round_trip() {
        let c = Checkpoint::new(0, Vec::new());
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn format_is_pinned_byte_for_byte() {
        // The rebase onto the shared codec primitives must not move a
        // single byte: this is the whole frame for round 1, params [1.0].
        let bytes = Checkpoint::new(1, vec![1.0]).encode();
        let mut expected = Vec::new();
        expected.extend_from_slice(b"ADFL");
        expected.extend_from_slice(&1u16.to_le_bytes());
        expected.extend_from_slice(&1u64.to_le_bytes());
        expected.extend_from_slice(&1u64.to_le_bytes());
        expected.extend_from_slice(&1.0f32.to_le_bytes());
        expected.extend_from_slice(&fletcher64(&expected).to_le_bytes());
        assert_eq!(&bytes[..], &expected[..]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            Checkpoint::decode(b"not a checkpoint at all"),
            Err(CheckpointError::InvalidFormat)
        ));
        assert!(matches!(
            Checkpoint::decode(&[]),
            Err(CheckpointError::InvalidFormat)
        ));
    }

    #[test]
    fn detects_corruption() {
        let mut bytes = sample().encode().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::ChecksumMismatch)
        ));
    }

    #[test]
    fn detects_header_corruption() {
        // The checksum covers the header too: flipping a magic bit fails
        // the magic check, and flipping the version down (0) — which passes
        // the version gate — fails the checksum.
        let mut bytes = sample().encode().to_vec();
        bytes[4] = 0;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::ChecksumMismatch)
        ));
    }

    #[test]
    fn rejects_newer_version() {
        let mut bytes = sample().encode().to_vec();
        bytes[4] = 99; // bump the version field
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("adafl_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("global.ckpt");
        let c = sample();
        c.write_file(&path).unwrap();
        assert_eq!(Checkpoint::read_file(&path).unwrap(), c);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::read_file("/nonexistent/nope.ckpt").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(err.source().is_some());
    }
}
