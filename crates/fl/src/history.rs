//! Run histories: the per-round series the experiment harness prints.
//!
//! Histories are unbounded by default. For fleet-scale runs,
//! [`RunHistory::bounded`] caps resident records at a fixed window and
//! spills evicted records to a JSONL file one line per record, so a
//! million-round run holds O(window) memory;
//! [`RunHistory::read_spill_records`] re-reads a spill file line by line
//! without ever materialising the whole file's records at once, and
//! [`RunHistory::from_csv`] parses the [`RunHistory::to_csv`] rendering
//! the same way — streaming over lines, no up-front collection.

use adafl_netsim::SimTime;
use std::io::{BufRead, Write};

/// One evaluation point of a federated run.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Communication round (sync) or aggregation count (async).
    pub round: usize,
    /// Simulated time at which this state was reached.
    pub sim_time: SimTime,
    /// Global-model test accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Global-model test loss.
    pub loss: f32,
    /// Cumulative uplink bytes so far.
    pub uplink_bytes: u64,
    /// Cumulative client→server updates so far.
    pub uplink_updates: u64,
    /// Number of clients that contributed this round.
    pub contributors: usize,
}

/// The full evaluation series of one run.
///
/// # Examples
///
/// ```
/// use adafl_fl::{RoundRecord, RunHistory};
/// use adafl_netsim::SimTime;
///
/// let mut h = RunHistory::new("fedavg");
/// h.push(RoundRecord {
///     round: 0,
///     sim_time: SimTime::from_seconds(1.0),
///     accuracy: 0.5,
///     loss: 1.2,
///     uplink_bytes: 100,
///     uplink_updates: 5,
///     contributors: 5,
/// });
/// assert_eq!(h.final_accuracy(), 0.5);
/// ```
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct RunHistory {
    label: String,
    records: Vec<RoundRecord>,
    /// Ring-buffer capacity; `None` keeps every record resident.
    #[serde(default)]
    capacity: Option<usize>,
    /// Path evicted records are appended to as JSONL; `None` discards.
    #[serde(default)]
    spill_path: Option<String>,
    /// How many records have been evicted from the resident window.
    #[serde(default)]
    spilled: u64,
}

impl RunHistory {
    /// Creates an empty history labelled with the strategy name.
    pub fn new(label: impl Into<String>) -> Self {
        RunHistory {
            label: label.into(),
            records: Vec::new(),
            capacity: None,
            spill_path: None,
            spilled: 0,
        }
    }

    /// Creates a bounded history: at most `capacity` records stay
    /// resident, and once the window is full each push evicts the oldest
    /// record — appended as one JSON line to `spill_path` when set,
    /// discarded otherwise.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn bounded(label: impl Into<String>, capacity: usize, spill_path: Option<String>) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        let mut h = RunHistory::new(label);
        h.capacity = Some(capacity);
        h.spill_path = spill_path;
        h
    }

    /// The strategy label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Ring-buffer capacity, `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of records evicted from the resident window so far.
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// The spill destination, when one is configured.
    pub fn spill_path(&self) -> Option<&str> {
        self.spill_path.as_deref()
    }

    /// Appends one evaluation point, evicting the oldest resident record
    /// first when the bounded window is full.
    ///
    /// # Panics
    ///
    /// Panics when an evicted record cannot be appended to the spill file.
    pub fn push(&mut self, record: RoundRecord) {
        if let Some(cap) = self.capacity {
            if self.records.len() == cap {
                let evicted = self.records.remove(0);
                self.spilled += 1;
                if let Some(path) = &self.spill_path {
                    let line = serde_json::to_string(&evicted).expect("round record serializes");
                    let mut file = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(path)
                        .unwrap_or_else(|e| panic!("cannot open spill file {path}: {e}"));
                    writeln!(file, "{line}")
                        .unwrap_or_else(|e| panic!("cannot spill to {path}: {e}"));
                }
            }
        }
        self.records.push(record);
    }

    /// Re-reads a JSONL spill stream one line at a time, invoking `f` per
    /// record; the full record set is never resident. Blank lines are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Returns the I/O or parse error message of the first bad line.
    pub fn read_spill_records<R: BufRead>(
        reader: R,
        mut f: impl FnMut(RoundRecord),
    ) -> Result<usize, String> {
        let mut n = 0usize;
        for (i, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| format!("spill line {}: {e}", i + 1))?;
            if line.trim().is_empty() {
                continue;
            }
            let record: RoundRecord =
                serde_json::from_str(&line).map_err(|e| format!("spill line {}: {e:?}", i + 1))?;
            f(record);
            n += 1;
        }
        Ok(n)
    }

    /// Parses the [`RunHistory::to_csv`] rendering back into a history,
    /// streaming over lines — spilled or archived histories re-read
    /// without an up-front copy of every line. The label is taken from
    /// the first data row; precision is the CSV's (3 decimals for time,
    /// 4 for accuracy/loss).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_csv(csv: &str) -> Result<RunHistory, String> {
        let mut history: Option<RunHistory> = None;
        for (i, line) in csv.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if i == 0 {
                if !line.starts_with("label,round") {
                    return Err(format!("line 1: expected history CSV header, got {line:?}"));
                }
                continue;
            }
            let mut fields = line.split(',');
            let mut next = |name: &str| {
                fields
                    .next()
                    .ok_or_else(|| format!("line {}: missing {name}", i + 1))
            };
            let label = next("label")?.to_string();
            let record = RoundRecord {
                round: parse(next("round")?, i, "round")?,
                sim_time: SimTime::from_seconds(parse::<f64>(
                    next("sim_time_s")?,
                    i,
                    "sim_time_s",
                )?),
                accuracy: parse(next("accuracy")?, i, "accuracy")?,
                loss: parse(next("loss")?, i, "loss")?,
                uplink_bytes: parse(next("uplink_bytes")?, i, "uplink_bytes")?,
                uplink_updates: parse(next("uplink_updates")?, i, "uplink_updates")?,
                contributors: parse(next("contributors")?, i, "contributors")?,
            };
            history
                .get_or_insert_with(|| RunHistory::new(label))
                .records
                .push(record);
        }
        history.ok_or_else(|| "empty history CSV".to_string())
    }

    /// All evaluation points in order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of evaluation points.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no evaluations were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Accuracy of the last evaluation, `0.0` when empty.
    pub fn final_accuracy(&self) -> f32 {
        self.records.last().map_or(0.0, |r| r.accuracy)
    }

    /// Best accuracy across the run, `0.0` when empty.
    pub fn best_accuracy(&self) -> f32 {
        self.records.iter().map(|r| r.accuracy).fold(0.0, f32::max)
    }

    /// Cumulative uplink bytes at the end of the run.
    pub fn total_uplink_bytes(&self) -> u64 {
        self.records.last().map_or(0, |r| r.uplink_bytes)
    }

    /// Cumulative uplink updates at the end of the run.
    pub fn total_uplink_updates(&self) -> u64 {
        self.records.last().map_or(0, |r| r.uplink_updates)
    }

    /// First simulated time at which accuracy reached `target`, if ever.
    pub fn time_to_accuracy(&self, target: f32) -> Option<SimTime> {
        self.records
            .iter()
            .find(|r| r.accuracy >= target)
            .map(|r| r.sim_time)
    }

    /// Accuracy at (or at the last evaluation before) simulated time `t`.
    pub fn accuracy_at_time(&self, t: SimTime) -> f32 {
        self.records
            .iter()
            .take_while(|r| r.sim_time <= t)
            .last()
            .map_or(0.0, |r| r.accuracy)
    }

    /// Renders the history as CSV rows: header plus one line per record.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "label,round,sim_time_s,accuracy,loss,uplink_bytes,uplink_updates,contributors\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{:.3},{:.4},{:.4},{},{},{}\n",
                self.label,
                r.round,
                r.sim_time.seconds(),
                r.accuracy,
                r.loss,
                r.uplink_bytes,
                r.uplink_updates,
                r.contributors
            ));
        }
        out
    }
}

/// Parses one CSV field, naming the line and column on failure.
fn parse<T: std::str::FromStr>(s: &str, line_idx: usize, name: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("line {}: bad {name} value {s:?}", line_idx + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, t: f64, acc: f32) -> RoundRecord {
        RoundRecord {
            round,
            sim_time: SimTime::from_seconds(t),
            accuracy: acc,
            loss: 1.0 - acc,
            uplink_bytes: round as u64 * 100,
            uplink_updates: round as u64,
            contributors: 5,
        }
    }

    fn history() -> RunHistory {
        let mut h = RunHistory::new("test");
        h.push(record(1, 1.0, 0.3));
        h.push(record(2, 2.0, 0.7));
        h.push(record(3, 3.0, 0.6));
        h
    }

    #[test]
    fn summary_statistics() {
        let h = history();
        assert_eq!(h.final_accuracy(), 0.6);
        assert_eq!(h.best_accuracy(), 0.7);
        assert_eq!(h.total_uplink_bytes(), 300);
        assert_eq!(h.total_uplink_updates(), 3);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let h = history();
        assert_eq!(h.time_to_accuracy(0.5).unwrap().seconds(), 2.0);
        assert!(h.time_to_accuracy(0.9).is_none());
    }

    #[test]
    fn accuracy_at_time_steps() {
        let h = history();
        assert_eq!(h.accuracy_at_time(SimTime::from_seconds(0.5)), 0.0);
        assert_eq!(h.accuracy_at_time(SimTime::from_seconds(2.5)), 0.7);
        assert_eq!(h.accuracy_at_time(SimTime::from_seconds(99.0)), 0.6);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = history().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("label,round"));
        assert!(lines[1].starts_with("test,1,"));
    }

    #[test]
    fn empty_history_is_safe() {
        let h = RunHistory::new("empty");
        assert!(h.is_empty());
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.best_accuracy(), 0.0);
        assert!(h.time_to_accuracy(0.1).is_none());
    }

    #[test]
    fn from_csv_round_trips_to_csv() {
        let h = history();
        let parsed = RunHistory::from_csv(&h.to_csv()).expect("parses");
        assert_eq!(parsed.label(), "test");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed.records()[1].round, 2);
        assert_eq!(parsed.records()[1].uplink_bytes, 200);
        assert!((parsed.records()[2].accuracy - 0.6).abs() < 1e-4);
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(RunHistory::from_csv("").is_err());
        assert!(RunHistory::from_csv("not,a,history\n").is_err());
        let bad_row = "label,round,sim_time_s,accuracy,loss,uplink_bytes,uplink_updates,contributors\nx,NaNrounds,1.0,0.5,0.5,1,1,1\n";
        let err = RunHistory::from_csv(bad_row).expect_err("bad round");
        assert!(err.contains("round"), "{err}");
    }

    #[test]
    fn bounded_history_evicts_front_and_counts_spills() {
        let mut h = RunHistory::bounded("ring", 2, None);
        h.push(record(1, 1.0, 0.1));
        h.push(record(2, 2.0, 0.2));
        h.push(record(3, 3.0, 0.3));
        h.push(record(4, 4.0, 0.4));
        assert_eq!(h.len(), 2);
        assert_eq!(h.spilled(), 2);
        assert_eq!(h.records()[0].round, 3);
        assert_eq!(h.final_accuracy(), 0.4);
    }

    #[test]
    fn bounded_history_spills_jsonl_that_rereads_line_by_line() {
        let path =
            std::env::temp_dir().join(format!("adafl-history-spill-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let path_str = path.to_str().expect("utf-8 temp path").to_string();
        let mut h = RunHistory::bounded("ring", 1, Some(path_str));
        for r in 1..=4 {
            h.push(record(r, r as f64, 0.1 * r as f32));
        }
        assert_eq!(h.len(), 1);
        assert_eq!(h.spilled(), 3);
        let file = std::fs::File::open(&path).expect("spill file exists");
        let mut rounds = Vec::new();
        let n = RunHistory::read_spill_records(std::io::BufReader::new(file), |r| {
            rounds.push(r.round);
        })
        .expect("spill parses");
        assert_eq!(n, 3);
        assert_eq!(rounds, vec![1, 2, 3]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bounded_history_serde_round_trips_and_plain_histories_stay_loadable() {
        let mut h = RunHistory::bounded("ring", 2, None);
        h.push(record(1, 1.0, 0.1));
        h.push(record(2, 2.0, 0.2));
        h.push(record(3, 3.0, 0.3));
        let json = serde_json::to_string(&h).expect("serialize");
        let back: RunHistory = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, h);
        // Histories serialized before the ring fields existed still load.
        let legacy = r#"{"label": "old", "records": []}"#;
        let old: RunHistory = serde_json::from_str(legacy).expect("legacy loads");
        assert_eq!(old.capacity(), None);
        assert_eq!(old.spilled(), 0);
    }
}
