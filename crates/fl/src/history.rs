//! Run histories: the per-round series the experiment harness prints.

use adafl_netsim::SimTime;

/// One evaluation point of a federated run.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Communication round (sync) or aggregation count (async).
    pub round: usize,
    /// Simulated time at which this state was reached.
    pub sim_time: SimTime,
    /// Global-model test accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Global-model test loss.
    pub loss: f32,
    /// Cumulative uplink bytes so far.
    pub uplink_bytes: u64,
    /// Cumulative client→server updates so far.
    pub uplink_updates: u64,
    /// Number of clients that contributed this round.
    pub contributors: usize,
}

/// The full evaluation series of one run.
///
/// # Examples
///
/// ```
/// use adafl_fl::{RoundRecord, RunHistory};
/// use adafl_netsim::SimTime;
///
/// let mut h = RunHistory::new("fedavg");
/// h.push(RoundRecord {
///     round: 0,
///     sim_time: SimTime::from_seconds(1.0),
///     accuracy: 0.5,
///     loss: 1.2,
///     uplink_bytes: 100,
///     uplink_updates: 5,
///     contributors: 5,
/// });
/// assert_eq!(h.final_accuracy(), 0.5);
/// ```
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct RunHistory {
    label: String,
    records: Vec<RoundRecord>,
}

impl RunHistory {
    /// Creates an empty history labelled with the strategy name.
    pub fn new(label: impl Into<String>) -> Self {
        RunHistory {
            label: label.into(),
            records: Vec::new(),
        }
    }

    /// The strategy label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends one evaluation point.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// All evaluation points in order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of evaluation points.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no evaluations were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Accuracy of the last evaluation, `0.0` when empty.
    pub fn final_accuracy(&self) -> f32 {
        self.records.last().map_or(0.0, |r| r.accuracy)
    }

    /// Best accuracy across the run, `0.0` when empty.
    pub fn best_accuracy(&self) -> f32 {
        self.records.iter().map(|r| r.accuracy).fold(0.0, f32::max)
    }

    /// Cumulative uplink bytes at the end of the run.
    pub fn total_uplink_bytes(&self) -> u64 {
        self.records.last().map_or(0, |r| r.uplink_bytes)
    }

    /// Cumulative uplink updates at the end of the run.
    pub fn total_uplink_updates(&self) -> u64 {
        self.records.last().map_or(0, |r| r.uplink_updates)
    }

    /// First simulated time at which accuracy reached `target`, if ever.
    pub fn time_to_accuracy(&self, target: f32) -> Option<SimTime> {
        self.records
            .iter()
            .find(|r| r.accuracy >= target)
            .map(|r| r.sim_time)
    }

    /// Accuracy at (or at the last evaluation before) simulated time `t`.
    pub fn accuracy_at_time(&self, t: SimTime) -> f32 {
        self.records
            .iter()
            .take_while(|r| r.sim_time <= t)
            .last()
            .map_or(0.0, |r| r.accuracy)
    }

    /// Renders the history as CSV rows: header plus one line per record.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "label,round,sim_time_s,accuracy,loss,uplink_bytes,uplink_updates,contributors\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{:.3},{:.4},{:.4},{},{},{}\n",
                self.label,
                r.round,
                r.sim_time.seconds(),
                r.accuracy,
                r.loss,
                r.uplink_bytes,
                r.uplink_updates,
                r.contributors
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, t: f64, acc: f32) -> RoundRecord {
        RoundRecord {
            round,
            sim_time: SimTime::from_seconds(t),
            accuracy: acc,
            loss: 1.0 - acc,
            uplink_bytes: round as u64 * 100,
            uplink_updates: round as u64,
            contributors: 5,
        }
    }

    fn history() -> RunHistory {
        let mut h = RunHistory::new("test");
        h.push(record(1, 1.0, 0.3));
        h.push(record(2, 2.0, 0.7));
        h.push(record(3, 3.0, 0.6));
        h
    }

    #[test]
    fn summary_statistics() {
        let h = history();
        assert_eq!(h.final_accuracy(), 0.6);
        assert_eq!(h.best_accuracy(), 0.7);
        assert_eq!(h.total_uplink_bytes(), 300);
        assert_eq!(h.total_uplink_updates(), 3);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let h = history();
        assert_eq!(h.time_to_accuracy(0.5).unwrap().seconds(), 2.0);
        assert!(h.time_to_accuracy(0.9).is_none());
    }

    #[test]
    fn accuracy_at_time_steps() {
        let h = history();
        assert_eq!(h.accuracy_at_time(SimTime::from_seconds(0.5)), 0.0);
        assert_eq!(h.accuracy_at_time(SimTime::from_seconds(2.5)), 0.7);
        assert_eq!(h.accuracy_at_time(SimTime::from_seconds(99.0)), 0.6);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = history().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("label,round"));
        assert!(lines[1].starts_with("test,1,"));
    }

    #[test]
    fn empty_history_is_safe() {
        let h = RunHistory::new("empty");
        assert!(h.is_empty());
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.best_accuracy(), 0.0);
        assert!(h.time_to_accuracy(0.1).is_none());
    }
}
