//! The policy-driven round runtime shared by every protocol flavour.
//!
//! Before this module existed the repository carried four parallel engine
//! implementations — baseline sync, baseline async, AdaFL sync, AdaFL
//! async — each duplicating the round skeleton: client scheduling,
//! transport and ledger charging, fault injection, checkpoint recovery,
//! the defensive gate, telemetry spans and history recording. The runtime
//! owns that skeleton once and specialises it along three policy axes:
//!
//! ```text
//!                 ┌─────────────────────────────────────────────┐
//!                 │            fl::runtime                      │
//!                 │                                             │
//!   SyncEngine ──▶│  SyncRuntime          AsyncRuntime          │◀── AsyncEngine
//!   (baselines)   │  ┌───────────────┐    ┌──────────────────┐  │    (baselines)
//!                 │  │ select        │    │ event loop       │  │
//! AdaFlSyncEngine │  │ broadcast     │    │ download/train   │  │ AdaFlAsyncEngine
//!        │        │  │ train (pool)  │    │ upload/apply     │  │        │
//!        ▼        │  │ upload        │    └──────┬───────────┘  │        ▼
//!   core policies │  │ screen        │           │              │   core policies
//!                 │  │ aggregate     │           │              │
//!                 │  └──────┬────────┘           │              │
//!                 │         ▼                    ▼              │
//!                 │  RoundIo (network + transport + ledger)     │
//!                 │  FaultPlan · DefenseGate · telemetry        │
//!                 └─────────────────────────────────────────────┘
//!
//!   policy axes:  SelectionPolicy   CompressionPolicy   AggregationPolicy
//!                 (random | utility) (static | DGC)     (SyncStrategy | AdaFL)
//!                                AsyncPolicy (dense | utility-gated DGC)
//! ```
//!
//! The four public engines survive as thin facades: each is a policy
//! bundle plus the runtime. Their behaviour is pinned byte-for-byte by
//! the golden traces in `tests/golden/` — identical `RunHistory`, ledger
//! totals and telemetry streams before and after the refactor.

mod baseline;
mod builder;
mod event;
mod io;
mod payload;
mod policy;
mod sink;
mod sync;

pub use baseline::{
    RandomSelection, StaticCompressionPolicy, StrategyAggregation, StrategyAsyncPolicy,
};
pub use builder::{BuildError, RuntimeBuilder};
pub use event::AsyncRuntime;
pub use io::{Delivery, RoundIo};
pub use payload::{RoundUpdate, UpdatePayload, WireForm};
pub use policy::{
    AggregationPolicy, AsyncApplyCtx, AsyncDownlinkCtx, AsyncPolicy, AsyncUploadCtx,
    CompressionPolicy, SelectionCtx, SelectionPolicy, StreamAccumulator, SyncUploadCtx,
};
pub use sink::{SinkMode, UpdateSink};
pub use sync::{SyncPolicies, SyncRuntime};
