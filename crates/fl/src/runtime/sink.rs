//! Round update sinks: where delivered updates go before aggregation.
//!
//! The runtime historically materialised every delivered update in a
//! `Vec<RoundUpdate>` — O(clients × model) server memory per round. The
//! sink abstracts that collection point into three behaviours:
//!
//! * [`SinkMode::Legacy`] — buffer everything and hand the vector to
//!   [`AggregationPolicy::aggregate`] at round end, exactly as before.
//!   This is the default path and the only one the defense gate, the
//!   robust pre-aggregation stage and capacity tiers can use: all three
//!   genuinely need the whole cohort side by side.
//! * [`SinkMode::Streaming`] — fold each update into a per-edge
//!   [`StreamAccumulator`] the moment it arrives via
//!   [`AggregationPolicy::fold`]; nothing larger than O(model ×
//!   edge aggregators) is ever resident.
//! * [`SinkMode::BufferedFold`] — buffer the updates, then replay the
//!   *identical* fold calls in arrival order at round end. This is the
//!   parity counterpart of streaming: both modes execute the same float
//!   operations in the same order, so their results are bitwise equal by
//!   construction, which the `streaming_parity` test pins.
//!
//! Edge aggregators model a hierarchical tier between clients and server:
//! update `u` folds into edge `u.client % edges`, and the per-edge
//! partials merge into one accumulator **in ascending edge order** at
//! round end (the deterministic-merge rule). Each active edge then ships
//! one dense partial to the server, charged to the edge's lead client —
//! the first client whose update the edge folded — through the relay-byte
//! machinery.

use super::payload::RoundUpdate;
use super::policy::{AggregationPolicy, StreamAccumulator};

/// Which collection behaviour a round's sink uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkMode {
    /// Buffer all updates for `aggregate(Vec<RoundUpdate>)` (default).
    Legacy,
    /// Fold updates into edge accumulators as they arrive.
    Streaming,
    /// Buffer, then replay the streaming folds at round end (parity).
    BufferedFold,
}

/// One edge aggregator's running partial plus the client its uplink to
/// the server is attributed to.
#[derive(Debug)]
struct EdgeAccumulator {
    acc: StreamAccumulator,
    /// First client folded into this edge; the edge→server partial
    /// transfer is charged to it.
    lead_client: Option<usize>,
}

/// Per-round destination for delivered updates (see module docs).
#[derive(Debug)]
pub struct UpdateSink {
    mode: SinkMode,
    edges: Vec<EdgeAccumulator>,
    buffered: Vec<RoundUpdate>,
}

impl UpdateSink {
    /// Creates a sink. `edge_aggregators == 0` means a flat topology: one
    /// server-side accumulator and no edge-tier charges.
    pub fn new(mode: SinkMode, dim: usize, edge_aggregators: usize) -> Self {
        let edges = match mode {
            SinkMode::Legacy => Vec::new(),
            _ => (0..edge_aggregators.max(1))
                .map(|_| EdgeAccumulator {
                    acc: StreamAccumulator::new(dim),
                    lead_client: None,
                })
                .collect(),
        };
        UpdateSink {
            mode,
            edges,
            buffered: Vec::new(),
        }
    }

    /// The sink's mode.
    pub fn mode(&self) -> SinkMode {
        self.mode
    }

    /// Accepts one delivered update. Streaming folds immediately; the
    /// buffering modes push.
    pub fn accept(&mut self, policy: &mut dyn AggregationPolicy, update: RoundUpdate) {
        match self.mode {
            SinkMode::Streaming => self.fold_one(policy, &update),
            SinkMode::Legacy | SinkMode::BufferedFold => self.buffered.push(update),
        }
    }

    /// Number of updates the sink has taken in.
    pub fn delivered(&self) -> usize {
        match self.mode {
            SinkMode::Streaming => self.edges.iter().map(|e| e.acc.count).sum(),
            _ => self.buffered.len(),
        }
    }

    /// Legacy mode only: hands the buffered cohort back for the
    /// screen → robust → `aggregate` pipeline.
    ///
    /// # Panics
    ///
    /// Panics when the sink is not in legacy mode.
    pub fn into_buffered(self) -> Vec<RoundUpdate> {
        assert_eq!(
            self.mode,
            SinkMode::Legacy,
            "buffered take-out is legacy-only"
        );
        self.buffered
    }

    fn fold_one(&mut self, policy: &mut dyn AggregationPolicy, update: &RoundUpdate) {
        let e = update.client % self.edges.len();
        let edge = &mut self.edges[e];
        policy.fold(&mut edge.acc, update);
        edge.lead_client.get_or_insert(update.client);
    }

    /// Ends a streaming or buffered-fold round: replays any buffered
    /// updates through the fold (buffered-fold mode), merges the per-edge
    /// partials in ascending edge order, and returns the merged
    /// accumulator together with the per-edge transfers
    /// `(lead_client, fold_count)` for ledger charging — one entry per
    /// edge that folded at least one update, in edge order. Returns `None`
    /// when nothing was delivered.
    ///
    /// # Panics
    ///
    /// Panics when called on a legacy-mode sink.
    pub fn finish(
        mut self,
        policy: &mut dyn AggregationPolicy,
    ) -> Option<(StreamAccumulator, Vec<(usize, usize)>)> {
        assert_ne!(
            self.mode,
            SinkMode::Legacy,
            "legacy rounds use into_buffered"
        );
        if self.mode == SinkMode::BufferedFold {
            // Replay the exact fold calls streaming made at arrival time,
            // in arrival order — bitwise parity by construction.
            let buffered = std::mem::take(&mut self.buffered);
            for update in &buffered {
                self.fold_one(policy, update);
            }
        }
        let charges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|e| e.acc.count > 0)
            .map(|e| (e.lead_client.expect("active edge has a lead"), e.acc.count))
            .collect();
        if charges.is_empty() {
            return None;
        }
        let mut edges = self.edges.into_iter();
        let mut merged = edges.next().expect("at least one edge").acc;
        for e in edges {
            if e.acc.count > 0 {
                merged.merge(&e.acc);
            }
        }
        Some((merged, charges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::payload::UpdatePayload;

    /// Minimal streaming policy using the trait's default fold/finish.
    #[derive(Debug)]
    struct MeanPolicy;

    impl AggregationPolicy for MeanPolicy {
        fn label(&self) -> &str {
            "mean"
        }
        fn aggregate(
            &mut self,
            _global: &mut [f32],
            _global_gradient: &mut Vec<f32>,
            _updates: Vec<RoundUpdate>,
        ) {
            unreachable!("streaming tests never buffer-aggregate");
        }
        fn supports_streaming(&self) -> bool {
            true
        }
    }

    fn update(client: usize, value: f32, weight: f32) -> RoundUpdate {
        RoundUpdate {
            client,
            payload: UpdatePayload::dense(vec![value; 4]),
            weight,
        }
    }

    #[test]
    fn streaming_and_buffered_fold_are_bitwise_identical() {
        let updates = vec![
            update(0, 1.0, 2.0),
            update(3, -0.5, 1.0),
            update(5, 0.25, 3.0),
        ];
        let mut policy = MeanPolicy;
        let mut streaming = UpdateSink::new(SinkMode::Streaming, 4, 2);
        let mut buffered = UpdateSink::new(SinkMode::BufferedFold, 4, 2);
        for u in &updates {
            streaming.accept(&mut policy, u.clone());
            buffered.accept(&mut policy, u.clone());
        }
        let (acc_s, charges_s) = streaming.finish(&mut policy).expect("delivered");
        let (acc_b, charges_b) = buffered.finish(&mut policy).expect("delivered");
        assert_eq!(acc_s, acc_b);
        assert_eq!(charges_s, charges_b);
        assert_eq!(acc_s.count, 3);
        assert_eq!(acc_s.total_weight, 6.0);
    }

    #[test]
    fn edges_partition_by_client_and_charge_leads_in_edge_order() {
        let mut policy = MeanPolicy;
        let mut sink = UpdateSink::new(SinkMode::Streaming, 4, 2);
        // Edge 1 (client 3) arrives before edge 0 (client 4): charges come
        // back in edge order regardless of arrival order.
        sink.accept(&mut policy, update(3, 1.0, 1.0));
        sink.accept(&mut policy, update(4, 1.0, 1.0));
        sink.accept(&mut policy, update(5, 1.0, 1.0));
        let (acc, charges) = sink.finish(&mut policy).expect("delivered");
        assert_eq!(acc.count, 3);
        assert_eq!(charges, vec![(4, 1), (3, 2)]);
    }

    #[test]
    fn empty_round_finishes_to_none() {
        let mut policy = MeanPolicy;
        let sink = UpdateSink::new(SinkMode::Streaming, 4, 3);
        assert!(sink.finish(&mut policy).is_none());
    }

    #[test]
    fn legacy_mode_hands_back_the_buffer() {
        let mut policy = MeanPolicy;
        let mut sink = UpdateSink::new(SinkMode::Legacy, 4, 0);
        sink.accept(&mut policy, update(1, 1.0, 1.0));
        sink.accept(&mut policy, update(2, 2.0, 1.0));
        let buffered = sink.into_buffered();
        assert_eq!(buffered.len(), 2);
        assert_eq!(buffered[0].client, 1);
    }
}
