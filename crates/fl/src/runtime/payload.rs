//! Update payloads flowing through the round runtime.
//!
//! A [`CompressionPolicy`](super::CompressionPolicy) decides the wire form
//! of each client update — dense for the static baseline schemes, sparse
//! for AdaFL's DGC — and the runtime handles both forms uniformly for
//! corruption faults, the defensive gate and aggregation.

use adafl_compression::SparseUpdate;

/// One client update in its transmitted form.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdatePayload {
    /// A dense parameter delta (identity or quantized static compression).
    Dense(Vec<f32>),
    /// A sparse top-k delta (DGC).
    Sparse(SparseUpdate),
}

impl UpdatePayload {
    /// Mutable view of the transmitted values — the surface corruption
    /// faults and the defensive gate's scrubbing operate on. The L2 norm
    /// of a sparse update's values equals the norm of its dense form, so
    /// norm screening is form-independent.
    pub fn values_mut(&mut self) -> &mut [f32] {
        match self {
            UpdatePayload::Dense(v) => v,
            UpdatePayload::Sparse(s) => s.values_mut(),
        }
    }

    /// Accumulates `scale · self` into `dest`.
    pub fn add_scaled_into(&self, dest: &mut [f32], scale: f32) {
        match self {
            UpdatePayload::Dense(v) => {
                for (d, x) in dest.iter_mut().zip(v) {
                    *d += scale * x;
                }
            }
            UpdatePayload::Sparse(s) => s.add_into(dest, scale),
        }
    }

    /// The payload as a dense vector (moves the dense form out without a
    /// copy; expands the sparse form).
    pub fn into_dense(self) -> Vec<f32> {
        match self {
            UpdatePayload::Dense(v) => v,
            UpdatePayload::Sparse(s) => s.to_dense(),
        }
    }
}

/// A payload plus the number of bytes it occupies on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedUpdate {
    /// The transmitted update.
    pub payload: UpdatePayload,
    /// Wire size charged to the ledger and driven through the network.
    pub wire_bytes: usize,
}

/// One delivered update awaiting aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundUpdate {
    /// Sender.
    pub client: usize,
    /// The (possibly compressed, possibly corrupted) update.
    pub payload: UpdatePayload,
    /// Aggregation weight (the client's `n_i`).
    pub weight: f32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adafl_compression::top_k;

    #[test]
    fn dense_add_scaled_matches_sparse_for_sparse_vectors() {
        let v = vec![0.0, 2.0, 0.0, -4.0];
        let sparse = top_k(&v, 2);
        let mut a = vec![1.0f32; 4];
        let mut b = vec![1.0f32; 4];
        UpdatePayload::Dense(v.clone()).add_scaled_into(&mut a, 0.5);
        UpdatePayload::Sparse(sparse).add_scaled_into(&mut b, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn into_dense_is_identity_for_dense() {
        let v = vec![1.0, -2.0, 3.0];
        assert_eq!(UpdatePayload::Dense(v.clone()).into_dense(), v);
    }
}
