//! Update payloads flowing through the round runtime.
//!
//! A [`CompressionPolicy`](super::CompressionPolicy) decides the wire form
//! of each client update — dense for the identity baseline, sparse for
//! top-k/DGC, quantized for QSGD, ternary for TernGrad — and the runtime
//! handles every form uniformly for corruption faults, the defensive gate
//! and aggregation. Each variant carries the real [`WireCodec`] value, so
//! `encoded_len()` (what the ledger charges) and the bytes produced by
//! `encode()` (what corruption faults flip) can never disagree.

use adafl_compression::{
    DecodeError, DenseUpdate, QuantizedUpdate, SparseUpdate, TernaryUpdate, ViewDescriptor,
    WireCodec,
};

/// Which of the four wire forms a buffer holds. The simulated network
/// moves opaque byte counts, so the form travels out of band (a real
/// transport would tag frames); [`UpdatePayload::decode`] dispatches on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireForm {
    /// Dense `f32` delta.
    Dense,
    /// Sparse top-k/DGC delta.
    Sparse,
    /// QSGD quantized delta.
    Quantized,
    /// TernGrad ternary delta.
    Ternary,
}

/// One client update in its transmitted form.
///
/// The quantized and ternary forms also carry their decoded dense view:
/// aggregation and the defensive gate work on values, and scrubbing may
/// rewrite the view in place — the wire form stays what was transmitted.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdatePayload {
    /// A dense parameter delta (identity compression).
    Dense(DenseUpdate),
    /// A sparse top-k delta (DGC).
    Sparse(SparseUpdate),
    /// A QSGD-quantized delta plus its decoded view.
    Quantized {
        /// The transmitted form.
        wire: QuantizedUpdate,
        /// `wire.to_dense()`, the surface defense and aggregation touch.
        values: Vec<f32>,
    },
    /// A TernGrad ternary delta plus its decoded view.
    Ternary {
        /// The transmitted form.
        wire: TernaryUpdate,
        /// `wire.to_dense()`, the surface defense and aggregation touch.
        values: Vec<f32>,
    },
    /// A sub-model update: a coordinate-view descriptor framing an inner
    /// payload whose values are *view-local* (length = `desc.view_len()`,
    /// not the global dimension). The descriptor travels on the wire ahead
    /// of the inner form and its bytes are part of `encoded_len()`, so the
    /// ledger charges the framing overhead of heterogeneous capacity.
    SubView {
        /// Which global coordinates the inner values occupy.
        desc: ViewDescriptor,
        /// The view-local update in any of the four base wire forms
        /// (never a nested `SubView`).
        inner: Box<UpdatePayload>,
    },
}

impl UpdatePayload {
    /// Wraps a raw dense delta.
    pub fn dense(values: Vec<f32>) -> Self {
        UpdatePayload::Dense(DenseUpdate::new(values))
    }

    /// Wraps a quantized update, materialising its decoded view.
    pub fn quantized(wire: QuantizedUpdate) -> Self {
        let values = wire.to_dense();
        UpdatePayload::Quantized { wire, values }
    }

    /// Wraps a ternary update, materialising its decoded view.
    pub fn ternary(wire: TernaryUpdate) -> Self {
        let values = wire.to_dense();
        UpdatePayload::Ternary { wire, values }
    }

    /// Frames a view-local payload with its coordinate descriptor. The
    /// inner values must be view-local: `inner`'s dense length equals
    /// `desc.view_len()`, not the global dimension.
    ///
    /// # Panics
    ///
    /// Panics on a nested `SubView` — the wire format has exactly one
    /// descriptor per frame.
    pub fn sub_view(desc: ViewDescriptor, inner: UpdatePayload) -> Self {
        assert!(
            !matches!(inner, UpdatePayload::SubView { .. }),
            "sub-view payloads cannot nest"
        );
        UpdatePayload::SubView {
            desc,
            inner: Box::new(inner),
        }
    }

    /// The wire form this payload travels as; for a sub-view, the inner
    /// payload's form (the descriptor framing travels out of band, like
    /// the form tag itself).
    pub fn form(&self) -> WireForm {
        match self {
            UpdatePayload::Dense(_) => WireForm::Dense,
            UpdatePayload::Sparse(_) => WireForm::Sparse,
            UpdatePayload::Quantized { .. } => WireForm::Quantized,
            UpdatePayload::Ternary { .. } => WireForm::Ternary,
            UpdatePayload::SubView { inner, .. } => inner.form(),
        }
    }

    /// The view descriptor, when this payload is a sub-view frame.
    pub fn view_descriptor(&self) -> Option<&ViewDescriptor> {
        match self {
            UpdatePayload::SubView { desc, .. } => Some(desc),
            _ => None,
        }
    }

    /// Exact wire size in bytes, straight from the codec. This is the
    /// number [`RoundIo`](super::RoundIo) charges the ledger with — no
    /// hand-maintained size formula sits between accounting and encoding.
    pub fn encoded_len(&self) -> usize {
        match self {
            UpdatePayload::Dense(d) => d.encoded_len(),
            UpdatePayload::Sparse(s) => s.encoded_len(),
            UpdatePayload::Quantized { wire, .. } => wire.encoded_len(),
            UpdatePayload::Ternary { wire, .. } => wire.encoded_len(),
            UpdatePayload::SubView { desc, inner } => desc.encoded_len() + inner.encoded_len(),
        }
    }

    /// Serialises the transmitted form. A sub-view frame is the descriptor
    /// bytes followed by the inner payload's encoding.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            UpdatePayload::Dense(d) => d.encode(),
            UpdatePayload::Sparse(s) => s.encode(),
            UpdatePayload::Quantized { wire, .. } => wire.encode(),
            UpdatePayload::Ternary { wire, .. } => wire.encode(),
            UpdatePayload::SubView { desc, inner } => {
                let mut out = Vec::with_capacity(self.encoded_len());
                desc.encode_into(&mut out);
                out.extend_from_slice(&inner.encode());
                out
            }
        }
    }

    /// Parses `buf` as the given wire form (the inverse of
    /// [`UpdatePayload::encode`]).
    ///
    /// # Errors
    ///
    /// Propagates the form's [`DecodeError`]; corrupted buffers are
    /// rejected here, before the payload reaches the defense gate.
    pub fn decode(form: WireForm, buf: &[u8]) -> Result<Self, DecodeError> {
        Ok(match form {
            WireForm::Dense => UpdatePayload::Dense(DenseUpdate::decode(buf)?),
            WireForm::Sparse => UpdatePayload::Sparse(SparseUpdate::decode(buf)?),
            WireForm::Quantized => UpdatePayload::quantized(QuantizedUpdate::decode(buf)?),
            WireForm::Ternary => UpdatePayload::ternary(TernaryUpdate::decode(buf)?),
        })
    }

    /// Parses a sub-view frame: a [`ViewDescriptor`] prefix followed by an
    /// inner payload of the given wire form (the inverse of
    /// [`UpdatePayload::encode`] for the `SubView` variant).
    ///
    /// # Errors
    ///
    /// Propagates descriptor and inner-form [`DecodeError`]s; also rejects
    /// an inner payload whose dense length disagrees with the descriptor's
    /// view length.
    pub fn decode_view(inner_form: WireForm, buf: &[u8]) -> Result<Self, DecodeError> {
        let (desc, consumed) = ViewDescriptor::decode_prefix(buf)?;
        let inner = UpdatePayload::decode(inner_form, &buf[consumed..])?;
        if inner.dense_len() != desc.view_len() {
            return Err(DecodeError::InvalidIndices);
        }
        Ok(UpdatePayload::sub_view(desc, inner))
    }

    /// The dense length of this payload's value space: the global
    /// dimension for base forms, the view-local length for a sub-view's
    /// inner payload, and the *global* dimension for the sub-view frame
    /// itself.
    pub fn dense_len(&self) -> usize {
        match self {
            UpdatePayload::Dense(d) => d.len(),
            UpdatePayload::Sparse(s) => s.dense_len(),
            UpdatePayload::Quantized { values, .. } => values.len(),
            UpdatePayload::Ternary { values, .. } => values.len(),
            UpdatePayload::SubView { desc, .. } => desc.dense_len(),
        }
    }

    /// Mutable view of the transmitted values — the surface corruption
    /// faults and the defensive gate's scrubbing operate on. The L2 norm
    /// of a sparse update's values equals the norm of its dense form, so
    /// norm screening is form-independent. For the quantized and ternary
    /// forms this is the decoded view; scrubbing rewrites the view without
    /// touching the transmitted bytes.
    pub fn values_mut(&mut self) -> &mut [f32] {
        match self {
            UpdatePayload::Dense(d) => d.values_mut(),
            UpdatePayload::Sparse(s) => s.values_mut(),
            UpdatePayload::Quantized { values, .. } => values,
            UpdatePayload::Ternary { values, .. } => values,
            // View-local values: screening and scrubbing operate on what
            // was transmitted, which for a sub-view is the covered slice.
            UpdatePayload::SubView { inner, .. } => inner.values_mut(),
        }
    }

    /// Accumulates `scale · self` into `dest`. For a sub-view, `dest` is
    /// the *global* vector and the inner values scatter into the covered
    /// coordinates only.
    pub fn add_scaled_into(&self, dest: &mut [f32], scale: f32) {
        match self {
            UpdatePayload::Dense(d) => {
                for (out, x) in dest.iter_mut().zip(d.values()) {
                    *out += scale * x;
                }
            }
            UpdatePayload::Sparse(s) => s.add_into(dest, scale),
            UpdatePayload::Quantized { values, .. } | UpdatePayload::Ternary { values, .. } => {
                for (out, x) in dest.iter_mut().zip(values) {
                    *out += scale * x;
                }
            }
            UpdatePayload::SubView { desc, inner } => match inner.as_ref() {
                UpdatePayload::Dense(d) => desc.scatter_add_scaled(d.values(), dest, scale),
                UpdatePayload::Quantized { values, .. } | UpdatePayload::Ternary { values, .. } => {
                    desc.scatter_add_scaled(values, dest, scale)
                }
                UpdatePayload::Sparse(s) => {
                    // A sparse inner is sparse *within the view*: densify
                    // to view-local, then scatter through the descriptor.
                    desc.scatter_add_scaled(&s.to_dense(), dest, scale)
                }
                UpdatePayload::SubView { .. } => unreachable!("sub-views cannot nest"),
            },
        }
    }

    /// The payload as a dense vector (moves the dense/decoded form out
    /// without a copy; expands the sparse form). A sub-view densifies to
    /// the *global* dimension with zeros outside its coverage.
    pub fn into_dense(self) -> Vec<f32> {
        match self {
            UpdatePayload::Dense(d) => d.into_values(),
            UpdatePayload::Sparse(s) => s.to_dense(),
            UpdatePayload::Quantized { values, .. } => values,
            UpdatePayload::Ternary { values, .. } => values,
            UpdatePayload::SubView { ref desc, .. } => {
                let mut dense = vec![0.0f32; desc.dense_len()];
                self.add_scaled_into(&mut dense, 1.0);
                dense
            }
        }
    }
}

/// One delivered update awaiting aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundUpdate {
    /// Sender.
    pub client: usize,
    /// The (possibly compressed, possibly corrupted) update.
    pub payload: UpdatePayload,
    /// Aggregation weight (the client's `n_i`).
    pub weight: f32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adafl_compression::{top_k, QsgdQuantizer, TernGrad};

    #[test]
    fn dense_add_scaled_matches_sparse_for_sparse_vectors() {
        let v = vec![0.0, 2.0, 0.0, -4.0];
        let sparse = top_k(&v, 2);
        let mut a = vec![1.0f32; 4];
        let mut b = vec![1.0f32; 4];
        UpdatePayload::dense(v.clone()).add_scaled_into(&mut a, 0.5);
        UpdatePayload::Sparse(sparse).add_scaled_into(&mut b, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn into_dense_is_identity_for_dense() {
        let v = vec![1.0, -2.0, 3.0];
        assert_eq!(UpdatePayload::dense(v.clone()).into_dense(), v);
    }

    #[test]
    fn quantized_and_ternary_views_match_their_wire_form() {
        let g = [1.0f32, -0.5, 0.25, 0.0];
        let q = UpdatePayload::quantized(QsgdQuantizer::new(8, 1).quantize(&g));
        let UpdatePayload::Quantized { wire, values } = &q else {
            unreachable!()
        };
        assert_eq!(values, &wire.to_dense());

        let t = UpdatePayload::ternary(TernGrad::new(1).ternarize(&g));
        let UpdatePayload::Ternary { wire, values } = &t else {
            unreachable!()
        };
        assert_eq!(values, &wire.to_dense());
    }

    #[test]
    fn sub_view_scatters_through_its_descriptor() {
        let desc = ViewDescriptor::new(6, vec![(1, 2), (4, 1)]);
        let p = UpdatePayload::sub_view(desc.clone(), UpdatePayload::dense(vec![1.0, 2.0, 3.0]));
        assert_eq!(p.dense_len(), 6);
        let mut dest = vec![0.0f32; 6];
        p.add_scaled_into(&mut dest, 2.0);
        assert_eq!(dest, vec![0.0, 2.0, 4.0, 0.0, 6.0, 0.0]);
        assert_eq!(p.into_dense(), vec![0.0, 1.0, 2.0, 0.0, 3.0, 0.0]);

        // Sparse inner: sparse *within the view*.
        let sparse_inner = UpdatePayload::Sparse(top_k(&[5.0, 0.0, -7.0], 2));
        let p = UpdatePayload::sub_view(desc, sparse_inner);
        assert_eq!(p.into_dense(), vec![0.0, 5.0, 0.0, 0.0, -7.0, 0.0]);
    }

    #[test]
    fn sub_view_wire_frame_round_trips_and_charges_descriptor() {
        let g = [0.5f32, -2.0, 3.5];
        let desc = ViewDescriptor::new(10, vec![(2, 2), (8, 1)]);
        for inner in [
            UpdatePayload::dense(g.to_vec()),
            UpdatePayload::Sparse(top_k(&g, 2)),
            UpdatePayload::quantized(QsgdQuantizer::new(4, 2).quantize(&g)),
            UpdatePayload::ternary(TernGrad::new(2).ternarize(&g)),
        ] {
            let inner_len = inner.encoded_len();
            let p = UpdatePayload::sub_view(desc.clone(), inner);
            assert_eq!(p.encoded_len(), desc.encoded_len() + inner_len);
            let bytes = p.encode();
            assert_eq!(bytes.len(), p.encoded_len());
            assert_eq!(UpdatePayload::decode_view(p.form(), &bytes).unwrap(), p);
        }
    }

    #[test]
    fn decode_view_rejects_length_mismatch() {
        // Descriptor says 3 covered coordinates, inner carries 2.
        let p = UpdatePayload::sub_view(
            ViewDescriptor::new(10, vec![(0, 3)]),
            UpdatePayload::dense(vec![1.0, 2.0, 3.0]),
        );
        let mut bytes = p.encode();
        // Rewrite the inner dense header's length field (descriptor is
        // 12 + 8 bytes, then the dense u64 length).
        bytes[20] = 2;
        bytes.truncate(bytes.len() - 4);
        assert!(UpdatePayload::decode_view(WireForm::Dense, &bytes).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot nest")]
    fn sub_view_rejects_nesting() {
        let inner = UpdatePayload::sub_view(
            ViewDescriptor::full(2),
            UpdatePayload::dense(vec![1.0, 2.0]),
        );
        let _ = UpdatePayload::sub_view(ViewDescriptor::full(2), inner);
    }

    #[test]
    fn every_form_round_trips_through_its_encoding() {
        let g = [0.5f32, -2.0, 0.0, 3.5];
        let payloads = [
            UpdatePayload::dense(g.to_vec()),
            UpdatePayload::Sparse(top_k(&g, 2)),
            UpdatePayload::quantized(QsgdQuantizer::new(4, 2).quantize(&g)),
            UpdatePayload::ternary(TernGrad::new(2).ternarize(&g)),
        ];
        for p in payloads {
            let bytes = p.encode();
            assert_eq!(bytes.len(), p.encoded_len(), "{:?}", p.form());
            assert_eq!(UpdatePayload::decode(p.form(), &bytes).unwrap(), p);
        }
    }
}
