//! The three policy axes that specialise the shared round runtime.
//!
//! A protocol flavour is a bundle of:
//!
//! * a [`SelectionPolicy`] — who participates in a synchronous round
//!   (random fraction for the baselines, Algorithm 1 utility/top-K for
//!   AdaFL, including any control-plane traffic the decision costs);
//! * a [`CompressionPolicy`] — the wire form of each synchronous uplink
//!   (static schemes vs utility-adaptive DGC);
//! * an [`AggregationPolicy`] (sync) or [`AsyncPolicy`] (async) — how
//!   updates fold into the global model, adapting the existing
//!   [`SyncStrategy`](crate::sync::SyncStrategy) /
//!   [`AsyncStrategy`](crate::r#async::AsyncStrategy) traits.
//!
//! Policies receive narrow context structs borrowing exactly the runtime
//! state they may touch. Everything cross-cutting — scheduling, transport,
//! fault injection, checkpoints, the defensive gate, the ledger, telemetry
//! spans and history recording — stays in the runtime and runs identically
//! for every flavour.

use super::io::RoundIo;
use super::payload::{RoundUpdate, UpdatePayload};
use crate::client::{FlClient, LocalOutcome};
use crate::config::FlConfig;
use adafl_netsim::{FleetNetwork, SimTime};
use adafl_telemetry::{SharedRecorder, SpanRecord};
use std::fmt;

/// Context handed to [`SelectionPolicy::select`] at the top of each
/// synchronous round.
#[derive(Debug)]
pub struct SelectionCtx<'a> {
    /// Round index.
    pub round: usize,
    /// Simulated time at the start of the round.
    pub clock: SimTime,
    /// Protocol configuration.
    pub config: &'a FlConfig,
    /// The fleet — mutable so utility policies can run probe gradients.
    pub clients: &'a mut [FlClient],
    /// Communication plane, for control-plane charges and link probes.
    pub io: &'a mut RoundIo,
    /// Current global parameters.
    pub global: &'a [f32],
    /// Previous round's aggregated global delta (`ĝ`); all zeros until an
    /// aggregation policy writes it.
    pub global_gradient: &'a [f32],
    /// Telemetry sink (strictly passive).
    pub recorder: &'a SharedRecorder,
}

/// Chooses the participants of a synchronous round.
pub trait SelectionPolicy: fmt::Debug + Send {
    /// Returns the selected client ids, charging any control-plane
    /// traffic the decision costs. Crash filtering happens afterwards in
    /// the runtime, so selection RNG state is consumed identically with
    /// or without crash faults.
    fn select(&mut self, ctx: &mut SelectionCtx<'_>) -> Vec<usize>;

    /// Lets the policy append fields to the round span (AdaFL tags the
    /// warm-up flag). Identity by default.
    fn annotate_round_span(&self, _round: usize, span: SpanRecord) -> SpanRecord {
        span
    }
}

/// Context handed to [`CompressionPolicy::prepare`] for one trained
/// client, in cohort order.
#[derive(Debug)]
pub struct SyncUploadCtx<'a> {
    /// Round index.
    pub round: usize,
    /// Sender.
    pub client: usize,
    /// The client's rank in this round's cohort (selection order).
    pub rank: usize,
    /// Cohort size.
    pub cohort: usize,
    /// Wire size of the dense model, for compression-ratio telemetry.
    pub dense_bytes: usize,
    /// Whether the fault plan delivers this client's update this round.
    /// The policy chooses whether compressor state advances for dropped
    /// updates (DGC's momentum does; the static schemes skip).
    pub delivered: bool,
    /// Whether a recorder is attached.
    pub tracing: bool,
    /// Telemetry sink (strictly passive).
    pub recorder: &'a SharedRecorder,
}

/// Produces the wire form of one synchronous uplink.
pub trait CompressionPolicy: fmt::Debug + Send {
    /// Called once with the model dimension before the first round (and
    /// again if the policy is swapped in later); per-client compressor
    /// state is sized here.
    fn init(&mut self, _dim: usize, _clients: usize) {}

    /// Compresses `delta` into its wire form, or returns `None` when the
    /// update is dropped (`ctx.delivered == false`); the runtime then
    /// emits the dropout telemetry. Policies emit their own compression
    /// telemetry so its ordering relative to the drop decision is theirs.
    /// The runtime charges the ledger with the payload's `encoded_len()`.
    fn prepare(&mut self, ctx: &SyncUploadCtx<'_>, delta: &[f32]) -> Option<UpdatePayload>;
}

/// Partial aggregation state for the streaming fold path: a running
/// weighted sum of update payloads plus its total weight.
///
/// One accumulator is O(model) regardless of how many updates folded into
/// it — the whole point of the streaming path. Accumulators produced by
/// different edge aggregators merge with [`StreamAccumulator::merge`] in
/// ascending edge order (the deterministic-merge rule pinned by the
/// streaming-vs-buffered parity test).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamAccumulator {
    /// Running weighted sum `Σ wᵢ·vᵢ` over the folded payloads.
    pub sum: Vec<f32>,
    /// Running weight total `Σ wᵢ`.
    pub total_weight: f32,
    /// Number of updates folded so far.
    pub count: usize,
}

impl StreamAccumulator {
    /// An empty accumulator for a `dim`-parameter model.
    pub fn new(dim: usize) -> Self {
        StreamAccumulator {
            sum: vec![0.0; dim],
            total_weight: 0.0,
            count: 0,
        }
    }

    /// Folds another partial accumulator into this one (element-wise sum;
    /// weights and counts add). Callers merge partials in ascending edge
    /// order so the result is independent of scheduling.
    ///
    /// # Panics
    ///
    /// Panics when the accumulators' dimensions differ.
    pub fn merge(&mut self, other: &StreamAccumulator) {
        assert_eq!(self.sum.len(), other.sum.len(), "accumulator dim mismatch");
        for (a, b) in self.sum.iter_mut().zip(&other.sum) {
            *a += b;
        }
        self.total_weight += other.total_weight;
        self.count += other.count;
    }

    /// Resets to the empty state without releasing the sum buffer, so one
    /// allocation serves every round.
    pub fn reset(&mut self) {
        self.sum.fill(0.0);
        self.total_weight = 0.0;
        self.count = 0;
    }
}

/// Folds delivered synchronous updates into the global model, adapting
/// [`SyncStrategy`](crate::sync::SyncStrategy) or implementing a custom
/// rule (AdaFL's sample-weighted sparse mean).
pub trait AggregationPolicy: fmt::Debug + Send + Sync {
    /// Run label for the history.
    fn label(&self) -> &str;

    /// Called once before the first round.
    fn init(&mut self, _dim: usize, _clients: usize) {}

    /// Whether local training installs the per-step gradient hook. The
    /// hooked and hook-free training paths are numerically distinct, so
    /// this is part of a flavour's pinned behaviour.
    fn uses_gradient_hook(&self) -> bool {
        false
    }

    /// Per-step gradient correction (only called when
    /// [`AggregationPolicy::uses_gradient_hook`] is true).
    fn gradient_hook(&self, _client: usize, _grad: &mut [f32], _params: &[f32], _global: &[f32]) {}

    /// Post-training callback with the client's delta and effective
    /// per-step learning rate.
    fn after_local_round(&mut self, _client: usize, _delta: &[f32], _steps: usize, _lr: f32) {}

    /// Folds the screened updates into `global`; policies that maintain
    /// the global-gradient digest (`ĝ`) write it through `global_gradient`.
    fn aggregate(
        &mut self,
        global: &mut [f32],
        global_gradient: &mut Vec<f32>,
        updates: Vec<RoundUpdate>,
    );

    /// Whether this policy's round result can be produced by the
    /// incremental [`AggregationPolicy::fold`]/[`AggregationPolicy::finish`]
    /// contract instead of [`AggregationPolicy::aggregate`] over the whole
    /// buffered cohort. `false` by default: only policies whose aggregate
    /// is a weighted mean (FedAvg, AdaFL) opt in, and the runtime then
    /// keeps O(model) instead of O(clients × model) round state.
    fn supports_streaming(&self) -> bool {
        false
    }

    /// Folds one delivered update into a partial accumulator as it
    /// arrives. The default accumulates the *unscaled* weighted sum
    /// (`sum += w·v`, `total_weight += w`); normalisation is deferred to
    /// [`AggregationPolicy::finish`] because the total weight is unknown
    /// mid-round. Only called when
    /// [`AggregationPolicy::supports_streaming`] is `true`.
    fn fold(&mut self, acc: &mut StreamAccumulator, update: &RoundUpdate) {
        update.payload.add_scaled_into(&mut acc.sum, update.weight);
        acc.total_weight += update.weight;
        acc.count += 1;
    }

    /// Applies the merged accumulator to the global model at the end of a
    /// streaming round: scale the sum by `1/total_weight` and add the mean
    /// to `global`. Policies that maintain `ĝ` (AdaFL) override this to
    /// also write `global_gradient`. Only called when the accumulator is
    /// non-empty.
    fn finish(
        &mut self,
        global: &mut [f32],
        _global_gradient: &mut Vec<f32>,
        acc: &StreamAccumulator,
    ) {
        debug_assert!(acc.count > 0, "finish requires a non-empty accumulator");
        let inv = 1.0 / acc.total_weight;
        for (g, s) in global.iter_mut().zip(&acc.sum) {
            *g += s * inv;
        }
    }
}

/// Context handed to [`AsyncPolicy::downlink_bytes`].
#[derive(Debug)]
pub struct AsyncDownlinkCtx<'a> {
    /// Model dimension.
    pub dense_len: usize,
    /// Current `ĝ` (drives AdaFL's digest sizing).
    pub global_gradient: &'a [f32],
}

/// Context handed to [`AsyncPolicy::prepare_upload`] after a client
/// finishes local training.
#[derive(Debug)]
pub struct AsyncUploadCtx<'a> {
    /// Sender.
    pub client: usize,
    /// When training finished (the upload's send time).
    pub done: SimTime,
    /// Server-side arrivals so far (drives AdaFL's warm-up window).
    pub arrivals: u64,
    /// Model dimension.
    pub dense_len: usize,
    /// Current `ĝ`.
    pub global_gradient: &'a [f32],
    /// The network (star or mesh), for link probes at `done`.
    pub network: &'a FleetNetwork,
    /// Telemetry sink (strictly passive).
    pub recorder: &'a SharedRecorder,
}

/// Context handed to [`AsyncPolicy::apply`] when an update arrives.
#[derive(Debug)]
pub struct AsyncApplyCtx<'a> {
    /// Global parameters.
    pub global: &'a mut [f32],
    /// `ĝ`, written by policies that maintain it.
    pub global_gradient: &'a mut Vec<f32>,
}

/// The asynchronous protocol's policy axis: what each downlink carries,
/// whether/how a trained delta is uploaded, and how an arrival folds into
/// the global model.
pub trait AsyncPolicy: fmt::Debug + Send {
    /// Run label for the history.
    fn label(&self) -> &str;

    /// Called once with the model dimension before the run.
    fn init(&mut self, _dim: usize) {}

    /// Wire size of one global-model download (dense, plus AdaFL's `ĝ`
    /// digest).
    fn downlink_bytes(&mut self, ctx: &AsyncDownlinkCtx<'_>) -> usize;

    /// Turns a training outcome into an upload, or `None` when the client
    /// halts (AdaFL's utility gate) — the runtime then schedules a resync
    /// at `done + 1 s`. Policies emit their own utility/compression
    /// telemetry. The runtime charges the ledger with the payload's
    /// `encoded_len()`.
    fn prepare_upload(
        &mut self,
        ctx: &mut AsyncUploadCtx<'_>,
        outcome: LocalOutcome,
    ) -> Option<UpdatePayload>;

    /// Folds one arrived (possibly corrupted, defense-screened) update
    /// into the global model; returns `true` when the global parameters
    /// changed (versions advance only then).
    fn apply(
        &mut self,
        ctx: &mut AsyncApplyCtx<'_>,
        payload: UpdatePayload,
        snapshot: &[f32],
        weight: f32,
        staleness: u64,
    ) -> bool;
}
