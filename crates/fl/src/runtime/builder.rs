//! One builder for every protocol flavour.
//!
//! [`RuntimeBuilder`] is the single assembly point for every engine: it
//! gathers the scenario parts (shards, network, compute,
//! faults, resilience options, recorder) once, then specialises into a
//! [`SyncRuntime`] or [`AsyncRuntime`] with a policy bundle — or directly
//! into the [`SyncEngine`](crate::sync::SyncEngine) /
//! [`AsyncEngine`](crate::r#async::AsyncEngine) baseline wrappers.
//!
//! Defaults match the legacy `Engine::new` constructors: a homogeneous
//! broadband network seeded from the config, uniform 0.1 s/step compute,
//! and a fault-free fleet.

use super::baseline::{
    RandomSelection, StaticCompressionPolicy, StrategyAggregation, StrategyAsyncPolicy,
};
use super::event::AsyncRuntime;
use super::policy::AsyncPolicy;
use super::sync::{SyncPolicies, SyncRuntime};
use crate::compute::ComputeModel;
use crate::config::FlConfig;
use crate::defense::DefenseConfig;
use crate::faults::FaultPlan;
use crate::fleet::ShardSource;
use crate::r#async::{AsyncEngine, AsyncStrategy};
use crate::robust::RobustMethod;
use crate::submodel::CapacityPolicy;
use crate::sync::{StaticCompression, SyncEngine, SyncStrategy};
use adafl_data::partition::Partitioner;
use adafl_data::Dataset;
use adafl_netsim::{ClientNetwork, FleetNetwork, LinkProfile, LinkTrace, ReliablePolicy};
use adafl_telemetry::SharedRecorder;

/// Why a [`RuntimeBuilder`] could not assemble the requested flavour.
///
/// Construction is infallible for synchronous flavours; asynchronous
/// flavours reject resilience options that only make sense with a
/// per-round cohort.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// [`RuntimeBuilder::robust`] was combined with an async flavour.
    RobustRequiresSync,
    /// [`RuntimeBuilder::capacity`] was combined with an async flavour.
    CapacityRequiresSync,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::RobustRequiresSync => f.write_str(
                "robust pre-aggregation cannot be combined with an async flavour: \
                 robust estimators need a synchronous cohort to out-vote, and the \
                 one-update-at-a-time async path never has one",
            ),
            BuildError::CapacityRequiresSync => f.write_str(
                "capacity tiers cannot be combined with an async flavour: sub-view \
                 assignment and coverage-weighted aggregation need a synchronous \
                 per-round cohort",
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Gathers scenario parts once, then builds any protocol flavour.
#[derive(Debug)]
pub struct RuntimeBuilder {
    fl: FlConfig,
    test_set: Dataset,
    shards: Option<Vec<Dataset>>,
    shard_source: Option<Box<dyn ShardSource>>,
    network: Option<FleetNetwork>,
    compute: Option<ComputeModel>,
    faults: Option<FaultPlan>,
    retry: Option<ReliablePolicy>,
    defense: Option<DefenseConfig>,
    robust: Option<RobustMethod>,
    capacity: Option<Box<dyn CapacityPolicy>>,
    recorder: Option<SharedRecorder>,
    update_budget: u64,
    eval_every: Option<u64>,
    threads: Option<usize>,
}

impl RuntimeBuilder {
    /// Starts a builder from the protocol configuration and test set.
    pub fn new(fl: FlConfig, test_set: Dataset) -> Self {
        RuntimeBuilder {
            fl,
            test_set,
            shards: None,
            shard_source: None,
            network: None,
            compute: None,
            faults: None,
            retry: None,
            defense: None,
            robust: None,
            capacity: None,
            recorder: None,
            update_budget: 0,
            eval_every: None,
            threads: None,
        }
    }

    /// The protocol configuration this builder was started with.
    pub fn fl(&self) -> &FlConfig {
        &self.fl
    }

    /// Uses pre-split client shards.
    pub fn shards(mut self, shards: Vec<Dataset>) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Splits `train_set` across the fleet with `partitioner`, seeded from
    /// the config (`seed_for("partition")`).
    pub fn partitioned(self, train_set: &Dataset, partitioner: Partitioner) -> Self {
        let shards = partitioner.split(train_set, self.fl.clients, self.fl.seed_for("partition"));
        self.shards(shards)
    }

    /// Uses an on-demand [`ShardSource`] and a cohort-resident client
    /// pool instead of one live client per simulated client — the
    /// fleet-scale configuration (synchronous flavours only; see
    /// [`SyncRuntime::new_pooled`] for the combinations pooled fleets
    /// reject). Takes precedence over [`RuntimeBuilder::shards`].
    pub fn shard_source(mut self, source: Box<dyn ShardSource>) -> Self {
        self.shard_source = Some(source);
        self
    }

    /// Uses an explicit network — a star [`ClientNetwork`] or a mesh
    /// [`adafl_netsim::MeshNetwork`] (default: homogeneous broadband star
    /// seeded `seed_for("network")`).
    pub fn network(mut self, network: impl Into<FleetNetwork>) -> Self {
        self.network = Some(network.into());
        self
    }

    /// Uses an explicit compute model (default: uniform 0.1 s/step).
    pub fn compute(mut self, compute: ComputeModel) -> Self {
        self.compute = Some(compute);
        self
    }

    /// Uses an explicit fault plan (default: fault-free).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables reliable transport (`None` keeps fire-and-forget).
    pub fn retry_policy(mut self, policy: Option<ReliablePolicy>) -> Self {
        self.retry = policy;
        self
    }

    /// Enables the defensive aggregation gate (`None` keeps it off).
    pub fn defense(mut self, cfg: Option<DefenseConfig>) -> Self {
        self.defense = cfg;
        self
    }

    /// Enables Byzantine-robust pre-aggregation between the defense screen
    /// and the aggregation policy (`None` keeps plain aggregation).
    /// Synchronous flavours only — robust estimators need a cohort to
    /// out-vote, which the one-update-at-a-time async path never has.
    pub fn robust(mut self, method: Option<RobustMethod>) -> Self {
        self.robust = method;
        self
    }

    /// Enables heterogeneous-capacity (sub-view) training under the given
    /// tier-assignment policy (`None` keeps full-model rounds). Synchronous
    /// flavours only — see [`SyncRuntime::set_capacity`].
    pub fn capacity(mut self, policy: Option<Box<dyn CapacityPolicy>>) -> Self {
        self.capacity = policy;
        self
    }

    /// Pins the server worker-pool width for synchronous flavours
    /// (`None` keeps the `ADAFL_THREADS` / host-parallelism default; see
    /// [`SyncRuntime::set_threads`]). Async flavours have no server pool
    /// and ignore this.
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a telemetry recorder.
    pub fn recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Total server-update budget for asynchronous runs (required before
    /// building an async flavour).
    pub fn update_budget(mut self, budget: u64) -> Self {
        self.update_budget = budget;
        self
    }

    /// Evaluation cadence for asynchronous runs (default 5 arrivals).
    pub fn eval_every(mut self, n: u64) -> Self {
        self.eval_every = Some(n);
        self
    }

    fn take_parts(&mut self) -> (Vec<Dataset>, FleetNetwork, ComputeModel, FaultPlan) {
        let shards = self
            .shards
            .take()
            .expect("provide shards via .shards(..) or .partitioned(..)");
        let (network, compute, faults) = self.take_env();
        (shards, network, compute, faults)
    }

    fn take_env(&mut self) -> (FleetNetwork, ComputeModel, FaultPlan) {
        let network = self.network.take().unwrap_or_else(|| {
            ClientNetwork::new(
                vec![LinkTrace::constant(LinkProfile::Broadband.spec()); self.fl.clients],
                self.fl.seed_for("network"),
            )
            .into()
        });
        let compute = self
            .compute
            .take()
            .unwrap_or_else(|| ComputeModel::uniform(self.fl.clients, 0.1));
        let faults = self
            .faults
            .take()
            .unwrap_or_else(|| FaultPlan::reliable(self.fl.clients));
        (network, compute, faults)
    }

    /// Builds a [`SyncRuntime`] specialised by `policies`, applying the
    /// resilience options in the canonical order (retry → defense →
    /// robust → recorder) the benchmark runner has always used.
    pub fn build_sync_runtime(mut self, policies: SyncPolicies) -> SyncRuntime {
        let mut rt = match self.shard_source.take() {
            Some(source) => {
                let (network, compute, faults) = self.take_env();
                SyncRuntime::new_pooled(
                    self.fl,
                    source,
                    self.test_set,
                    network,
                    compute,
                    faults,
                    policies,
                )
            }
            None => {
                let (shards, network, compute, faults) = self.take_parts();
                SyncRuntime::new(
                    self.fl,
                    shards,
                    self.test_set,
                    network,
                    compute,
                    faults,
                    policies,
                )
            }
        };
        if let Some(policy) = self.retry {
            rt.set_retry_policy(policy);
        }
        if let Some(cfg) = self.defense {
            rt.set_defense(cfg);
        }
        if let Some(method) = self.robust {
            rt.set_robust(method);
        }
        if let Some(policy) = self.capacity {
            rt.set_capacity(policy);
        }
        if let Some(recorder) = self.recorder {
            rt.set_recorder(recorder);
        }
        if let Some(threads) = self.threads {
            rt.set_threads(threads);
        }
        rt
    }

    /// Builds an [`AsyncRuntime`] specialised by `policy`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] naming the unsupported combination when
    /// [`RuntimeBuilder::robust`] or [`RuntimeBuilder::capacity`] was set —
    /// both need a synchronous per-round cohort.
    ///
    /// # Panics
    ///
    /// Panics when [`RuntimeBuilder::update_budget`] was not set.
    pub fn build_async_runtime(
        mut self,
        policy: Box<dyn AsyncPolicy>,
    ) -> Result<AsyncRuntime, BuildError> {
        if self.robust.is_some() {
            return Err(BuildError::RobustRequiresSync);
        }
        if self.capacity.is_some() {
            return Err(BuildError::CapacityRequiresSync);
        }
        assert!(
            self.shard_source.is_none(),
            "pooled fleets are synchronous-only: the async event loop keeps \
             per-client versions alive across the whole run"
        );
        let (shards, network, compute, faults) = self.take_parts();
        let mut rt = AsyncRuntime::new(
            self.fl,
            shards,
            self.test_set,
            network,
            compute,
            faults,
            self.update_budget,
            policy,
        );
        if let Some(n) = self.eval_every {
            rt.set_eval_every(n);
        }
        if let Some(policy) = self.retry {
            rt.set_retry_policy(policy);
        }
        if let Some(cfg) = self.defense {
            rt.set_defense(cfg);
        }
        if let Some(recorder) = self.recorder {
            rt.set_recorder(recorder);
        }
        Ok(rt)
    }

    /// Builds the baseline synchronous flavour: uniform random selection,
    /// identity static compression and the given [`SyncStrategy`], wrapped
    /// in the legacy [`SyncEngine`] facade.
    pub fn build_sync(self, strategy: Box<dyn SyncStrategy>) -> SyncEngine {
        let policies = SyncPolicies {
            selection: Box::new(RandomSelection::new(self.fl.seed_for("selection"))),
            compression: Box::new(StaticCompressionPolicy::new(
                StaticCompression::None,
                self.fl.seed_for("compression"),
            )),
            aggregation: Box::new(StrategyAggregation::new(strategy)),
            enforce_deadline: true,
        };
        SyncEngine::from_runtime(self.build_sync_runtime(policies))
    }

    /// Builds the baseline asynchronous flavour (dense exchanges, no
    /// utility gate) around the given [`AsyncStrategy`], wrapped in the
    /// legacy [`AsyncEngine`] facade.
    ///
    /// # Errors
    ///
    /// See [`RuntimeBuilder::build_async_runtime`].
    pub fn build_async(self, strategy: Box<dyn AsyncStrategy>) -> Result<AsyncEngine, BuildError> {
        self.build_async_runtime(Box::new(StrategyAsyncPolicy::new(strategy)))
            .map(AsyncEngine::from_runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r#async::strategies::FedAsync;
    use crate::submodel::{CapacityTier, StaticCapacity};
    use adafl_data::synthetic::SyntheticSpec;
    use adafl_nn::models::ModelSpec;

    fn builder() -> RuntimeBuilder {
        let data = SyntheticSpec::mnist_like(4, 40).generate(0);
        let cfg = FlConfig::builder()
            .clients(2)
            .rounds(1)
            .model(ModelSpec::LogisticRegression {
                in_features: 16,
                classes: 10,
            })
            .build();
        RuntimeBuilder::new(cfg, data)
    }

    #[test]
    fn async_build_rejects_robust_with_named_error() {
        let err = builder()
            .robust(Some(RobustMethod::Median))
            .update_budget(10)
            .build_async(Box::new(FedAsync::new(0.6, 0.5)))
            .expect_err("robust + async must be rejected");
        assert_eq!(err, BuildError::RobustRequiresSync);
        let msg = err.to_string();
        assert!(
            msg.contains("robust pre-aggregation") && msg.contains("async"),
            "error must name the unsupported combination: {msg}"
        );
    }

    #[test]
    fn async_build_rejects_capacity_with_named_error() {
        let err = builder()
            .capacity(Some(Box::new(StaticCapacity::new(vec![
                CapacityTier::Full,
            ]))))
            .update_budget(10)
            .build_async(Box::new(FedAsync::new(0.6, 0.5)))
            .expect_err("capacity + async must be rejected");
        assert_eq!(err, BuildError::CapacityRequiresSync);
        let msg = err.to_string();
        assert!(
            msg.contains("capacity tiers") && msg.contains("async"),
            "error must name the unsupported combination: {msg}"
        );
    }
}
