//! One builder for every protocol flavour.
//!
//! [`RuntimeBuilder`] is the single assembly point for every engine: it
//! gathers the scenario parts (shards, network, compute,
//! faults, resilience options, recorder) once, then specialises into a
//! [`SyncRuntime`] or [`AsyncRuntime`] with a policy bundle — or directly
//! into the [`SyncEngine`](crate::sync::SyncEngine) /
//! [`AsyncEngine`](crate::r#async::AsyncEngine) baseline wrappers.
//!
//! Defaults match the legacy `Engine::new` constructors: a homogeneous
//! broadband network seeded from the config, uniform 0.1 s/step compute,
//! and a fault-free fleet.

use super::baseline::{
    RandomSelection, StaticCompressionPolicy, StrategyAggregation, StrategyAsyncPolicy,
};
use super::event::AsyncRuntime;
use super::policy::AsyncPolicy;
use super::sync::{SyncPolicies, SyncRuntime};
use crate::compute::ComputeModel;
use crate::config::FlConfig;
use crate::defense::DefenseConfig;
use crate::faults::FaultPlan;
use crate::r#async::{AsyncEngine, AsyncStrategy};
use crate::robust::RobustMethod;
use crate::sync::{StaticCompression, SyncEngine, SyncStrategy};
use adafl_data::partition::Partitioner;
use adafl_data::Dataset;
use adafl_netsim::{ClientNetwork, FleetNetwork, LinkProfile, LinkTrace, ReliablePolicy};
use adafl_telemetry::SharedRecorder;

/// Gathers scenario parts once, then builds any protocol flavour.
#[derive(Debug)]
pub struct RuntimeBuilder {
    fl: FlConfig,
    test_set: Dataset,
    shards: Option<Vec<Dataset>>,
    network: Option<FleetNetwork>,
    compute: Option<ComputeModel>,
    faults: Option<FaultPlan>,
    retry: Option<ReliablePolicy>,
    defense: Option<DefenseConfig>,
    robust: Option<RobustMethod>,
    recorder: Option<SharedRecorder>,
    update_budget: u64,
    eval_every: Option<u64>,
    threads: Option<usize>,
}

impl RuntimeBuilder {
    /// Starts a builder from the protocol configuration and test set.
    pub fn new(fl: FlConfig, test_set: Dataset) -> Self {
        RuntimeBuilder {
            fl,
            test_set,
            shards: None,
            network: None,
            compute: None,
            faults: None,
            retry: None,
            defense: None,
            robust: None,
            recorder: None,
            update_budget: 0,
            eval_every: None,
            threads: None,
        }
    }

    /// The protocol configuration this builder was started with.
    pub fn fl(&self) -> &FlConfig {
        &self.fl
    }

    /// Uses pre-split client shards.
    pub fn shards(mut self, shards: Vec<Dataset>) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Splits `train_set` across the fleet with `partitioner`, seeded from
    /// the config (`seed_for("partition")`).
    pub fn partitioned(self, train_set: &Dataset, partitioner: Partitioner) -> Self {
        let shards = partitioner.split(train_set, self.fl.clients, self.fl.seed_for("partition"));
        self.shards(shards)
    }

    /// Uses an explicit network — a star [`ClientNetwork`] or a mesh
    /// [`adafl_netsim::MeshNetwork`] (default: homogeneous broadband star
    /// seeded `seed_for("network")`).
    pub fn network(mut self, network: impl Into<FleetNetwork>) -> Self {
        self.network = Some(network.into());
        self
    }

    /// Uses an explicit compute model (default: uniform 0.1 s/step).
    pub fn compute(mut self, compute: ComputeModel) -> Self {
        self.compute = Some(compute);
        self
    }

    /// Uses an explicit fault plan (default: fault-free).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables reliable transport (`None` keeps fire-and-forget).
    pub fn retry_policy(mut self, policy: Option<ReliablePolicy>) -> Self {
        self.retry = policy;
        self
    }

    /// Enables the defensive aggregation gate (`None` keeps it off).
    pub fn defense(mut self, cfg: Option<DefenseConfig>) -> Self {
        self.defense = cfg;
        self
    }

    /// Enables Byzantine-robust pre-aggregation between the defense screen
    /// and the aggregation policy (`None` keeps plain aggregation).
    /// Synchronous flavours only — robust estimators need a cohort to
    /// out-vote, which the one-update-at-a-time async path never has.
    pub fn robust(mut self, method: Option<RobustMethod>) -> Self {
        self.robust = method;
        self
    }

    /// Pins the server worker-pool width for synchronous flavours
    /// (`None` keeps the `ADAFL_THREADS` / host-parallelism default; see
    /// [`SyncRuntime::set_threads`]). Async flavours have no server pool
    /// and ignore this.
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a telemetry recorder.
    pub fn recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Total server-update budget for asynchronous runs (required before
    /// building an async flavour).
    pub fn update_budget(mut self, budget: u64) -> Self {
        self.update_budget = budget;
        self
    }

    /// Evaluation cadence for asynchronous runs (default 5 arrivals).
    pub fn eval_every(mut self, n: u64) -> Self {
        self.eval_every = Some(n);
        self
    }

    fn take_parts(&mut self) -> (Vec<Dataset>, FleetNetwork, ComputeModel, FaultPlan) {
        let shards = self
            .shards
            .take()
            .expect("provide shards via .shards(..) or .partitioned(..)");
        let network = self.network.take().unwrap_or_else(|| {
            ClientNetwork::new(
                vec![LinkTrace::constant(LinkProfile::Broadband.spec()); self.fl.clients],
                self.fl.seed_for("network"),
            )
            .into()
        });
        let compute = self
            .compute
            .take()
            .unwrap_or_else(|| ComputeModel::uniform(self.fl.clients, 0.1));
        let faults = self
            .faults
            .take()
            .unwrap_or_else(|| FaultPlan::reliable(self.fl.clients));
        (shards, network, compute, faults)
    }

    /// Builds a [`SyncRuntime`] specialised by `policies`, applying the
    /// resilience options in the canonical order (retry → defense →
    /// robust → recorder) the benchmark runner has always used.
    pub fn build_sync_runtime(mut self, policies: SyncPolicies) -> SyncRuntime {
        let (shards, network, compute, faults) = self.take_parts();
        let mut rt = SyncRuntime::new(
            self.fl,
            shards,
            self.test_set,
            network,
            compute,
            faults,
            policies,
        );
        if let Some(policy) = self.retry {
            rt.set_retry_policy(policy);
        }
        if let Some(cfg) = self.defense {
            rt.set_defense(cfg);
        }
        if let Some(method) = self.robust {
            rt.set_robust(method);
        }
        if let Some(recorder) = self.recorder {
            rt.set_recorder(recorder);
        }
        if let Some(threads) = self.threads {
            rt.set_threads(threads);
        }
        rt
    }

    /// Builds an [`AsyncRuntime`] specialised by `policy`.
    ///
    /// # Panics
    ///
    /// Panics when [`RuntimeBuilder::update_budget`] was not set, or when
    /// [`RuntimeBuilder::robust`] was — robust pre-aggregation needs a
    /// synchronous cohort.
    pub fn build_async_runtime(mut self, policy: Box<dyn AsyncPolicy>) -> AsyncRuntime {
        assert!(
            self.robust.is_none(),
            "robust pre-aggregation requires a synchronous cohort; \
             async flavours apply updates one at a time"
        );
        let (shards, network, compute, faults) = self.take_parts();
        let mut rt = AsyncRuntime::new(
            self.fl,
            shards,
            self.test_set,
            network,
            compute,
            faults,
            self.update_budget,
            policy,
        );
        if let Some(n) = self.eval_every {
            rt.set_eval_every(n);
        }
        if let Some(policy) = self.retry {
            rt.set_retry_policy(policy);
        }
        if let Some(cfg) = self.defense {
            rt.set_defense(cfg);
        }
        if let Some(recorder) = self.recorder {
            rt.set_recorder(recorder);
        }
        rt
    }

    /// Builds the baseline synchronous flavour: uniform random selection,
    /// identity static compression and the given [`SyncStrategy`], wrapped
    /// in the legacy [`SyncEngine`] facade.
    pub fn build_sync(self, strategy: Box<dyn SyncStrategy>) -> SyncEngine {
        let policies = SyncPolicies {
            selection: Box::new(RandomSelection::new(self.fl.seed_for("selection"))),
            compression: Box::new(StaticCompressionPolicy::new(
                StaticCompression::None,
                self.fl.seed_for("compression"),
            )),
            aggregation: Box::new(StrategyAggregation::new(strategy)),
            enforce_deadline: true,
        };
        SyncEngine::from_runtime(self.build_sync_runtime(policies))
    }

    /// Builds the baseline asynchronous flavour (dense exchanges, no
    /// utility gate) around the given [`AsyncStrategy`], wrapped in the
    /// legacy [`AsyncEngine`] facade.
    pub fn build_async(self, strategy: Box<dyn AsyncStrategy>) -> AsyncEngine {
        AsyncEngine::from_runtime(
            self.build_async_runtime(Box::new(StrategyAsyncPolicy::new(strategy))),
        )
    }
}
