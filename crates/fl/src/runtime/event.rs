//! The shared asynchronous (event-driven) round runtime.
//!
//! Clients loop independently: receive the global model → train locally →
//! upload; the server reacts to each arrival. The runtime owns the event
//! queue, transport, fault injection, the defensive gate, ledger charging,
//! telemetry and history recording; an [`AsyncPolicy`] decides what each
//! downlink carries, whether/how a trained delta is uploaded, and how an
//! arrival folds into the global model.

use super::io::RoundIo;
use super::policy::{AsyncApplyCtx, AsyncDownlinkCtx, AsyncPolicy, AsyncUploadCtx};
use crate::client::{evaluate_model, FlClient};
use crate::compute::ComputeModel;
use crate::config::FlConfig;
use crate::defense::{DefenseConfig, DefenseGate};
use crate::faults::{attack_payload, corrupt_payload, FaultPlan};
use crate::history::{RoundRecord, RunHistory};
use crate::ledger::CommunicationLedger;
use crate::runtime::payload::UpdatePayload;
use adafl_compression::DecodeError;
use adafl_data::Dataset;
use adafl_netsim::{EventQueue, FleetNetwork, ReliablePolicy, SimTime};
use adafl_telemetry::{names, EventRecord, SharedRecorder, SpanRecord};

#[derive(Debug)]
enum Event {
    /// A client finished downloading the global model and starts training.
    StartTraining { client: usize },
    /// A client's update reached the server.
    UpdateArrival { client: usize, version: u64 },
    /// A transfer was lost (or the client halted); the client re-requests
    /// the global model.
    Resync { client: usize },
}

/// Policy-driven asynchronous FL runtime. Staleness emerges naturally from
/// slow compute or slow links on the simulated clock rather than being
/// injected.
#[derive(Debug)]
pub struct AsyncRuntime {
    config: FlConfig,
    clients: Vec<FlClient>,
    /// Per-client snapshot of the global model they are training from.
    snapshots: Vec<Vec<f32>>,
    /// Per-client pending update awaiting arrival (at most one in
    /// flight); `Err` when corruption left the frame undecodable — the
    /// bytes still travel and the server rejects them on arrival.
    in_flight: Vec<Option<Result<UpdatePayload, DecodeError>>>,
    global: Vec<f32>,
    global_model: adafl_nn::Model,
    /// Latest applied global delta (`ĝ`); stays zero unless the policy
    /// maintains it.
    global_gradient: Vec<f32>,
    version: u64,
    test_set: Dataset,
    policy: Box<dyn AsyncPolicy>,
    io: RoundIo,
    compute: ComputeModel,
    faults: FaultPlan,
    update_budget: u64,
    eval_every: u64,
    recorder: SharedRecorder,
    defense: Option<DefenseGate>,
}

impl AsyncRuntime {
    /// Assembles a runtime from explicit parts and an async policy; stale
    /// clients in `faults` are folded into the compute model as slowdowns.
    ///
    /// # Panics
    ///
    /// Panics when part sizes disagree with `config.clients`, any shard is
    /// empty, or `update_budget` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: FlConfig,
        shards: Vec<Dataset>,
        test_set: Dataset,
        network: impl Into<FleetNetwork>,
        mut compute: ComputeModel,
        faults: FaultPlan,
        update_budget: u64,
        mut policy: Box<dyn AsyncPolicy>,
    ) -> Self {
        assert_eq!(shards.len(), config.clients, "shard count mismatch");
        let network = network.into();
        assert_eq!(network.len(), config.clients, "network size mismatch");
        assert_eq!(
            compute.clients(),
            config.clients,
            "compute model size mismatch"
        );
        assert_eq!(faults.clients(), config.clients, "fault plan size mismatch");
        assert!(update_budget > 0, "update budget must be positive");
        let clients = FlClient::fleet(
            &config.model,
            shards,
            config.learning_rate,
            config.momentum,
            config.batch_size,
            config.seed_for("model"),
        );
        let mut global_model = config.model.build(config.seed_for("model"));
        let global = global_model.params_flat();
        global_model.set_params_flat(&global);
        policy.init(global.len());
        for c in 0..config.clients {
            let slow = faults.slowdown(c);
            if slow > 1.0 {
                compute.scale_client(c, slow);
            }
        }
        let snapshots = vec![global.clone(); config.clients];
        AsyncRuntime {
            io: RoundIo::new(network, config.clients),
            in_flight: vec![None; config.clients],
            global_gradient: vec![0.0; global.len()],
            snapshots,
            clients,
            global,
            global_model,
            version: 0,
            test_set,
            policy,
            compute,
            faults,
            config,
            update_budget,
            eval_every: 5,
            recorder: adafl_telemetry::noop(),
            defense: None,
        }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// Attaches a telemetry recorder, also wiring it into the simulated
    /// network. Recording is strictly passive: event scheduling and RNG
    /// state are untouched, so traced and untraced runs are identical.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.io.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Enables reliable transport for every model exchange; a transfer
    /// that still fails after all attempts falls back to the resync path.
    /// Off by default.
    pub fn set_retry_policy(&mut self, policy: ReliablePolicy) {
        self.io.set_retry_policy(
            policy,
            self.config.seed_for("transport"),
            self.recorder.clone(),
        );
    }

    /// Enables the defensive aggregation gate: each arriving update is
    /// scrubbed and norm-screened before it reaches the policy; rejected
    /// updates are discarded (the client is resynced as usual). Off by
    /// default.
    pub fn set_defense(&mut self, cfg: DefenseConfig) {
        self.defense = Some(DefenseGate::new(cfg));
    }

    /// Sets how many server updates elapse between test-set evaluations
    /// (default 5).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn set_eval_every(&mut self, n: u64) {
        assert!(n > 0, "evaluation interval must be positive");
        self.eval_every = n;
    }

    /// The communication ledger (cumulative).
    pub fn ledger(&self) -> &CommunicationLedger {
        self.io.ledger()
    }

    /// Current global version (number of global model changes).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current global parameters.
    pub fn global_params(&self) -> &[f32] {
        &self.global
    }

    /// Runs until `update_budget` client updates have reached the server,
    /// returning the evaluation history against simulated time.
    pub fn run(&mut self) -> RunHistory {
        let mut history = RunHistory::new(self.policy.label());
        let mut queue: EventQueue<Event> = EventQueue::new();

        // Bootstrap: broadcast the initial model to everyone.
        for c in 0..self.config.clients {
            self.schedule_downlink(&mut queue, c, SimTime::ZERO);
        }

        let mut arrivals: u64 = 0;
        // Per-client version tags of the snapshot they are training from.
        let mut client_versions = vec![0u64; self.config.clients];

        // Liveness guard: fully-lossy networks can resync forever without
        // an arrival; bound total events so `run` always terminates.
        let max_events = self
            .update_budget
            .saturating_mul(self.config.clients as u64)
            .saturating_mul(50)
            .max(10_000);
        let mut events: u64 = 0;
        while let Some((now, event)) = queue.pop() {
            events += 1;
            if events > max_events {
                break;
            }
            match event {
                Event::StartTraining { client } => {
                    client_versions[client] = self.version;
                    let snapshot = self.snapshots[client].clone();
                    let outcome =
                        self.clients[client].train_local(&snapshot, self.config.local_steps, None);
                    let train_time = self.compute.training_time(client, self.config.local_steps);
                    let done = now + train_time;
                    if self.recorder.enabled() {
                        self.recorder.span(
                            SpanRecord::new(
                                names::SPAN_CLIENT_COMPUTE,
                                now.seconds(),
                                done.seconds(),
                            )
                            .client(client)
                            .field("steps", self.config.local_steps),
                        );
                    }
                    let prepared = {
                        let mut ctx = AsyncUploadCtx {
                            client,
                            done,
                            arrivals,
                            dense_len: self.global.len(),
                            global_gradient: &self.global_gradient,
                            network: self.io.network(),
                            recorder: &self.recorder,
                        };
                        self.policy.prepare_upload(&mut ctx, outcome)
                    };
                    let Some(mut payload) = prepared else {
                        // The policy halted the upload (AdaFL's utility
                        // gate); the client idles and resyncs shortly.
                        queue.push(done + SimTime::from_seconds(1.0), Event::Resync { client });
                        continue;
                    };
                    // Byzantine clients poison the encoded bytes before
                    // upload; colluders key their shared direction to the
                    // global version they trained from, the async analogue
                    // of the sync runtime's per-round collusion seed.
                    if let Some(kind) = self.faults.attacks_update(client) {
                        let seed = self.faults.collusion_seed(client_versions[client] as usize);
                        attack_payload(&mut payload, kind, seed);
                        if self.recorder.enabled() {
                            self.recorder.counter_add(names::FL_ATTACKS, 1);
                            self.recorder.event(
                                EventRecord::new(names::EVENT_ATTACK, done.seconds())
                                    .client(client)
                                    .field("kind", kind.as_str()),
                            );
                        }
                    }
                    // Corruption faults flip the update's *encoded bytes*
                    // in transit; frames that re-parse carry poisoned
                    // values for the defensive gate, frames that do not
                    // are rejected by the decoder on arrival.
                    let mut decode_error: Option<DecodeError> = None;
                    if let Some(seed) = self.faults.corrupts_update(client) {
                        decode_error = corrupt_payload(&mut payload, seed).err();
                        if self.recorder.enabled() {
                            self.recorder.counter_add(names::FL_CORRUPTIONS, 1);
                            self.recorder.event(
                                EventRecord::new(names::EVENT_CORRUPTION, done.seconds())
                                    .client(client),
                            );
                        }
                    }
                    // Byte flips preserve the frame length, so the charge
                    // is the same whether or not the frame still parses.
                    let delivery = self.io.uplink_update(client, &payload, done);
                    self.in_flight[client] = Some(match decode_error {
                        Some(err) => Err(err),
                        None => Ok(payload),
                    });
                    match delivery.arrival {
                        Some(arrival) => {
                            queue.push(
                                arrival,
                                Event::UpdateArrival {
                                    client,
                                    version: client_versions[client],
                                },
                            );
                        }
                        None => {
                            // Update lost in transit: resync once the
                            // sender learns of the loss.
                            self.in_flight[client] = None;
                            queue.push(delivery.sender_done, Event::Resync { client });
                        }
                    }
                }
                Event::UpdateArrival { client, version } => {
                    arrivals += 1;
                    let staleness = self.version.saturating_sub(version);
                    if self.recorder.enabled() {
                        self.recorder
                            .histogram_record(names::ASYNC_STALENESS, staleness as f64);
                        self.recorder.event(
                            EventRecord::new(names::EVENT_STALENESS, now.seconds())
                                .round(arrivals as usize)
                                .client(client)
                                .field("staleness", staleness),
                        );
                    }
                    match self.in_flight[client]
                        .take()
                        .expect("arrival without an in-flight update")
                    {
                        Err(err) => {
                            // The bytes arrived (and count toward the
                            // budget) but no longer parse: the decoder
                            // rejects the update before the defense gate
                            // ever sees values.
                            if self.recorder.enabled() {
                                self.recorder.counter_add(names::FL_DECODE_REJECTIONS, 1);
                                self.recorder.event(
                                    EventRecord::new(names::EVENT_DECODE_REJECT, now.seconds())
                                        .client(client)
                                        .field("error", err.to_string()),
                                );
                            }
                        }
                        Ok(mut payload) => {
                            // Defensive gate: scrub and norm-screen the
                            // arriving update; a rejected update never
                            // reaches the policy (the arrival still counts
                            // toward the budget, so a poisoned fleet cannot
                            // livelock the run).
                            let mut rejection: Option<&'static str> = None;
                            if let Some(gate) = self.defense.as_mut() {
                                match gate.sanitize(payload.values_mut()) {
                                    Ok(s) => {
                                        if s.scrubbed > 0 && self.recorder.enabled() {
                                            self.recorder.counter_add(
                                                names::FL_DEFENSE_SCRUBBED,
                                                s.scrubbed as u64,
                                            );
                                        }
                                        if !gate.admit(s.norm) {
                                            rejection = Some("norm_outlier");
                                        }
                                    }
                                    Err(reason) => rejection = Some(reason.label()),
                                }
                            }
                            if let Some(reason) = rejection {
                                if self.recorder.enabled() {
                                    self.recorder.counter_add(names::FL_DEFENSE_REJECTIONS, 1);
                                    self.recorder.event(
                                        EventRecord::new(
                                            names::EVENT_DEFENSE_REJECT,
                                            now.seconds(),
                                        )
                                        .client(client)
                                        .field("reason", reason),
                                    );
                                }
                            } else {
                                let weight = self.clients[client].num_samples() as f32;
                                let snapshot = std::mem::take(&mut self.snapshots[client]);
                                let changed = {
                                    let mut ctx = AsyncApplyCtx {
                                        global: &mut self.global,
                                        global_gradient: &mut self.global_gradient,
                                    };
                                    self.policy
                                        .apply(&mut ctx, payload, &snapshot, weight, staleness)
                                };
                                self.snapshots[client] = snapshot;
                                if changed {
                                    self.version += 1;
                                }
                            }
                        }
                    }
                    if arrivals.is_multiple_of(self.eval_every) || arrivals == self.update_budget {
                        let (accuracy, loss) = self.evaluate();
                        history.push(RoundRecord {
                            round: arrivals as usize,
                            sim_time: now,
                            accuracy,
                            loss,
                            uplink_bytes: self.io.ledger().uplink_bytes(),
                            uplink_updates: self.io.ledger().uplink_updates(),
                            contributors: 1,
                        });
                    }
                    if arrivals >= self.update_budget {
                        break;
                    }
                    self.schedule_downlink(&mut queue, client, now);
                }
                Event::Resync { client } => {
                    self.schedule_downlink(&mut queue, client, now);
                }
            }
        }
        history
    }

    fn schedule_downlink(&mut self, queue: &mut EventQueue<Event>, client: usize, now: SimTime) {
        let bytes = self.policy.downlink_bytes(&AsyncDownlinkCtx {
            dense_len: self.global.len(),
            global_gradient: &self.global_gradient,
        });
        self.snapshots[client].copy_from_slice(&self.global);
        let delivery = self.io.downlink(client, bytes, now, false);
        match delivery.arrival {
            Some(arrival) => queue.push(arrival, Event::StartTraining { client }),
            None => queue.push(delivery.sender_done, Event::Resync { client }),
        }
    }

    fn evaluate(&mut self) -> (f32, f32) {
        self.global_model.set_params_flat(&self.global);
        evaluate_model(&mut self.global_model, &self.test_set)
    }
}
