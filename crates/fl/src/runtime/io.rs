//! Transport + ledger accounting for the round runtime.
//!
//! [`RoundIo`] owns the simulated network, the optional reliable-transport
//! layer and the communication ledger, and centralises the charging rules
//! every engine previously duplicated:
//!
//! * **Reliable transport** (both directions): a delivered transfer is
//!   charged its payload on the direction counter, wasted (retransmitted)
//!   bytes on the retransmission counter and ACK/NACK frames on the
//!   control counter; a transfer that exhausts its retries charges the
//!   whole payload as retransmission waste and nothing else.
//! * **Fire-and-forget uplink**: charged only when the datagram arrives.
//! * **Fire-and-forget downlink**: the *synchronous* protocol charges the
//!   broadcast unconditionally (the server transmits whether or not the
//!   client hears it), while the *asynchronous* protocol charges only on
//!   delivery — callers pick via `charge_lost_send`. This asymmetry is
//!   pinned by the golden traces and documented by the ledger-audit tests.

use super::payload::UpdatePayload;
use crate::ledger::CommunicationLedger;
use adafl_netsim::{ClientNetwork, ReliablePolicy, ReliableTransfer, SimTime};
use adafl_telemetry::SharedRecorder;

/// Outcome of driving one transfer through [`RoundIo`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// When the payload reached the receiver; `None` when it was lost.
    pub arrival: Option<SimTime>,
    /// When the sender learned the transfer's fate — the resync point for
    /// lost transfers (send time + 1 s for fire-and-forget datagrams).
    pub sender_done: SimTime,
}

/// The runtime's communication plane: network, optional retry transport
/// and the byte ledger, with one charging implementation shared by every
/// protocol flavour.
#[derive(Debug)]
pub struct RoundIo {
    network: ClientNetwork,
    ledger: CommunicationLedger,
    transport: Option<ReliableTransfer>,
}

impl RoundIo {
    /// Wraps a network and a fresh ledger; fire-and-forget until
    /// [`RoundIo::set_retry_policy`] installs reliable transport.
    pub fn new(network: ClientNetwork, clients: usize) -> Self {
        RoundIo {
            network,
            ledger: CommunicationLedger::new(clients),
            transport: None,
        }
    }

    /// The cumulative ledger.
    pub fn ledger(&self) -> &CommunicationLedger {
        &self.ledger
    }

    /// Mutable ledger access, for control-plane charges (digests, score
    /// reports) owned by selection policies.
    pub fn ledger_mut(&mut self) -> &mut CommunicationLedger {
        &mut self.ledger
    }

    /// The simulated network (e.g. for [`ClientNetwork::link_at`] probes).
    pub fn network(&self) -> &ClientNetwork {
        &self.network
    }

    /// Wires a recorder into the network and any installed transport.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.network.set_recorder(recorder.clone());
        if let Some(t) = &mut self.transport {
            t.set_recorder(recorder);
        }
    }

    /// Installs reliable transport with the given policy, seed and
    /// recorder; every subsequent transfer runs through it.
    pub fn set_retry_policy(
        &mut self,
        policy: ReliablePolicy,
        seed: u64,
        recorder: SharedRecorder,
    ) {
        let mut t = ReliableTransfer::new(policy, seed);
        t.set_recorder(recorder);
        self.transport = Some(t);
    }

    /// Server→client transfer. `charge_lost_send` selects the sync
    /// broadcast rule (charge the payload even when the datagram is lost)
    /// over the async rule (charge only on delivery); reliable transport
    /// ignores the flag and always applies its own accounting.
    pub fn downlink(
        &mut self,
        client: usize,
        bytes: usize,
        now: SimTime,
        charge_lost_send: bool,
    ) -> Delivery {
        match &mut self.transport {
            Some(t) => {
                let report = t.downlink(&mut self.network, client, bytes, now);
                if report.delivered() {
                    self.ledger.record_downlink(client, bytes);
                    if report.wasted_bytes > 0 {
                        self.ledger
                            .record_retransmission(client, report.wasted_bytes as usize);
                    }
                    self.ledger
                        .record_control(client, report.control_bytes as usize);
                } else {
                    self.ledger
                        .record_retransmission(client, report.payload_bytes as usize);
                }
                Delivery {
                    arrival: report.arrival,
                    sender_done: report.sender_done,
                }
            }
            None => {
                let down = self.network.downlink_transfer(client, bytes, now);
                if charge_lost_send || down.arrival().is_some() {
                    self.ledger.record_downlink(client, bytes);
                }
                Delivery {
                    arrival: down.arrival(),
                    sender_done: now + SimTime::from_seconds(1.0),
                }
            }
        }
    }

    /// Client→server transfer of one update payload. The ledger charge is
    /// the payload's `encoded_len()` — the codec, not a size formula, is
    /// the accounting authority.
    pub fn uplink_update(
        &mut self,
        client: usize,
        payload: &UpdatePayload,
        now: SimTime,
    ) -> Delivery {
        self.uplink(client, payload.encoded_len(), now)
    }

    /// Client→server transfer; fire-and-forget charges only on delivery.
    pub fn uplink(&mut self, client: usize, bytes: usize, now: SimTime) -> Delivery {
        match &mut self.transport {
            Some(t) => {
                let report = t.uplink(&mut self.network, client, bytes, now);
                if report.delivered() {
                    self.ledger.record_uplink(client, bytes);
                    if report.wasted_bytes > 0 {
                        self.ledger
                            .record_retransmission(client, report.wasted_bytes as usize);
                    }
                    self.ledger
                        .record_control(client, report.control_bytes as usize);
                } else {
                    self.ledger
                        .record_retransmission(client, report.payload_bytes as usize);
                }
                Delivery {
                    arrival: report.arrival,
                    sender_done: report.sender_done,
                }
            }
            None => {
                let up = self.network.uplink_transfer(client, bytes, now);
                if up.arrival().is_some() {
                    self.ledger.record_uplink(client, bytes);
                }
                Delivery {
                    arrival: up.arrival(),
                    sender_done: now + SimTime::from_seconds(1.0),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adafl_netsim::{LinkProfile, LinkSpec, LinkTrace};

    fn lossless_io(clients: usize) -> RoundIo {
        let network = ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); clients],
            7,
        );
        RoundIo::new(network, clients)
    }

    fn lossy_io(clients: usize) -> RoundIo {
        let b = LinkProfile::Broadband.spec();
        let spec = LinkSpec::new(
            b.uplink_bandwidth(),
            b.downlink_bandwidth(),
            b.uplink_latency(),
            b.downlink_latency(),
            1.0,
        );
        let network = ClientNetwork::new(vec![LinkTrace::constant(spec); clients], 7);
        RoundIo::new(network, clients)
    }

    #[test]
    fn delivered_datagrams_charge_both_directions() {
        let mut io = lossless_io(2);
        let d = io.downlink(0, 100, SimTime::ZERO, false);
        assert!(d.arrival.is_some());
        let u = io.uplink(1, 50, SimTime::ZERO);
        assert!(u.arrival.is_some());
        assert_eq!(io.ledger().downlink_bytes(), 100);
        assert_eq!(io.ledger().uplink_bytes(), 50);
    }

    #[test]
    fn lost_sync_broadcast_is_still_charged_but_async_is_not() {
        let mut io = lossy_io(1);
        let d = io.downlink(0, 100, SimTime::ZERO, true);
        assert!(d.arrival.is_none());
        assert_eq!(io.ledger().downlink_bytes(), 100, "sync rule: server paid");

        let mut io = lossy_io(1);
        let d = io.downlink(0, 100, SimTime::ZERO, false);
        assert!(d.arrival.is_none());
        assert_eq!(
            io.ledger().downlink_bytes(),
            0,
            "async rule: nothing charged"
        );
    }

    #[test]
    fn lost_uplink_is_never_charged() {
        let mut io = lossy_io(1);
        let u = io.uplink(0, 80, SimTime::ZERO);
        assert!(u.arrival.is_none());
        assert_eq!(io.ledger().uplink_bytes(), 0);
        // Fire-and-forget loss discovery point: send time + 1 s.
        assert!((u.sender_done.seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uplink_update_charges_exactly_the_encoded_bytes() {
        let mut io = lossless_io(1);
        let payload = UpdatePayload::dense(vec![0.5; 10]);
        let u = io.uplink_update(0, &payload, SimTime::ZERO);
        assert!(u.arrival.is_some());
        assert_eq!(io.ledger().uplink_bytes() as usize, payload.encode().len());
    }

    #[test]
    fn reliable_transport_charges_control_and_retransmissions() {
        let mut io = lossless_io(1);
        io.set_retry_policy(ReliablePolicy::default(), 3, adafl_telemetry::noop());
        let u = io.uplink(0, 200, SimTime::ZERO);
        assert!(u.arrival.is_some());
        assert_eq!(io.ledger().uplink_bytes(), 200);
        assert!(io.ledger().control_bytes() > 0, "ACK frames are charged");

        let mut io = lossy_io(1);
        io.set_retry_policy(ReliablePolicy::default(), 3, adafl_telemetry::noop());
        let u = io.uplink(0, 200, SimTime::ZERO);
        assert!(u.arrival.is_none());
        assert_eq!(io.ledger().uplink_bytes(), 0);
        // Every attempt of a failed transfer is charged as waste (the
        // default policy retries the full payload each time).
        let wasted = io.ledger().retransmission_bytes();
        assert!(wasted >= 200, "waste covers at least one attempt: {wasted}");
        assert_eq!(wasted % 200, 0, "waste is whole payloads: {wasted}");
    }
}
