//! Transport + ledger accounting for the round runtime.
//!
//! [`RoundIo`] owns the simulated network, the optional reliable-transport
//! layer and the communication ledger, and centralises the charging rules
//! every engine previously duplicated:
//!
//! * **Reliable transport** (both directions): a delivered transfer is
//!   charged its payload on the direction counter, wasted (retransmitted)
//!   bytes on the retransmission counter and ACK/NACK frames on the
//!   control counter; a transfer that exhausts its retries charges the
//!   whole payload as retransmission waste and nothing else.
//! * **Fire-and-forget uplink**: charged only when the datagram arrives.
//! * **Fire-and-forget downlink**: the *synchronous* protocol charges the
//!   broadcast unconditionally (the server transmits whether or not the
//!   client hears it), while the *asynchronous* protocol charges only on
//!   delivery — callers pick via `charge_lost_send`. This asymmetry is
//!   pinned by the golden traces and documented by the ledger-audit tests.
//! * **Mesh relays**: after every transfer, relay bytes the mesh
//!   accumulated (hops beyond the sender's own first hop, across all
//!   retransmission attempts) are charged via
//!   [`CommunicationLedger::record_relay`]. Stars accumulate none, so
//!   star ledgers are unchanged byte for byte.

use super::payload::UpdatePayload;
use crate::faults::{attack_payload, corrupt_payload, FaultKind};
use crate::ledger::CommunicationLedger;
use crate::pool::WorkerPool;
use adafl_compression::DecodeError;
use adafl_netsim::{FleetNetwork, ReliablePolicy, ReliableTransfer, SimTime};
use adafl_telemetry::SharedRecorder;

/// One client's prepared uplink before the wire-level fault transforms:
/// the encoded payload plus the attack/corruption the fault plan assigns.
#[derive(Debug)]
pub struct UplinkFrame {
    /// The payload as the compression policy produced it.
    pub payload: UpdatePayload,
    /// Byzantine attack rewriting the encoded bytes, with its collusion
    /// seed, when the client is an attacker.
    pub attack: Option<(FaultKind, u64)>,
    /// Transit bit-flip seed when the update is corrupted in flight.
    pub corrupt: Option<u64>,
}

/// Outcome of [`process_uplink_frames`] for one frame, in submission order.
#[derive(Debug)]
pub struct ProcessedFrame {
    /// The payload after any attack and corruption transforms.
    pub payload: UpdatePayload,
    /// The attack that ran, for telemetry.
    pub attacked: Option<FaultKind>,
    /// Whether a corruption transform ran, for telemetry.
    pub corrupted: bool,
    /// Set when corruption broke the frame so the decoder rejects it.
    pub decode_error: Option<DecodeError>,
}

/// Applies each frame's attack and corruption transforms — the per-client
/// codec encode/decode work of the uplink path — across the worker pool.
///
/// Every frame is processed independently by a pure function of its own
/// bytes, and [`WorkerPool::scope_run`] returns results in submission
/// order, so the output is byte-identical at any pool width (a
/// single-thread pool runs the same code inline).
pub fn process_uplink_frames(pool: &WorkerPool, frames: Vec<UplinkFrame>) -> Vec<ProcessedFrame> {
    let jobs: Vec<Box<dyn FnOnce() -> ProcessedFrame + Send>> = frames
        .into_iter()
        .map(|mut frame| {
            Box::new(move || {
                let attacked = frame.attack.map(|(kind, seed)| {
                    attack_payload(&mut frame.payload, kind, seed);
                    kind
                });
                let mut corrupted = false;
                let mut decode_error = None;
                if let Some(seed) = frame.corrupt {
                    corrupted = true;
                    decode_error = corrupt_payload(&mut frame.payload, seed).err();
                }
                ProcessedFrame {
                    payload: frame.payload,
                    attacked,
                    corrupted,
                    decode_error,
                }
            }) as Box<_>
        })
        .collect();
    pool.scope_run(jobs)
}

/// Outcome of driving one transfer through [`RoundIo`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// When the payload reached the receiver; `None` when it was lost.
    pub arrival: Option<SimTime>,
    /// When the sender learned the transfer's fate — the resync point for
    /// lost transfers (send time + 1 s for fire-and-forget datagrams).
    pub sender_done: SimTime,
}

/// The runtime's communication plane: network, optional retry transport
/// and the byte ledger, with one charging implementation shared by every
/// protocol flavour.
#[derive(Debug)]
pub struct RoundIo {
    network: FleetNetwork,
    ledger: CommunicationLedger,
    transport: Option<ReliableTransfer>,
}

impl RoundIo {
    /// Wraps a network (star or mesh) and a fresh ledger; fire-and-forget
    /// until [`RoundIo::set_retry_policy`] installs reliable transport.
    pub fn new(network: impl Into<FleetNetwork>, clients: usize) -> Self {
        RoundIo {
            network: network.into(),
            ledger: CommunicationLedger::new(clients),
            transport: None,
        }
    }

    /// The cumulative ledger.
    pub fn ledger(&self) -> &CommunicationLedger {
        &self.ledger
    }

    /// Mutable ledger access, for control-plane charges (digests, score
    /// reports) owned by selection policies.
    pub fn ledger_mut(&mut self) -> &mut CommunicationLedger {
        &mut self.ledger
    }

    /// The simulated network (e.g. for [`FleetNetwork::link_at`] probes).
    pub fn network(&self) -> &FleetNetwork {
        &self.network
    }

    /// Drains relay bytes the mesh accumulated for the transfer that just
    /// ran — including every retransmission attempt the reliable
    /// transport made — and charges them to `client`. A star never
    /// accumulates any, so this is a no-op there and the ledger stays
    /// byte-identical to the pre-mesh accounting.
    fn charge_relays(&mut self, client: usize) {
        let relayed = self.network.take_relay_bytes();
        if relayed > 0 {
            self.ledger.record_relay(client, relayed as usize);
        }
    }

    /// Wires a recorder into the network and any installed transport.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.network.set_recorder(recorder.clone());
        if let Some(t) = &mut self.transport {
            t.set_recorder(recorder);
        }
    }

    /// Installs reliable transport with the given policy, seed and
    /// recorder; every subsequent transfer runs through it.
    pub fn set_retry_policy(
        &mut self,
        policy: ReliablePolicy,
        seed: u64,
        recorder: SharedRecorder,
    ) {
        let mut t = ReliableTransfer::new(policy, seed);
        t.set_recorder(recorder);
        self.transport = Some(t);
    }

    /// Server→client transfer. `charge_lost_send` selects the sync
    /// broadcast rule (charge the payload even when the datagram is lost)
    /// over the async rule (charge only on delivery); reliable transport
    /// ignores the flag and always applies its own accounting.
    pub fn downlink(
        &mut self,
        client: usize,
        bytes: usize,
        now: SimTime,
        charge_lost_send: bool,
    ) -> Delivery {
        let delivery = match &mut self.transport {
            Some(t) => {
                let report = t.downlink(&mut self.network, client, bytes, now);
                if report.delivered() {
                    self.ledger.record_downlink(client, bytes);
                    if report.wasted_bytes > 0 {
                        self.ledger
                            .record_retransmission(client, report.wasted_bytes as usize);
                    }
                    self.ledger
                        .record_control(client, report.control_bytes as usize);
                } else {
                    self.ledger
                        .record_retransmission(client, report.payload_bytes as usize);
                }
                Delivery {
                    arrival: report.arrival,
                    sender_done: report.sender_done,
                }
            }
            None => {
                let down = self.network.downlink_transfer(client, bytes, now);
                if charge_lost_send || down.arrival().is_some() {
                    self.ledger.record_downlink(client, bytes);
                }
                Delivery {
                    arrival: down.arrival(),
                    sender_done: now + SimTime::from_seconds(1.0),
                }
            }
        };
        self.charge_relays(client);
        delivery
    }

    /// Client→server transfer of one update payload. The ledger charge is
    /// the payload's `encoded_len()` — the codec, not a size formula, is
    /// the accounting authority.
    pub fn uplink_update(
        &mut self,
        client: usize,
        payload: &UpdatePayload,
        now: SimTime,
    ) -> Delivery {
        self.uplink(client, payload.encoded_len(), now)
    }

    /// Client→server transfer; fire-and-forget charges only on delivery.
    pub fn uplink(&mut self, client: usize, bytes: usize, now: SimTime) -> Delivery {
        let delivery = match &mut self.transport {
            Some(t) => {
                let report = t.uplink(&mut self.network, client, bytes, now);
                if report.delivered() {
                    self.ledger.record_uplink(client, bytes);
                    if report.wasted_bytes > 0 {
                        self.ledger
                            .record_retransmission(client, report.wasted_bytes as usize);
                    }
                    self.ledger
                        .record_control(client, report.control_bytes as usize);
                } else {
                    self.ledger
                        .record_retransmission(client, report.payload_bytes as usize);
                }
                Delivery {
                    arrival: report.arrival,
                    sender_done: report.sender_done,
                }
            }
            None => {
                let up = self.network.uplink_transfer(client, bytes, now);
                if up.arrival().is_some() {
                    self.ledger.record_uplink(client, bytes);
                }
                Delivery {
                    arrival: up.arrival(),
                    sender_done: now + SimTime::from_seconds(1.0),
                }
            }
        };
        self.charge_relays(client);
        delivery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adafl_netsim::graph::{NodeRole, Topology};
    use adafl_netsim::{
        ClientNetwork, CostAwareDijkstra, LinkProfile, LinkSpec, LinkTrace, MeshLayout,
    };

    fn lossless_io(clients: usize) -> RoundIo {
        let network = ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); clients],
            7,
        );
        RoundIo::new(network, clients)
    }

    fn lossy_io(clients: usize) -> RoundIo {
        let b = LinkProfile::Broadband.spec();
        let spec = LinkSpec::new(
            b.uplink_bandwidth(),
            b.downlink_bandwidth(),
            b.uplink_latency(),
            b.downlink_latency(),
            1.0,
        );
        let network = ClientNetwork::new(vec![LinkTrace::constant(spec); clients], 7);
        RoundIo::new(network, clients)
    }

    #[test]
    fn delivered_datagrams_charge_both_directions() {
        let mut io = lossless_io(2);
        let d = io.downlink(0, 100, SimTime::ZERO, false);
        assert!(d.arrival.is_some());
        let u = io.uplink(1, 50, SimTime::ZERO);
        assert!(u.arrival.is_some());
        assert_eq!(io.ledger().downlink_bytes(), 100);
        assert_eq!(io.ledger().uplink_bytes(), 50);
    }

    #[test]
    fn lost_sync_broadcast_is_still_charged_but_async_is_not() {
        let mut io = lossy_io(1);
        let d = io.downlink(0, 100, SimTime::ZERO, true);
        assert!(d.arrival.is_none());
        assert_eq!(io.ledger().downlink_bytes(), 100, "sync rule: server paid");

        let mut io = lossy_io(1);
        let d = io.downlink(0, 100, SimTime::ZERO, false);
        assert!(d.arrival.is_none());
        assert_eq!(
            io.ledger().downlink_bytes(),
            0,
            "async rule: nothing charged"
        );
    }

    #[test]
    fn lost_uplink_is_never_charged() {
        let mut io = lossy_io(1);
        let u = io.uplink(0, 80, SimTime::ZERO);
        assert!(u.arrival.is_none());
        assert_eq!(io.ledger().uplink_bytes(), 0);
        // Fire-and-forget loss discovery point: send time + 1 s.
        assert!((u.sender_done.seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uplink_update_charges_exactly_the_encoded_bytes() {
        let mut io = lossless_io(1);
        let payload = UpdatePayload::dense(vec![0.5; 10]);
        let u = io.uplink_update(0, &payload, SimTime::ZERO);
        assert!(u.arrival.is_some());
        assert_eq!(io.ledger().uplink_bytes() as usize, payload.encode().len());
    }

    /// client — relay — server chain behind a [`RoundIo`].
    fn mesh_io(drop_prob: f64) -> RoundIo {
        let mut topo = Topology::new();
        let server = topo.add_node(NodeRole::Server);
        let relay = topo.add_node(NodeRole::Relay);
        let client = topo.add_node(NodeRole::Client);
        let spec = LinkSpec::new(1000.0, 1000.0, 0.1, 0.1, drop_prob);
        topo.add_duplex_link(client, relay, spec);
        topo.add_duplex_link(relay, server, spec);
        let layout = MeshLayout {
            topology: topo,
            clients: vec![client],
            server,
        };
        RoundIo::new(
            layout.into_network(Box::new(CostAwareDijkstra::default()), 7),
            1,
        )
    }

    #[test]
    fn mesh_transfers_charge_relay_hops() {
        let mut io = mesh_io(0.0);
        let u = io.uplink(0, 1000, SimTime::ZERO);
        assert!(u.arrival.is_some());
        let d = io.downlink(0, 500, SimTime::ZERO, false);
        assert!(d.arrival.is_some());
        // Two hops each way: one relay hop per transfer.
        assert_eq!(io.ledger().uplink_bytes(), 1000);
        assert_eq!(io.ledger().downlink_bytes(), 500);
        assert_eq!(io.ledger().relay_bytes(), 1500);
        assert_eq!(io.ledger().relay_messages(), 2);
        assert_eq!(io.ledger().total_bytes_with_control(), 3000);
    }

    #[test]
    fn mesh_relay_charges_cover_reliable_retries() {
        // Lossy mesh + retry transport: every attempt that cleared the
        // first hop also cost the relay a transmission, and the ledger
        // must see all of them, not just the final successful attempt's.
        let mut io = mesh_io(0.3);
        io.set_retry_policy(ReliablePolicy::default(), 3, adafl_telemetry::noop());
        let mut attempts_with_relay = 0;
        for i in 0..50 {
            let before = io.ledger().relay_bytes();
            io.uplink(0, 100, SimTime::from_seconds(i as f64 * 100.0));
            attempts_with_relay += ((io.ledger().relay_bytes() - before) / 100) as usize;
        }
        let delivered = io.ledger().uplink_updates() as usize;
        assert!(
            attempts_with_relay >= delivered,
            "relay hops ({attempts_with_relay}) must cover at least every \
             delivered transfer ({delivered})"
        );
        assert!(io.ledger().relay_bytes() > 0);
    }

    #[test]
    fn star_ledgers_never_record_relay_traffic() {
        let mut io = lossless_io(1);
        io.uplink(0, 1000, SimTime::ZERO);
        io.downlink(0, 1000, SimTime::ZERO, true);
        assert_eq!(io.ledger().relay_bytes(), 0);
        assert_eq!(io.ledger().relay_messages(), 0);
    }

    #[test]
    fn reliable_transport_charges_control_and_retransmissions() {
        let mut io = lossless_io(1);
        io.set_retry_policy(ReliablePolicy::default(), 3, adafl_telemetry::noop());
        let u = io.uplink(0, 200, SimTime::ZERO);
        assert!(u.arrival.is_some());
        assert_eq!(io.ledger().uplink_bytes(), 200);
        assert!(io.ledger().control_bytes() > 0, "ACK frames are charged");

        let mut io = lossy_io(1);
        io.set_retry_policy(ReliablePolicy::default(), 3, adafl_telemetry::noop());
        let u = io.uplink(0, 200, SimTime::ZERO);
        assert!(u.arrival.is_none());
        assert_eq!(io.ledger().uplink_bytes(), 0);
        // Every attempt of a failed transfer is charged as waste (the
        // default policy retries the full payload each time).
        let wasted = io.ledger().retransmission_bytes();
        assert!(wasted >= 200, "waste covers at least one attempt: {wasted}");
        assert_eq!(wasted % 200, 0, "waste is whole payloads: {wasted}");
    }
}
