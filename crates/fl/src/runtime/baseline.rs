//! Baseline policy bundle: the pre-AdaFL protocol flavours expressed as
//! runtime policies — uniform random selection, static client-side
//! compression, and adapters plugging the existing
//! [`SyncStrategy`]/[`AsyncStrategy`] traits into the runtime's
//! aggregation axis.

use super::payload::{RoundUpdate, UpdatePayload};
use super::policy::{
    AggregationPolicy, AsyncApplyCtx, AsyncDownlinkCtx, AsyncPolicy, AsyncUploadCtx,
    CompressionPolicy, SelectionCtx, SelectionPolicy, SyncUploadCtx,
};
use crate::client::LocalOutcome;
use crate::r#async::AsyncStrategy;
use crate::sync::{ClientUpdate, CompressorState, StaticCompression, SyncStrategy};
use adafl_compression::dense_wire_size;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Uniform random-fraction selection: shuffle, keep `⌈r_p·N⌉`, sort.
#[derive(Debug)]
pub struct RandomSelection {
    rng: StdRng,
}

impl RandomSelection {
    /// Seeds the selection RNG (the engine uses `seed_for("selection")`).
    pub fn new(seed: u64) -> Self {
        RandomSelection {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SelectionPolicy for RandomSelection {
    fn select(&mut self, ctx: &mut SelectionCtx<'_>) -> Vec<usize> {
        let k = ctx.config.participants_per_round();
        let mut ids: Vec<usize> = (0..ctx.config.clients).collect();
        ids.shuffle(&mut self.rng);
        ids.truncate(k);
        ids.sort_unstable();
        ids
    }
}

/// Static client-side compression (identity, top-k, QSGD, TernGrad): the
/// fixed model-level techniques from the paper's related work. State does
/// not advance for dropped updates.
#[derive(Debug)]
pub struct StaticCompressionPolicy {
    scheme: StaticCompression,
    base_seed: u64,
    states: Vec<CompressorState>,
}

impl StaticCompressionPolicy {
    /// Defers state construction to [`CompressionPolicy::init`]; each
    /// client's compressor is seeded `base_seed ^ client` exactly as the
    /// legacy engine did (the engine passes `seed_for("compression")`).
    pub fn new(scheme: StaticCompression, base_seed: u64) -> Self {
        StaticCompressionPolicy {
            scheme,
            base_seed,
            states: Vec::new(),
        }
    }
}

impl CompressionPolicy for StaticCompressionPolicy {
    fn init(&mut self, dim: usize, clients: usize) {
        self.states = (0..clients)
            .map(|c| CompressorState::new(self.scheme, dim, self.base_seed ^ c as u64))
            .collect();
    }

    fn prepare(&mut self, ctx: &SyncUploadCtx<'_>, delta: &[f32]) -> Option<UpdatePayload> {
        if !ctx.delivered {
            // Static schemes never touch compressor state for a dropped
            // update (error feedback accumulates only on real sends).
            return None;
        }
        let payload = self.states[ctx.client].compress(delta);
        if ctx.tracing {
            adafl_compression::record_compression(
                ctx.recorder,
                self.scheme.label(),
                ctx.dense_bytes,
                payload.encoded_len(),
            );
        }
        Some(payload)
    }
}

/// Adapts a [`SyncStrategy`] (FedAvg/FedAdam/FedProx/SCAFFOLD) to the
/// runtime's aggregation axis. Baseline strategies train with the
/// per-step gradient hook installed and honour the round deadline.
#[derive(Debug)]
pub struct StrategyAggregation {
    strategy: Box<dyn SyncStrategy>,
}

impl StrategyAggregation {
    /// Wraps the boxed strategy.
    pub fn new(strategy: Box<dyn SyncStrategy>) -> Self {
        StrategyAggregation { strategy }
    }
}

impl AggregationPolicy for StrategyAggregation {
    fn label(&self) -> &str {
        self.strategy.name()
    }

    fn init(&mut self, dim: usize, clients: usize) {
        self.strategy.init(dim, clients);
    }

    fn uses_gradient_hook(&self) -> bool {
        true
    }

    fn gradient_hook(&self, client: usize, grad: &mut [f32], params: &[f32], global: &[f32]) {
        self.strategy.gradient_hook(client, grad, params, global);
    }

    fn after_local_round(&mut self, client: usize, delta: &[f32], steps: usize, lr: f32) {
        self.strategy.after_local_round(client, delta, steps, lr);
    }

    fn aggregate(
        &mut self,
        global: &mut [f32],
        _global_gradient: &mut Vec<f32>,
        updates: Vec<RoundUpdate>,
    ) {
        let updates: Vec<ClientUpdate> = updates
            .into_iter()
            .map(|u| ClientUpdate {
                client: u.client,
                delta: u.payload.into_dense(),
                weight: u.weight,
            })
            .collect();
        self.strategy.aggregate(global, &updates);
    }

    fn supports_streaming(&self) -> bool {
        // FedAvg's aggregate is exactly the weighted mean the default
        // fold/finish compute; the stateful strategies (FedAdam's server
        // optimiser, SCAFFOLD's control variates) need the buffered path.
        self.strategy.name() == "fedavg"
    }
}

/// Adapts an [`AsyncStrategy`] (FedAsync/FedBuff) to the runtime's async
/// policy axis: dense downloads, dense uploads, no utility gate.
#[derive(Debug)]
pub struct StrategyAsyncPolicy {
    strategy: Box<dyn AsyncStrategy>,
}

impl StrategyAsyncPolicy {
    /// Wraps the boxed strategy.
    pub fn new(strategy: Box<dyn AsyncStrategy>) -> Self {
        StrategyAsyncPolicy { strategy }
    }
}

impl AsyncPolicy for StrategyAsyncPolicy {
    fn label(&self) -> &str {
        self.strategy.name()
    }

    fn init(&mut self, dim: usize) {
        self.strategy.init(dim);
    }

    fn downlink_bytes(&mut self, ctx: &AsyncDownlinkCtx<'_>) -> usize {
        dense_wire_size(ctx.dense_len)
    }

    fn prepare_upload(
        &mut self,
        _ctx: &mut AsyncUploadCtx<'_>,
        outcome: LocalOutcome,
    ) -> Option<UpdatePayload> {
        Some(UpdatePayload::dense(outcome.delta))
    }

    fn apply(
        &mut self,
        ctx: &mut AsyncApplyCtx<'_>,
        payload: UpdatePayload,
        snapshot: &[f32],
        weight: f32,
        staleness: u64,
    ) -> bool {
        let UpdatePayload::Dense(delta) = payload else {
            unreachable!("baseline async strategies upload dense deltas");
        };
        self.strategy
            .on_update(ctx.global, delta.values(), snapshot, weight, staleness)
    }
}
