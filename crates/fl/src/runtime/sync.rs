//! The shared synchronous round runtime.
//!
//! Owns everything cross-cutting in a synchronous round — crash
//! checkpoints, pool-dispatched local training with the ready-mask,
//! transport (plain or reliable), fault injection, the defensive gate,
//! ledger charging, telemetry spans and history recording — and delegates
//! the three flavour-specific decisions to a [`SyncPolicies`] bundle.

use super::io::{process_uplink_frames, RoundIo, UplinkFrame};
use super::payload::{RoundUpdate, UpdatePayload};
use super::policy::{
    AggregationPolicy, CompressionPolicy, SelectionCtx, SelectionPolicy, SyncUploadCtx,
};
use super::sink::{SinkMode, UpdateSink};
use crate::checkpoint::Checkpoint;
use crate::client::{evaluate_model, FlClient, LocalOutcome};
use crate::compute::ComputeModel;
use crate::config::FlConfig;
use crate::defense::{DefenseConfig, DefenseGate, RejectReason, Sanitized};
use crate::faults::{FaultKind, FaultPlan};
use crate::fleet::{ClientPool, Fleet, ShardSource};
use crate::history::{RoundRecord, RunHistory};
use crate::ledger::CommunicationLedger;
use crate::pool::WorkerPool;
use crate::robust::{RobustAggregator, RobustMethod, RobustStats};
use crate::submodel::{coverage_weighted_fold, CapacityPolicy};
use adafl_compression::{dense_wire_size, ViewDescriptor, WireCodec};
use adafl_data::Dataset;
use adafl_netsim::{FleetNetwork, ReliablePolicy, SimTime};
use adafl_nn::{ParamSegmentMap, SubView};
use adafl_telemetry::{names, EventRecord, SharedRecorder, SpanRecord};
use adafl_tensor::vecops;

/// The policy bundle specialising a [`SyncRuntime`] into one protocol
/// flavour.
#[derive(Debug)]
pub struct SyncPolicies {
    /// Who participates each round.
    pub selection: Box<dyn SelectionPolicy>,
    /// Wire form of each uplink.
    pub compression: Box<dyn CompressionPolicy>,
    /// How delivered updates fold into the global model.
    pub aggregation: Box<dyn AggregationPolicy>,
    /// Whether the server enforces `FlConfig::round_deadline` (§III
    /// max-wait policy); the AdaFL flavour waits for its whole cohort.
    pub enforce_deadline: bool,
}

/// Server-side state for heterogeneous-capacity (sub-view) rounds: the
/// tier-assignment policy plus the global model's parameter segment map
/// from which each round's [`SubView`]s are cut.
#[derive(Debug)]
struct CapacityState {
    policy: Box<dyn CapacityPolicy>,
    map: ParamSegmentMap,
}

/// Policy-driven synchronous round runtime. One round: select → broadcast
/// → local training → compress/uplink under faults → screen → aggregate;
/// Eq. 3 round time (the slowest delivered participant gates the round).
#[derive(Debug)]
pub struct SyncRuntime {
    config: FlConfig,
    clients: Fleet,
    global: Vec<f32>,
    global_model: adafl_nn::Model,
    /// Previous round's aggregated global delta (`ĝ`); stays zero unless
    /// the aggregation policy maintains it.
    global_gradient: Vec<f32>,
    test_set: Dataset,
    selection: Box<dyn SelectionPolicy>,
    compression: Box<dyn CompressionPolicy>,
    aggregation: Box<dyn AggregationPolicy>,
    enforce_deadline: bool,
    io: RoundIo,
    compute: ComputeModel,
    faults: FaultPlan,
    clock: SimTime,
    parallel: bool,
    recorder: SharedRecorder,
    defense: Option<DefenseGate>,
    robust: Option<RobustAggregator>,
    capacity: Option<CapacityState>,
    crash_checkpoints: Vec<Option<Checkpoint>>,
    pool: WorkerPool,
    /// Parity knob: when set, streaming-eligible rounds buffer the
    /// updates and replay the identical folds at round end instead of
    /// folding at arrival (see [`SinkMode::BufferedFold`]).
    buffered_fold: bool,
}

impl SyncRuntime {
    /// Assembles a runtime from explicit parts and a policy bundle.
    ///
    /// # Panics
    ///
    /// Panics when shard/network/compute/fault sizes disagree with
    /// `config.clients` or any shard is empty.
    pub fn new(
        config: FlConfig,
        shards: Vec<Dataset>,
        test_set: Dataset,
        network: impl Into<FleetNetwork>,
        compute: ComputeModel,
        faults: FaultPlan,
        policies: SyncPolicies,
    ) -> Self {
        assert_eq!(shards.len(), config.clients, "shard count mismatch");
        let clients = FlClient::fleet(
            &config.model,
            shards,
            config.learning_rate,
            config.momentum,
            config.batch_size,
            config.seed_for("model"),
        );
        Self::with_fleet(
            config,
            Fleet::Resident(clients),
            test_set,
            network.into(),
            compute,
            faults,
            policies,
        )
    }

    /// Assembles a runtime whose per-client state lives in a
    /// cohort-resident [`ClientPool`] over `source` instead of one live
    /// [`FlClient`] per simulated client — O(cohort × model) instead of
    /// O(clients × model) memory, the fleet-scale configuration.
    ///
    /// Pooled fleets have no per-client persistent state, so two
    /// combinations are rejected here: crash faults (their checkpoints
    /// snapshot a specific resident client) and — by documentation rather
    /// than assertion — selection policies that probe individual clients
    /// (the [`SelectionCtx::clients`] slice is empty in pooled mode).
    ///
    /// # Panics
    ///
    /// Panics when `source` disagrees with `config.clients`, any
    /// fleet-shaped input disagrees in size, or the fault plan contains
    /// crash faults.
    pub fn new_pooled(
        config: FlConfig,
        source: Box<dyn ShardSource>,
        test_set: Dataset,
        network: impl Into<FleetNetwork>,
        compute: ComputeModel,
        faults: FaultPlan,
        policies: SyncPolicies,
    ) -> Self {
        assert_eq!(
            source.clients(),
            config.clients,
            "shard source size mismatch"
        );
        for c in 0..config.clients {
            assert!(
                !matches!(faults.kind(c), FaultKind::Crash { .. }),
                "crash faults require a resident fleet (client {c} crashes)"
            );
        }
        let pool = ClientPool::new(
            config.model.clone(),
            source,
            config.learning_rate,
            config.momentum,
            config.batch_size,
            config.seed_for("model"),
        );
        Self::with_fleet(
            config,
            Fleet::Pooled(pool),
            test_set,
            network.into(),
            compute,
            faults,
            policies,
        )
    }

    fn with_fleet(
        config: FlConfig,
        clients: Fleet,
        test_set: Dataset,
        network: FleetNetwork,
        mut compute: ComputeModel,
        faults: FaultPlan,
        mut policies: SyncPolicies,
    ) -> Self {
        assert_eq!(network.len(), config.clients, "network size mismatch");
        assert_eq!(
            compute.clients(),
            config.clients,
            "compute model size mismatch"
        );
        assert_eq!(faults.clients(), config.clients, "fault plan size mismatch");
        let mut global_model = config.model.build(config.seed_for("model"));
        let global = global_model.params_flat();
        // Re-evaluate to ensure consistency between server copy and fleet.
        global_model.set_params_flat(&global);
        policies.aggregation.init(global.len(), config.clients);
        policies.compression.init(global.len(), config.clients);
        // Stale clients run slower.
        for c in 0..config.clients {
            let slow = faults.slowdown(c);
            if slow > 1.0 {
                compute.scale_client(c, slow);
            }
        }
        SyncRuntime {
            io: RoundIo::new(network, config.clients),
            global_gradient: vec![0.0; global.len()],
            parallel: true,
            recorder: adafl_telemetry::noop(),
            defense: None,
            robust: None,
            capacity: None,
            crash_checkpoints: vec![None; config.clients],
            pool: WorkerPool::from_env_or_default(),
            buffered_fold: false,
            selection: policies.selection,
            compression: policies.compression,
            aggregation: policies.aggregation,
            enforce_deadline: policies.enforce_deadline,
            config,
            clients,
            global,
            global_model,
            test_set,
            compute,
            faults,
            clock: SimTime::ZERO,
        }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// Enables or disables multi-threaded local training (on by default).
    /// Results are identical either way; this only affects wall-clock time.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Rebuilds the server worker pool with exactly `threads` workers
    /// (1 runs every pooled stage inline). Every pooled stage collects
    /// results in submission order, so histories, ledgers and traces are
    /// identical at any width; this only affects wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = WorkerPool::new(threads.max(1));
    }

    /// Replaces the compression policy (used by
    /// [`SyncEngine::set_compression`](crate::sync::SyncEngine::set_compression)).
    pub fn set_compression_policy(&mut self, mut policy: Box<dyn CompressionPolicy>) {
        policy.init(self.global.len(), self.config.clients);
        self.compression = policy;
    }

    /// Attaches a telemetry recorder, also wiring it into the simulated
    /// network so transfers are traced. Recording is strictly passive: it
    /// never touches the runtime's RNGs or the simulated clock, so traced
    /// and untraced runs produce identical histories.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.io.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Enables reliable transport: every broadcast and upload runs through
    /// a retry layer, and the ledger additionally charges retransmitted
    /// payload bytes and ACK control frames. Off by default.
    pub fn set_retry_policy(&mut self, policy: ReliablePolicy) {
        self.io.set_retry_policy(
            policy,
            self.config.seed_for("transport"),
            self.recorder.clone(),
        );
    }

    /// Enables the defensive aggregation gate: updates are scrubbed and
    /// screened before aggregation, and rounds below the configured
    /// quorum are skipped with state carried forward. Off by default.
    pub fn set_defense(&mut self, cfg: DefenseConfig) {
        self.defense = Some(DefenseGate::new(cfg));
    }

    /// Enables Byzantine-robust pre-aggregation: after defense screening
    /// and before the aggregation policy, the cohort is replaced by the
    /// robust estimate of [`RobustMethod`] (see [`crate::robust`]). Off
    /// by default — plain weighted-mean aggregation.
    ///
    /// # Panics
    ///
    /// Panics when the method's parameters are invalid
    /// (see [`RobustAggregator::new`]).
    pub fn set_robust(&mut self, method: RobustMethod) {
        self.robust = Some(RobustAggregator::new(method));
    }

    /// Enables heterogeneous-capacity training: each round the policy
    /// assigns every selected client a [`crate::submodel::CapacityTier`],
    /// the client receives only the matching parameter [`SubView`] (the
    /// downlink is charged at view size plus the descriptor header, not
    /// the full model), trains with gradients masked to the view, and
    /// uploads a view-local update wrapped in a sub-view payload. The
    /// server then aggregates with the coverage-weighted fold (each
    /// coordinate averaged over the clients whose view covers it) and
    /// maintains `ĝ` from that fold. Off by default — without this call
    /// the classic full-broadcast path is byte-identical to before this
    /// feature existed.
    ///
    /// Compose with stateless compression only: policies carrying
    /// per-client dimension-bound state (top-k error feedback, adaptive
    /// DGC) assume full-width deltas and will reject view-local lengths.
    /// The aggregation policy's `aggregate` is bypassed in favour of the
    /// coverage fold; its gradient hook and `after_local_round` (fed the
    /// densified delta) still run, so FedProx/SCAFFOLD-style local
    /// regularisation composes with capacity tiers.
    pub fn set_capacity(&mut self, policy: Box<dyn CapacityPolicy>) {
        let map = self.global_model.segment_map();
        self.capacity = Some(CapacityState { policy, map });
    }

    /// Parity knob for the streaming path: when enabled,
    /// streaming-eligible rounds buffer their updates and replay the
    /// identical fold calls at round end ([`SinkMode::BufferedFold`])
    /// instead of folding at arrival. Results are bitwise identical to
    /// streaming by construction; the `streaming_parity` test runs both
    /// and asserts exactly that. Off by default.
    pub fn set_buffered_fold(&mut self, on: bool) {
        self.buffered_fold = on;
    }

    /// Whether this fleet's per-client state is cohort-pooled.
    pub fn is_pooled(&self) -> bool {
        self.clients.is_pooled()
    }

    /// Live [`FlClient`]s currently resident — the whole fleet for
    /// resident storage, the peak cohort seen so far for pooled storage.
    pub fn resident_clients(&self) -> usize {
        self.clients.resident_count()
    }

    /// Which sink behaviour rounds currently use. Streaming is strictly
    /// opt-in: it requires cohort scheduling (`cohort_size`), a policy
    /// that declares streaming support, and none of the stages that need
    /// the whole cohort side by side (defense gate, robust
    /// pre-aggregation, capacity tiers). Everything else stays on the
    /// legacy buffer-everything path, byte-identical to before the sink
    /// existed.
    pub fn sink_mode(&self) -> SinkMode {
        let eligible = self.config.cohort_size.is_some()
            && self.aggregation.supports_streaming()
            && self.defense.is_none()
            && self.robust.is_none()
            && self.capacity.is_none();
        if !eligible {
            SinkMode::Legacy
        } else if self.buffered_fold {
            SinkMode::BufferedFold
        } else {
            SinkMode::Streaming
        }
    }

    /// The communication ledger (cumulative).
    pub fn ledger(&self) -> &CommunicationLedger {
        self.io.ledger()
    }

    /// Current global parameters.
    pub fn global_params(&self) -> &[f32] {
        &self.global
    }

    /// Current global-gradient digest (`ĝ`); all zeros for flavours that
    /// do not maintain it.
    pub fn global_gradient(&self) -> &[f32] {
        &self.global_gradient
    }

    /// Installs global parameters (e.g. restored from a [`Checkpoint`])
    /// before running.
    ///
    /// # Panics
    ///
    /// Panics when `params.len()` differs from the model's parameter count.
    pub fn set_global_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.global.len(),
            "flat parameter length mismatch"
        );
        self.global.copy_from_slice(params);
        self.global_model.set_params_flat(params);
    }

    /// Current simulated time.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Runs all configured rounds, returning the evaluation history.
    pub fn run(&mut self) -> RunHistory {
        let mut history = RunHistory::new(self.aggregation.label());
        for round in 0..self.config.rounds {
            let contributors = self.run_round(round);
            self.global_model.set_params_flat(&self.global);
            let (accuracy, loss) = evaluate_model(&mut self.global_model, &self.test_set);
            history.push(RoundRecord {
                round,
                sim_time: self.clock,
                accuracy,
                loss,
                uplink_bytes: self.io.ledger().uplink_bytes(),
                uplink_updates: self.io.ledger().uplink_updates(),
                contributors,
            });
        }
        history
    }

    /// Runs one round; returns the number of updates that reached the
    /// server (post-screening).
    pub fn run_round(&mut self, round: usize) -> usize {
        self.handle_crashes(round);
        // The selection RNG is consumed identically with or without crash
        // faults; crashed clients are filtered after sampling.
        let participants: Vec<usize> = {
            let mut ctx = SelectionCtx {
                round,
                clock: self.clock,
                config: &self.config,
                clients: self.clients.resident_mut(),
                io: &mut self.io,
                global: &self.global,
                global_gradient: &self.global_gradient,
                recorder: &self.recorder,
            };
            self.selection.select(&mut ctx)
        }
        .into_iter()
        .filter(|&c| !self.faults.crashed(c, round))
        .collect();

        // Heterogeneous capacity: assign each participant a tier and cut
        // its parameter sub-view for this round, indexed by cohort rank.
        // `None` leaves the classic full-broadcast path byte-identical.
        let cap_round: Option<Vec<(SubView, ViewDescriptor)>> = self.capacity.as_mut().map(|cap| {
            participants
                .iter()
                .map(|&c| {
                    let tier = cap.policy.assign(round as u64, c);
                    let view = tier.view(&cap.map, round as u64);
                    let desc = ViewDescriptor::new(view.dense_len(), view.segments().to_vec());
                    (view, desc)
                })
                .collect()
        });

        let dense_bytes = dense_wire_size(self.global.len());
        let mut round_time = SimTime::ZERO;
        let mut deadline_hit = false;
        let tracing = self.recorder.enabled();
        let round_start = self.clock;
        let wall_start = self.recorder.wall_micros();

        // The round's update sink: legacy rounds buffer everything for the
        // screen → robust → aggregate pipeline; streaming-eligible rounds
        // fold each update into edge accumulators the moment it arrives,
        // so server memory stays O(model × edges) regardless of fleet
        // size.
        let mut sink = UpdateSink::new(
            self.sink_mode(),
            self.global.len(),
            self.config.edge_aggregators,
        );

        let effective_lr = self.config.learning_rate / (1.0 - self.config.momentum);
        // Scratch for densifying view-local deltas (capacity mode only):
        // stateful aggregation policies see full-width deltas with zeros
        // outside the client's view.
        let mut densified: Vec<f32> = Vec::new();

        // Cohort scheduling: participants run through phases 1–3 in
        // contiguous chunks of `cohort_size` — one chunk covering everyone
        // when unset, which is byte-identical to the pre-cohort monolithic
        // loop. Ranks stay global across chunks so capacity views and
        // upload contexts see the same cohort coordinates either way.
        let chunk_size = self.config.cohort_size.unwrap_or(participants.len()).max(1);
        let mut chunk_start = 0;
        while chunk_start < participants.len() {
            let chunk_end = (chunk_start + chunk_size).min(participants.len());
            let chunk = &participants[chunk_start..chunk_end];

            // Phase 1 — broadcast the global model; clients whose
            // broadcast is lost sit the round out (unless reliable
            // transport saves it). The server pays for the broadcast
            // whether or not it lands.
            let mut ready: Vec<(usize, usize, SimTime)> = Vec::with_capacity(chunk.len());
            for (offset, &c) in chunk.iter().enumerate() {
                let rank = chunk_start + offset;
                let bytes = match &cap_round {
                    // A tiered client receives only its view's values plus
                    // the descriptor naming them — never the full model.
                    Some(views) => {
                        let (view, desc) = &views[rank];
                        dense_wire_size(view.view_len()) + desc.encoded_len()
                    }
                    None => dense_bytes,
                };
                let delivery = self.io.downlink(c, bytes, self.clock, true);
                if let Some(t) = delivery.arrival {
                    ready.push((rank, c, t));
                }
            }

            // Phase 2 — local training, in parallel when enabled. Clients
            // are independent, so parallel execution is bit-identical to
            // sequential: outcomes come back in cohort order.
            let outcomes = self.train_ready(round, &ready, cap_round.as_deref());

            // Phase 3 — compression, fault gating, uplink and deadline
            // policy. Split into three passes so the per-frame codec work
            // fans across the worker pool without disturbing anything
            // order-sensitive:
            //
            //   A. policy bookkeeping and wire-form preparation, in cohort
            //      order (aggregation and compression policies are
            //      stateful);
            //   B. attack/corruption transforms on the encoded bytes —
            //      pure per-frame functions run across the pool, results
            //      collected in submission order;
            //   C. telemetry, uplink charging and deadline policy, in
            //      cohort order (the network RNG and the event stream are
            //      both order-pinned).
            //
            // Streamed telemetry (spans/events) is emitted only in pass C,
            // in the same per-client order as a single loop would; pass A
            // touches only aggregate counters/histograms, whose export is
            // order-free. Histories, ledgers and traces are byte-identical
            // at any pool width.
            let mut frames: Vec<UplinkFrame> = Vec::with_capacity(ready.len());
            let mut prepared: Vec<(SimTime, bool, bool)> = Vec::with_capacity(ready.len());
            for (&(rank, c, downlink_done), outcome) in ready.iter().zip(&outcomes) {
                let delta_full: &[f32] = match &cap_round {
                    Some(views) => {
                        densified.clear();
                        densified.resize(self.global.len(), 0.0);
                        views[rank].0.scatter(&outcome.delta, &mut densified);
                        &densified
                    }
                    None => &outcome.delta,
                };
                self.aggregation
                    .after_local_round(c, delta_full, outcome.steps, effective_lr);

                // Stale clients' slowdowns were folded into the compute
                // model at construction.
                let train_done =
                    downlink_done + self.compute.training_time(c, self.config.local_steps);
                let delivered = self.faults.update_delivered(c, round);
                let payload = {
                    let ctx = SyncUploadCtx {
                        round,
                        client: c,
                        rank,
                        cohort: participants.len(),
                        // Compression ratios are relative to what this
                        // client would send uncompressed: its view, not
                        // the model.
                        dense_bytes: match &cap_round {
                            Some(views) => dense_wire_size(views[rank].0.view_len()),
                            None => dense_bytes,
                        },
                        delivered,
                        tracing,
                        recorder: &self.recorder,
                    };
                    self.compression.prepare(&ctx, &outcome.delta)
                };
                let payload = payload.map(|inner| match &cap_round {
                    Some(views) => UpdatePayload::sub_view(views[rank].1.clone(), inner),
                    None => inner,
                });
                let has_frame = payload.is_some();
                if let Some(payload) = payload {
                    frames.push(UplinkFrame {
                        payload,
                        // Byzantine clients poison the *encoded bytes*
                        // before upload: well-formed frames carrying
                        // adversarial values, invisible to the decoder —
                        // stopping them is the robust stage's job.
                        attack: self
                            .faults
                            .attacks_update(c)
                            .map(|kind| (kind, self.faults.collusion_seed(round))),
                        // Corruption faults flip the update's *encoded
                        // bytes* in transit. Dense and sparse frames
                        // re-parse with poisoned values the defensive gate
                        // must catch; packed frames may stop parsing
                        // entirely, which the server counts as a decode
                        // rejection when the bytes arrive.
                        corrupt: self.faults.corrupts_update(c),
                    });
                }
                prepared.push((train_done, delivered, has_frame));
            }

            let mut processed = process_uplink_frames(&self.pool, frames).into_iter();

            for ((&(_, c, downlink_done), outcome), &(train_done, delivered, has_frame)) in
                ready.iter().zip(&outcomes).zip(&prepared)
            {
                if tracing {
                    self.recorder.span(
                        SpanRecord::new(
                            names::SPAN_CLIENT_COMPUTE,
                            downlink_done.seconds(),
                            train_done.seconds(),
                        )
                        .round(round)
                        .client(c)
                        .field("steps", outcome.steps),
                    );
                }
                if !has_frame {
                    debug_assert!(!delivered, "policies only drop undelivered updates");
                    if tracing {
                        self.recorder.counter_add(names::FL_DROPOUTS, 1);
                        self.recorder.event(
                            EventRecord::new(names::EVENT_DROPOUT, train_done.seconds())
                                .round(round)
                                .client(c),
                        );
                    }
                    continue;
                }
                let frame = processed
                    .next()
                    .expect("one processed frame per prepared frame");
                if let Some(kind) = frame.attacked {
                    if tracing {
                        self.recorder.counter_add(names::FL_ATTACKS, 1);
                        self.recorder.event(
                            EventRecord::new(names::EVENT_ATTACK, train_done.seconds())
                                .round(round)
                                .client(c)
                                .field("kind", kind.as_str()),
                        );
                    }
                }
                if frame.corrupted && tracing {
                    self.recorder.counter_add(names::FL_CORRUPTIONS, 1);
                    self.recorder.event(
                        EventRecord::new(names::EVENT_CORRUPTION, train_done.seconds())
                            .round(round)
                            .client(c),
                    );
                }
                let delivery = self.io.uplink_update(c, &frame.payload, train_done);
                match delivery.arrival {
                    Some(arrival) => {
                        let elapsed = arrival - self.clock;
                        if self.enforce_deadline {
                            if let Some(deadline) = self.config.round_deadline {
                                // §III max-wait-time policy: the server
                                // drops updates arriving after the
                                // deadline.
                                if elapsed.seconds() > deadline {
                                    deadline_hit = true;
                                    if tracing {
                                        self.recorder.counter_add(names::FL_DEADLINE_MISSES, 1);
                                        self.recorder.event(
                                            EventRecord::new(
                                                names::EVENT_DEADLINE_MISS,
                                                arrival.seconds(),
                                            )
                                            .round(round)
                                            .client(c)
                                            .field("elapsed_seconds", elapsed.seconds()),
                                        );
                                    }
                                    continue;
                                }
                            }
                        }
                        round_time = round_time.max(elapsed);
                        if let Some(err) = frame.decode_error {
                            // The bytes travelled, were charged and gated
                            // the round clock, but the server cannot parse
                            // them: the update is dropped before the
                            // defense gate ever sees values.
                            if tracing {
                                self.recorder.counter_add(names::FL_DECODE_REJECTIONS, 1);
                                self.recorder.event(
                                    EventRecord::new(names::EVENT_DECODE_REJECT, arrival.seconds())
                                        .round(round)
                                        .client(c)
                                        .field("error", err.to_string()),
                                );
                            }
                            continue;
                        }
                        sink.accept(
                            &mut *self.aggregation,
                            RoundUpdate {
                                client: c,
                                payload: frame.payload,
                                weight: outcome.num_samples as f32,
                            },
                        );
                    }
                    None => continue,
                }
            }

            chunk_start = chunk_end;
        }

        // Eq. 3: the round completes when the slowest delivered participant
        // finishes; when the deadline fired, the server waited exactly that
        // long; a round with no delivered update costs the wait timeout.
        if deadline_hit {
            self.clock += SimTime::from_seconds(
                self.config
                    .round_deadline
                    .expect("deadline_hit implies a deadline"),
            );
        } else if sink.delivered() == 0 {
            self.clock += SimTime::from_seconds(0.5);
        } else {
            self.clock += round_time;
        }

        let delivered = match sink.mode() {
            SinkMode::Legacy => {
                let updates = sink.into_buffered();
                let updates = self.screen_updates(round, updates, participants.len());
                let delivered = updates.len();
                // Capacity feedback: score each surviving update's
                // alignment with the previous round's aggregate direction
                // (ĝ) so adaptive policies can promote well-aligned
                // clients and demote noisy ones.
                if let Some(cap) = self.capacity.as_mut() {
                    let mut dense = vec![0.0f32; self.global.len()];
                    for u in &updates {
                        dense.fill(0.0);
                        u.payload.add_scaled_into(&mut dense, 1.0);
                        let score = vecops::cosine_similarity(&dense, &self.global_gradient);
                        cap.policy.observe(round as u64, u.client, score);
                    }
                }
                let updates = self.robust_stage(round, updates);
                if !updates.is_empty() {
                    match &self.capacity {
                        Some(_) => {
                            // Coverage-weighted fold: each coordinate is
                            // averaged over the clients whose views cover
                            // it; with all full-width clients this is
                            // bitwise FedAvg. The fold doubles as the `ĝ`
                            // digest read back by `observe`.
                            if let Some(mean) = coverage_weighted_fold(self.global.len(), &updates)
                            {
                                vecops::axpy(&mut self.global, 1.0, &mean);
                                self.global_gradient.copy_from_slice(&mean);
                            }
                        }
                        None => self.aggregation.aggregate(
                            &mut self.global,
                            &mut self.global_gradient,
                            updates,
                        ),
                    }
                }
                delivered
            }
            SinkMode::Streaming | SinkMode::BufferedFold => {
                let delivered = sink.delivered();
                if let Some((merged, charges)) = sink.finish(&mut *self.aggregation) {
                    // Hierarchical tier: each active edge ships one dense
                    // partial to the server, charged to its lead client
                    // through the relay-byte machinery. A flat topology
                    // (edge_aggregators == 0) ships nothing extra — the
                    // server-side accumulator is free.
                    if self.config.edge_aggregators > 0 {
                        let partial_bytes = dense_wire_size(self.global.len());
                        for &(lead, _) in &charges {
                            self.io.ledger_mut().record_relay(lead, partial_bytes);
                        }
                    }
                    self.aggregation
                        .finish(&mut self.global, &mut self.global_gradient, &merged);
                }
                delivered
            }
        };
        if tracing {
            let (start, end) = (round_start.seconds(), self.clock.seconds());
            self.recorder
                .histogram_record(names::ROUND_SIM_SECONDS, end - start);
            let span = SpanRecord::new(names::SPAN_ROUND, start, end)
                .round(round)
                .wall(self.recorder.wall_micros().saturating_sub(wall_start))
                .field("participants", participants.len())
                .field("delivered", delivered);
            self.recorder
                .span(self.selection.annotate_round_span(round, span));
        }
        delivered
    }

    /// Crash-fault bookkeeping at the top of a round: snapshot a client's
    /// state into a [`Checkpoint`] the round its outage begins, restore it
    /// from the decoded checkpoint the round it comes back.
    fn handle_crashes(&mut self, round: usize) {
        let tracing = self.recorder.enabled();
        for c in 0..self.config.clients {
            let FaultKind::Crash { at_round, .. } = self.faults.kind(c) else {
                continue;
            };
            if round == at_round {
                let snapshot = Checkpoint::new(
                    round as u64,
                    self.clients.resident_client(c).model().params_flat(),
                );
                self.crash_checkpoints[c] = Some(snapshot);
                if tracing {
                    self.recorder.counter_add(names::FL_CRASHES, 1);
                    self.recorder.event(
                        EventRecord::new(names::EVENT_CRASH, self.clock.seconds())
                            .round(round)
                            .client(c),
                    );
                }
            } else if self.faults.recovers_at(c, round) {
                if let Some(ckpt) = self.crash_checkpoints[c].take() {
                    // Recovery goes through the wire format: the client
                    // restores from the decoded bytes, exactly as it would
                    // from flash after a reboot.
                    let restored =
                        Checkpoint::decode(&ckpt.encode()).expect("checkpoint round-trips");
                    self.clients
                        .resident_client(c)
                        .sync_to_global(&restored.params);
                    if tracing {
                        self.recorder.counter_add(names::FL_RECOVERIES, 1);
                        self.recorder.event(
                            EventRecord::new(names::EVENT_RECOVERY, self.clock.seconds())
                                .round(round)
                                .client(c)
                                .field("checkpoint_round", restored.round as usize),
                        );
                    }
                }
            }
        }
    }

    /// Defensive aggregation gate: scrubs, norm-screens and quorum-checks
    /// the round's delivered updates. Identity when no defense is set; an
    /// empty result means the round is skipped.
    fn screen_updates(
        &mut self,
        round: usize,
        mut updates: Vec<RoundUpdate>,
        expected: usize,
    ) -> Vec<RoundUpdate> {
        if self.defense.is_none() {
            return updates;
        }
        let tracing = self.recorder.enabled();
        let now = self.clock.seconds();
        // Scrub + norm-screen in parallel: `sanitize` takes `&self` and
        // touches only its own update's values, and `scope_run` collects in
        // submission order, so the verdicts are identical at any pool
        // width. Telemetry is replayed sequentially below, in the original
        // update order.
        let screened: Vec<Result<Sanitized, RejectReason>> = {
            let gate = self.defense.as_ref().expect("checked above");
            let jobs: Vec<Box<dyn FnOnce() -> Result<Sanitized, RejectReason> + Send + '_>> =
                updates
                    .iter_mut()
                    .map(|u| {
                        // The screens run over the transmitted values; the
                        // L2 norm of a sparse update equals the norm of its
                        // dense form.
                        Box::new(move || gate.sanitize(u.payload.values_mut())) as Box<_>
                    })
                    .collect();
            self.pool.scope_run(jobs)
        };
        let mut kept: Vec<RoundUpdate> = Vec::with_capacity(updates.len());
        let mut norms: Vec<f64> = Vec::with_capacity(updates.len());
        for (u, screened) in updates.drain(..).zip(screened) {
            match screened {
                Ok(s) => {
                    if tracing && s.scrubbed > 0 {
                        self.recorder
                            .counter_add(names::FL_DEFENSE_SCRUBBED, s.scrubbed as u64);
                    }
                    norms.push(s.norm);
                    kept.push(u);
                }
                Err(reason) => {
                    if tracing {
                        self.recorder.counter_add(names::FL_DEFENSE_REJECTIONS, 1);
                        self.recorder.event(
                            EventRecord::new(names::EVENT_DEFENSE_REJECT, now)
                                .round(round)
                                .client(u.client)
                                .field("reason", reason.label()),
                        );
                    }
                }
            }
        }
        let verdicts = self
            .defense
            .as_mut()
            .expect("checked above")
            .admit_batch(&norms);
        let mut out: Vec<RoundUpdate> = Vec::with_capacity(kept.len());
        for (u, ok) in kept.into_iter().zip(verdicts) {
            if ok {
                out.push(u);
            } else if tracing {
                self.recorder.counter_add(names::FL_DEFENSE_REJECTIONS, 1);
                self.recorder.event(
                    EventRecord::new(names::EVENT_DEFENSE_REJECT, now)
                        .round(round)
                        .client(u.client)
                        .field("reason", "norm_outlier"),
                );
            }
        }
        let gate = self.defense.as_ref().expect("checked above");
        if !gate.quorum_met(out.len(), expected) {
            if tracing {
                self.recorder.counter_add(names::FL_QUORUM_SKIPS, 1);
                self.recorder.event(
                    EventRecord::new(names::EVENT_QUORUM_SKIP, now)
                        .round(round)
                        .field("accepted", out.len())
                        .field("expected", expected),
                );
            }
            return Vec::new();
        }
        out
    }

    /// Byzantine-robust pre-aggregation: replaces the screened cohort with
    /// the robust estimate (see [`crate::robust`]) before the aggregation
    /// policy sees it, fanning the densify and distance-matrix work across
    /// the worker pool. Identity when no robust method is set.
    fn robust_stage(&mut self, round: usize, updates: Vec<RoundUpdate>) -> Vec<RoundUpdate> {
        let Some(robust) = self.robust.as_ref() else {
            return updates;
        };
        if updates.len() < 2 {
            return updates;
        }
        let tracing = self.recorder.enabled();
        let wall_start = self.recorder.wall_micros();
        let has_views = updates
            .iter()
            .any(|u| u.payload.view_descriptor().is_some());
        let (out, stats) = if has_views {
            Self::robust_by_coverage(robust, &self.pool, self.global.len(), updates)
        } else {
            robust.pre_aggregate_with(self.global.len(), updates, Some(&self.pool))
        };
        if tracing {
            if stats.rejected > 0 {
                self.recorder
                    .counter_add(names::FL_ROBUST_REJECTED, stats.rejected as u64);
            }
            if stats.trimmed_values > 0 {
                self.recorder
                    .counter_add(names::FL_ROBUST_TRIMMED, stats.trimmed_values);
            }
            // The estimator runs at the server between arrival and
            // aggregation: zero simulated width, real wall cost.
            let now = self.clock.seconds();
            self.recorder.span(
                SpanRecord::new(names::SPAN_ROBUST, now, now)
                    .round(round)
                    .wall(self.recorder.wall_micros().saturating_sub(wall_start))
                    .field("method", robust.method().as_str())
                    .field("input", stats.input)
                    .field("output", stats.output),
            );
        }
        out
    }

    /// Runs the robust estimator separately per coverage group. Updates
    /// sharing a view descriptor are comparable coordinate-for-coordinate
    /// at view width; densifying mixed-width updates would let the zero
    /// padding outside narrow views masquerade as small coordinates and
    /// skew medians and distance rankings. Groups of one pass through
    /// untouched — there is nothing to compare a singleton against.
    fn robust_by_coverage(
        robust: &RobustAggregator,
        pool: &WorkerPool,
        dense_len: usize,
        updates: Vec<RoundUpdate>,
    ) -> (Vec<RoundUpdate>, RobustStats) {
        let mut groups: Vec<(Option<ViewDescriptor>, Vec<RoundUpdate>)> = Vec::new();
        for u in updates {
            let key = u.payload.view_descriptor().cloned();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, g)) => g.push(u),
                None => groups.push((key, vec![u])),
            }
        }
        let mut out: Vec<RoundUpdate> = Vec::new();
        let mut total = RobustStats::default();
        for (key, group) in groups {
            if group.len() < 2 {
                total.input += group.len();
                total.output += group.len();
                out.extend(group);
                continue;
            }
            match key {
                Some(desc) => {
                    // Unwrap to the view-local inner payloads, estimate at
                    // view width, then re-wrap under the shared descriptor.
                    let inner: Vec<RoundUpdate> = group
                        .into_iter()
                        .map(|u| RoundUpdate {
                            client: u.client,
                            weight: u.weight,
                            payload: match u.payload {
                                UpdatePayload::SubView { inner, .. } => *inner,
                                _ => unreachable!("grouped under Some descriptor"),
                            },
                        })
                        .collect();
                    let (est, stats) =
                        robust.pre_aggregate_with(desc.view_len(), inner, Some(pool));
                    total.input += stats.input;
                    total.output += stats.output;
                    total.rejected += stats.rejected;
                    total.trimmed_values += stats.trimmed_values;
                    out.extend(est.into_iter().map(|u| RoundUpdate {
                        client: u.client,
                        weight: u.weight,
                        payload: UpdatePayload::sub_view(desc.clone(), u.payload),
                    }));
                }
                None => {
                    let (est, stats) = robust.pre_aggregate_with(dense_len, group, Some(pool));
                    total.input += stats.input;
                    total.output += stats.output;
                    total.rejected += stats.rejected;
                    total.trimmed_values += stats.trimmed_values;
                    out.extend(est);
                }
            }
        }
        (out, total)
    }

    /// Trains the broadcast-ready clients, returning outcomes in the same
    /// (cohort) order. Parallel across the pool when enabled — clients are
    /// mutually independent during local training, so results do not
    /// depend on scheduling. When `views` is set (capacity mode), each
    /// ready client trains on its rank's sub-view of the global vector
    /// instead of the full model.
    fn train_ready(
        &mut self,
        round: usize,
        ready: &[(usize, usize, SimTime)],
        views: Option<&[(SubView, ViewDescriptor)]>,
    ) -> Vec<LocalOutcome> {
        let steps = self.config.local_steps;
        let aggregation = &self.aggregation;
        let use_hook = aggregation.uses_gradient_hook();
        let global = &self.global;
        // One live client per ready entry, in ready (cohort) order.
        let slots: Vec<&mut FlClient> = match &mut self.clients {
            Fleet::Resident(clients) => {
                // Boolean mask over client ids (O(N), not an O(N²)
                // contains scan), then per-id slots so each ready client's
                // &mut is taken exactly once — in cohort order, whatever
                // that order is.
                let mut is_ready = vec![false; clients.len()];
                for &(_, c, _) in ready {
                    is_ready[c] = true;
                }
                let mut by_id: Vec<Option<&mut FlClient>> = clients
                    .iter_mut()
                    .enumerate()
                    .map(|(c, client)| is_ready[c].then_some(client))
                    .collect();
                ready
                    .iter()
                    .map(|&(_, c, _)| by_id[c].take().expect("ready client listed once"))
                    .collect()
            }
            Fleet::Pooled(pool) => {
                // Cohort-resident pool: rebind one slot per ready client
                // for this round; state does not persist across rounds.
                let ids: Vec<usize> = ready.iter().map(|&(_, c, _)| c).collect();
                pool.checkout(&ids, round as u64)
            }
        };
        let jobs: Vec<Box<dyn FnOnce() -> LocalOutcome + Send + '_>> = ready
            .iter()
            .zip(slots)
            .map(|(&(rank, c, _), client)| {
                let view = views.map(|v| &v[rank].0);
                Box::new(move || {
                    // The hooked and hook-free training paths are distinct
                    // float paths; the aggregation policy pins the choice.
                    if use_hook {
                        let mut hook = |grad: &mut [f32], params: &[f32], g: &[f32]| {
                            aggregation.gradient_hook(c, grad, params, g);
                        };
                        match view {
                            Some(view) => {
                                let values = view.extract(global);
                                client.train_local_view(view, &values, steps, Some(&mut hook))
                            }
                            None => client.train_local(global, steps, Some(&mut hook)),
                        }
                    } else {
                        match view {
                            Some(view) => {
                                let values = view.extract(global);
                                client.train_local_view(view, &values, steps, None)
                            }
                            None => client.train_local(global, steps, None),
                        }
                    }
                }) as Box<_>
            })
            .collect();

        if self.parallel {
            // Persistent pool instead of per-round thread spawning; results
            // come back in submission (cohort) order, so parallel and
            // sequential runs stay byte-identical.
            self.pool.scope_run(jobs)
        } else {
            jobs.into_iter().map(|job| job()).collect()
        }
    }
}
