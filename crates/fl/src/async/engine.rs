//! The event-driven asynchronous FL engine.
//!
//! Clients loop independently: receive the global model → train locally →
//! upload. The server reacts to each arriving update according to its
//! [`AsyncStrategy`] (FedAsync updates immediately; FedBuff buffers), then
//! pushes the fresh global model back to the sender. All timing runs on the
//! simulated clock via an [`EventQueue`], so staleness emerges naturally
//! from slow compute or slow links rather than being injected.

use crate::client::{evaluate_model, FlClient};
use crate::compute::ComputeModel;
use crate::config::FlConfig;
use crate::defense::{DefenseConfig, DefenseGate};
use crate::faults::{corrupt_update, FaultPlan};
use crate::history::{RoundRecord, RunHistory};
use crate::ledger::CommunicationLedger;
use adafl_compression::dense_wire_size;
use adafl_data::partition::Partitioner;
use adafl_data::Dataset;
use adafl_netsim::{
    ClientNetwork, EventQueue, LinkProfile, LinkTrace, ReliablePolicy, ReliableTransfer, SimTime,
};
use adafl_telemetry::{names, EventRecord, SharedRecorder, SpanRecord};

/// Server-side behaviour of an asynchronous FL strategy.
pub trait AsyncStrategy: std::fmt::Debug + Send {
    /// Strategy name for run labels.
    fn name(&self) -> &'static str;

    /// Called once with the model dimension before the run.
    fn init(&mut self, _dim: usize) {}

    /// Handles one arriving client update.
    ///
    /// `snapshot` is the global model the client trained from (so
    /// model-mixing strategies can reconstruct the client's local model as
    /// `snapshot + delta`); `staleness` is the number of global versions
    /// the sender missed while training. Returns `true` when the global
    /// parameters changed (FedBuff returns `false` while buffering).
    fn on_update(
        &mut self,
        global: &mut [f32],
        delta: &[f32],
        snapshot: &[f32],
        weight: f32,
        staleness: u64,
    ) -> bool;
}

#[derive(Debug)]
enum Event {
    /// A client finished downloading the global model and starts training.
    StartTraining { client: usize },
    /// A client's update reached the server.
    UpdateArrival { client: usize, version: u64 },
    /// A transfer was lost; the client re-requests the global model.
    Resync { client: usize },
}

/// Asynchronous federated-learning engine.
#[derive(Debug)]
pub struct AsyncEngine {
    config: FlConfig,
    clients: Vec<FlClient>,
    /// Per-client snapshot of the global model they are training from.
    snapshots: Vec<Vec<f32>>,
    /// Per-client pending delta awaiting arrival (at most one in flight).
    in_flight: Vec<Option<Vec<f32>>>,
    global: Vec<f32>,
    global_model: adafl_nn::Model,
    version: u64,
    test_set: Dataset,
    strategy: Box<dyn AsyncStrategy>,
    network: ClientNetwork,
    compute: ComputeModel,
    faults: FaultPlan,
    ledger: CommunicationLedger,
    update_budget: u64,
    eval_every: u64,
    recorder: SharedRecorder,
    transport: Option<ReliableTransfer>,
    defense: Option<DefenseGate>,
}

impl AsyncEngine {
    /// Creates an engine with a homogeneous broadband network and uniform
    /// compute; `update_budget` bounds the total number of server updates.
    pub fn new(
        config: FlConfig,
        train_set: &Dataset,
        test_set: Dataset,
        partitioner: Partitioner,
        strategy: Box<dyn AsyncStrategy>,
        update_budget: u64,
    ) -> Self {
        let shards = partitioner.split(train_set, config.clients, config.seed_for("partition"));
        let network = ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); config.clients],
            config.seed_for("network"),
        );
        let compute = ComputeModel::uniform(config.clients, 0.1);
        let faults = FaultPlan::reliable(config.clients);
        AsyncEngine::with_parts(
            config,
            shards,
            test_set,
            strategy,
            network,
            compute,
            faults,
            update_budget,
        )
    }

    /// Creates an engine with explicit parts; stale clients in `faults` are
    /// folded into the compute model as slowdowns.
    ///
    /// # Panics
    ///
    /// Panics when part sizes disagree with `config.clients` or any shard is
    /// empty.
    #[allow(clippy::too_many_arguments)]
    pub fn with_parts(
        config: FlConfig,
        shards: Vec<Dataset>,
        test_set: Dataset,
        mut strategy: Box<dyn AsyncStrategy>,
        network: ClientNetwork,
        mut compute: ComputeModel,
        faults: FaultPlan,
        update_budget: u64,
    ) -> Self {
        assert_eq!(shards.len(), config.clients, "shard count mismatch");
        assert_eq!(network.len(), config.clients, "network size mismatch");
        assert_eq!(
            compute.clients(),
            config.clients,
            "compute model size mismatch"
        );
        assert_eq!(faults.clients(), config.clients, "fault plan size mismatch");
        assert!(update_budget > 0, "update budget must be positive");
        let clients = FlClient::fleet(
            &config.model,
            shards,
            config.learning_rate,
            config.momentum,
            config.batch_size,
            config.seed_for("model"),
        );
        let mut global_model = config.model.build(config.seed_for("model"));
        let global = global_model.params_flat();
        global_model.set_params_flat(&global);
        strategy.init(global.len());
        for c in 0..config.clients {
            let slow = faults.slowdown(c);
            if slow > 1.0 {
                compute.scale_client(c, slow);
            }
        }
        let snapshots = vec![global.clone(); config.clients];
        AsyncEngine {
            ledger: CommunicationLedger::new(config.clients),
            in_flight: vec![None; config.clients],
            snapshots,
            clients,
            global,
            global_model,
            version: 0,
            test_set,
            strategy,
            network,
            compute,
            faults,
            config,
            update_budget,
            eval_every: 5,
            recorder: adafl_telemetry::noop(),
            transport: None,
            defense: None,
        }
    }

    /// Attaches a telemetry recorder, also wiring it into the simulated
    /// network. Recording is strictly passive: event scheduling and RNG
    /// state are untouched, so traced and untraced runs are identical.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.network.set_recorder(recorder.clone());
        if let Some(t) = &mut self.transport {
            t.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// Enables reliable transport for every model exchange; a transfer that
    /// still fails after all attempts falls back to the resync path. Off by
    /// default.
    pub fn set_retry_policy(&mut self, policy: ReliablePolicy) {
        let mut t = ReliableTransfer::new(policy, self.config.seed_for("transport"));
        t.set_recorder(self.recorder.clone());
        self.transport = Some(t);
    }

    /// Enables the defensive aggregation gate: each arriving update is
    /// scrubbed and norm-screened before it reaches the strategy; rejected
    /// updates are discarded (the client is resynced as usual). Off by
    /// default.
    pub fn set_defense(&mut self, cfg: DefenseConfig) {
        self.defense = Some(DefenseGate::new(cfg));
    }

    /// Sets how many server updates elapse between test-set evaluations
    /// (default 5).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn set_eval_every(&mut self, n: u64) {
        assert!(n > 0, "evaluation interval must be positive");
        self.eval_every = n;
    }

    /// The communication ledger (cumulative).
    pub fn ledger(&self) -> &CommunicationLedger {
        &self.ledger
    }

    /// Current global version (number of global model changes).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Runs until `update_budget` client updates have reached the server,
    /// returning the evaluation history against simulated time.
    pub fn run(&mut self) -> RunHistory {
        let mut history = RunHistory::new(self.strategy.name());
        let mut queue: EventQueue<Event> = EventQueue::new();
        let payload = dense_wire_size(self.global.len());

        // Bootstrap: broadcast the initial model to everyone.
        for c in 0..self.config.clients {
            self.schedule_downlink(&mut queue, c, payload, SimTime::ZERO);
        }

        let mut arrivals: u64 = 0;
        // Per-client version tags of the snapshot they are training from.
        let mut client_versions = vec![0u64; self.config.clients];

        // Liveness guard: fully-lossy networks can resync forever without an
        // arrival; bound total events so `run` always terminates.
        let max_events = self
            .update_budget
            .saturating_mul(self.config.clients as u64)
            .saturating_mul(50)
            .max(10_000);
        let mut events: u64 = 0;
        while let Some((now, event)) = queue.pop() {
            events += 1;
            if events > max_events {
                break;
            }
            match event {
                Event::StartTraining { client } => {
                    client_versions[client] = self.version;
                    let snapshot = self.snapshots[client].clone();
                    let mut outcome =
                        self.clients[client].train_local(&snapshot, self.config.local_steps, None);
                    let train_time = self.compute.training_time(client, self.config.local_steps);
                    let done = now + train_time;
                    if self.recorder.enabled() {
                        self.recorder.span(
                            SpanRecord::new(
                                names::SPAN_CLIENT_COMPUTE,
                                now.seconds(),
                                done.seconds(),
                            )
                            .client(client)
                            .field("steps", self.config.local_steps),
                        );
                    }
                    // Corruption faults hit the serialized update in
                    // transit; it still arrives and the defensive gate must
                    // catch it.
                    if let Some(seed) = self.faults.corrupts_update(client) {
                        corrupt_update(&mut outcome.delta, seed);
                        if self.recorder.enabled() {
                            self.recorder.counter_add(names::FL_CORRUPTIONS, 1);
                            self.recorder.event(
                                EventRecord::new(names::EVENT_CORRUPTION, done.seconds())
                                    .client(client),
                            );
                        }
                    }
                    self.in_flight[client] = Some(outcome.delta);
                    let (arrival, retry_at) = match &mut self.transport {
                        Some(t) => {
                            let report = t.uplink(&mut self.network, client, payload, done);
                            if report.delivered() {
                                self.ledger.record_uplink(client, payload);
                                if report.wasted_bytes > 0 {
                                    self.ledger.record_retransmission(
                                        client,
                                        report.wasted_bytes as usize,
                                    );
                                }
                                self.ledger
                                    .record_control(client, report.control_bytes as usize);
                            } else {
                                self.ledger
                                    .record_retransmission(client, report.payload_bytes as usize);
                            }
                            (report.arrival, report.sender_done)
                        }
                        None => {
                            let up = self.network.uplink_transfer(client, payload, done);
                            if up.arrival().is_some() {
                                self.ledger.record_uplink(client, payload);
                            }
                            (up.arrival(), done + SimTime::from_seconds(1.0))
                        }
                    };
                    match arrival {
                        Some(arrival) => {
                            queue.push(
                                arrival,
                                Event::UpdateArrival {
                                    client,
                                    version: client_versions[client],
                                },
                            );
                        }
                        None => {
                            // Update lost in transit: resync once the sender
                            // learns of the loss.
                            self.in_flight[client] = None;
                            queue.push(retry_at, Event::Resync { client });
                        }
                    }
                }
                Event::UpdateArrival { client, version } => {
                    arrivals += 1;
                    let staleness = self.version.saturating_sub(version);
                    if self.recorder.enabled() {
                        self.recorder
                            .histogram_record(names::ASYNC_STALENESS, staleness as f64);
                        self.recorder.event(
                            EventRecord::new(names::EVENT_STALENESS, now.seconds())
                                .round(arrivals as usize)
                                .client(client)
                                .field("staleness", staleness),
                        );
                    }
                    let mut delta = self.in_flight[client]
                        .take()
                        .expect("arrival without an in-flight update");
                    // Defensive gate: scrub and norm-screen the arriving
                    // update; a rejected update never reaches the strategy
                    // (the arrival still counts toward the budget, so a
                    // poisoned fleet cannot livelock the run).
                    let mut rejection: Option<&'static str> = None;
                    if let Some(gate) = self.defense.as_mut() {
                        match gate.sanitize(&mut delta) {
                            Ok(s) => {
                                if s.scrubbed > 0 && self.recorder.enabled() {
                                    self.recorder
                                        .counter_add(names::FL_DEFENSE_SCRUBBED, s.scrubbed as u64);
                                }
                                if !gate.admit(s.norm) {
                                    rejection = Some("norm_outlier");
                                }
                            }
                            Err(reason) => rejection = Some(reason.label()),
                        }
                    }
                    if let Some(reason) = rejection {
                        if self.recorder.enabled() {
                            self.recorder.counter_add(names::FL_DEFENSE_REJECTIONS, 1);
                            self.recorder.event(
                                EventRecord::new(names::EVENT_DEFENSE_REJECT, now.seconds())
                                    .client(client)
                                    .field("reason", reason),
                            );
                        }
                    } else {
                        let weight = self.clients[client].num_samples() as f32;
                        let snapshot = std::mem::take(&mut self.snapshots[client]);
                        let changed = self.strategy.on_update(
                            &mut self.global,
                            &delta,
                            &snapshot,
                            weight,
                            staleness,
                        );
                        self.snapshots[client] = snapshot;
                        if changed {
                            self.version += 1;
                        }
                    }
                    if arrivals.is_multiple_of(self.eval_every) || arrivals == self.update_budget {
                        let (accuracy, loss) = self.evaluate();
                        history.push(RoundRecord {
                            round: arrivals as usize,
                            sim_time: now,
                            accuracy,
                            loss,
                            uplink_bytes: self.ledger.uplink_bytes(),
                            uplink_updates: self.ledger.uplink_updates(),
                            contributors: 1,
                        });
                    }
                    if arrivals >= self.update_budget {
                        break;
                    }
                    self.schedule_downlink(&mut queue, client, payload, now);
                }
                Event::Resync { client } => {
                    self.schedule_downlink(&mut queue, client, payload, now);
                }
            }
        }
        history
    }

    fn schedule_downlink(
        &mut self,
        queue: &mut EventQueue<Event>,
        client: usize,
        payload: usize,
        now: SimTime,
    ) {
        self.snapshots[client].copy_from_slice(&self.global);
        let (arrival, retry_at) = match &mut self.transport {
            Some(t) => {
                let report = t.downlink(&mut self.network, client, payload, now);
                if report.delivered() {
                    self.ledger.record_downlink(client, payload);
                    if report.wasted_bytes > 0 {
                        self.ledger
                            .record_retransmission(client, report.wasted_bytes as usize);
                    }
                    self.ledger
                        .record_control(client, report.control_bytes as usize);
                } else {
                    self.ledger
                        .record_retransmission(client, report.payload_bytes as usize);
                }
                (report.arrival, report.sender_done)
            }
            None => {
                let down = self.network.downlink_transfer(client, payload, now);
                if down.arrival().is_some() {
                    self.ledger.record_downlink(client, payload);
                }
                (down.arrival(), now + SimTime::from_seconds(1.0))
            }
        };
        match arrival {
            Some(arrival) => queue.push(arrival, Event::StartTraining { client }),
            None => queue.push(retry_at, Event::Resync { client }),
        }
    }

    fn evaluate(&mut self) -> (f32, f32) {
        self.global_model.set_params_flat(&self.global);
        evaluate_model(&mut self.global_model, &self.test_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r#async::strategies::{FedAsync, FedBuff};
    use adafl_data::synthetic::SyntheticSpec;
    use adafl_nn::models::ModelSpec;

    fn config() -> FlConfig {
        FlConfig::builder()
            .clients(4)
            .rounds(10)
            .local_steps(3)
            .batch_size(16)
            .model(ModelSpec::LogisticRegression {
                in_features: 64,
                classes: 10,
            })
            .build()
    }

    fn engine(strategy: Box<dyn AsyncStrategy>, budget: u64) -> AsyncEngine {
        let data = SyntheticSpec::mnist_like(8, 400).generate(0);
        let (train, test) = data.split_at(320);
        AsyncEngine::new(config(), &train, test, Partitioner::Iid, strategy, budget)
    }

    #[test]
    fn fedasync_learns() {
        let mut e = engine(Box::new(FedAsync::new(0.6, 0.5)), 60);
        let history = e.run();
        assert!(!history.is_empty());
        assert!(
            history.final_accuracy() > 0.5,
            "fedasync stalled at {}",
            history.final_accuracy()
        );
        assert!(e.ledger().uplink_updates() >= 60);
    }

    #[test]
    fn fedbuff_learns_and_buffers() {
        let mut e = engine(Box::new(FedBuff::new(3, 1.0)), 60);
        let history = e.run();
        assert!(history.final_accuracy() > 0.5, "fedbuff stalled");
        // Buffered: global version changes once per 3 arrivals.
        assert_eq!(e.version(), 20);
    }

    #[test]
    fn run_is_reproducible() {
        let h1 = engine(Box::new(FedAsync::new(0.6, 0.5)), 30).run();
        let h2 = engine(Box::new(FedAsync::new(0.6, 0.5)), 30).run();
        assert_eq!(h1, h2);
    }

    #[test]
    fn sim_time_is_monotone_in_history() {
        let mut e = engine(Box::new(FedAsync::new(0.6, 0.5)), 40);
        let history = e.run();
        let times: Vec<f64> = history
            .records()
            .iter()
            .map(|r| r.sim_time.seconds())
            .collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn telemetry_observes_staleness_without_perturbing_results() {
        use adafl_telemetry::{names, InMemoryRecorder};

        let plain = engine(Box::new(FedAsync::new(0.6, 0.5)), 30).run();
        let mut traced = engine(Box::new(FedAsync::new(0.6, 0.5)), 30);
        let rec = InMemoryRecorder::shared();
        traced.set_recorder(rec.clone());
        assert_eq!(plain, traced.run());

        let t = rec.snapshot();
        assert_eq!(t.histograms[names::ASYNC_STALENESS].count(), 30);
        assert_eq!(t.events_of(names::EVENT_STALENESS).count(), 30);
        assert!(t.spans_of(names::SPAN_CLIENT_COMPUTE).count() >= 30);
        assert!(t.spans_of(names::SPAN_UPLINK).count() >= 30);
    }

    #[test]
    fn slow_clients_are_staler() {
        // Make client 0 very slow; its updates should carry staleness yet
        // the run must still complete the budget.
        let data = SyntheticSpec::mnist_like(8, 400).generate(0);
        let (train, test) = data.split_at(320);
        let cfg = config();
        let shards = Partitioner::Iid.split(&train, cfg.clients, cfg.seed_for("partition"));
        let network = ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); cfg.clients],
            0,
        );
        let compute = ComputeModel::heterogeneous(vec![3.0, 0.1, 0.1, 0.1]);
        let faults = FaultPlan::reliable(cfg.clients);
        let mut e = AsyncEngine::with_parts(
            cfg,
            shards,
            test,
            Box::new(FedAsync::new(0.6, 0.5)),
            network,
            compute,
            faults,
            40,
        );
        let history = e.run();
        // Sends are ledgered at transmit time, so in-flight updates beyond
        // the arrival budget are included.
        assert!(e.ledger().uplink_updates() >= 40);
        assert!(history.final_accuracy() > 0.4);
        // The slow client contributed far fewer updates.
        assert!(e.ledger().client_uplink_updates(0) < e.ledger().client_uplink_updates(1));
    }
}
