//! The event-driven asynchronous FL engine.
//!
//! Clients loop independently: receive the global model → train locally →
//! upload. The server reacts to each arriving update according to its
//! [`AsyncStrategy`] (FedAsync updates immediately; FedBuff buffers), then
//! pushes the fresh global model back to the sender. All timing runs on the
//! simulated clock, so staleness emerges naturally from slow compute or
//! slow links rather than being injected.
//!
//! Since the runtime refactor this type is a thin facade: the event loop
//! lives in [`crate::runtime::AsyncRuntime`], and `AsyncEngine` is the
//! baseline policy bundle — dense model exchanges and an [`AsyncStrategy`]
//! application adapter.

use crate::config::FlConfig;
use crate::defense::DefenseConfig;
use crate::history::RunHistory;
use crate::ledger::CommunicationLedger;
use crate::runtime::{AsyncRuntime, RuntimeBuilder};
use adafl_data::partition::Partitioner;
use adafl_data::Dataset;
use adafl_netsim::ReliablePolicy;
use adafl_telemetry::SharedRecorder;

/// Server-side behaviour of an asynchronous FL strategy.
pub trait AsyncStrategy: std::fmt::Debug + Send {
    /// Strategy name for run labels.
    fn name(&self) -> &'static str;

    /// Called once with the model dimension before the run.
    fn init(&mut self, _dim: usize) {}

    /// Handles one arriving client update.
    ///
    /// `snapshot` is the global model the client trained from (so
    /// model-mixing strategies can reconstruct the client's local model as
    /// `snapshot + delta`); `staleness` is the number of global versions
    /// the sender missed while training. Returns `true` when the global
    /// parameters changed (FedBuff returns `false` while buffering).
    fn on_update(
        &mut self,
        global: &mut [f32],
        delta: &[f32],
        snapshot: &[f32],
        weight: f32,
        staleness: u64,
    ) -> bool;
}

/// Asynchronous federated-learning engine.
#[derive(Debug)]
pub struct AsyncEngine {
    rt: AsyncRuntime,
}

impl AsyncEngine {
    /// Creates an engine with a homogeneous broadband network and uniform
    /// compute; `update_budget` bounds the total number of server updates.
    pub fn new(
        config: FlConfig,
        train_set: &Dataset,
        test_set: Dataset,
        partitioner: Partitioner,
        strategy: Box<dyn AsyncStrategy>,
        update_budget: u64,
    ) -> Self {
        RuntimeBuilder::new(config, test_set)
            .partitioned(train_set, partitioner)
            .update_budget(update_budget)
            .build_async(strategy)
            .expect("no sync-only options set")
    }

    /// Wraps a fully-assembled runtime (the builder's exit point).
    pub(crate) fn from_runtime(rt: AsyncRuntime) -> Self {
        AsyncEngine { rt }
    }

    /// Attaches a telemetry recorder, also wiring it into the simulated
    /// network. Recording is strictly passive: event scheduling and RNG
    /// state are untouched, so traced and untraced runs are identical.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.rt.set_recorder(recorder);
    }

    /// Enables reliable transport for every model exchange; a transfer that
    /// still fails after all attempts falls back to the resync path. Off by
    /// default.
    pub fn set_retry_policy(&mut self, policy: ReliablePolicy) {
        self.rt.set_retry_policy(policy);
    }

    /// Enables the defensive aggregation gate: each arriving update is
    /// scrubbed and norm-screened before it reaches the strategy; rejected
    /// updates are discarded (the client is resynced as usual). Off by
    /// default.
    pub fn set_defense(&mut self, cfg: DefenseConfig) {
        self.rt.set_defense(cfg);
    }

    /// Sets how many server updates elapse between test-set evaluations
    /// (default 5).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn set_eval_every(&mut self, n: u64) {
        self.rt.set_eval_every(n);
    }

    /// The communication ledger (cumulative).
    pub fn ledger(&self) -> &CommunicationLedger {
        self.rt.ledger()
    }

    /// Current global version (number of global model changes).
    pub fn version(&self) -> u64 {
        self.rt.version()
    }

    /// Runs until `update_budget` client updates have reached the server,
    /// returning the evaluation history against simulated time.
    pub fn run(&mut self) -> RunHistory {
        self.rt.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeModel;
    use crate::r#async::strategies::{FedAsync, FedBuff};
    use adafl_data::synthetic::SyntheticSpec;
    use adafl_netsim::{ClientNetwork, LinkProfile, LinkTrace};
    use adafl_nn::models::ModelSpec;

    fn config() -> FlConfig {
        FlConfig::builder()
            .clients(4)
            .rounds(10)
            .local_steps(3)
            .batch_size(16)
            .model(ModelSpec::LogisticRegression {
                in_features: 64,
                classes: 10,
            })
            .build()
    }

    fn engine(strategy: Box<dyn AsyncStrategy>, budget: u64) -> AsyncEngine {
        let data = SyntheticSpec::mnist_like(8, 400).generate(0);
        let (train, test) = data.split_at(320);
        AsyncEngine::new(config(), &train, test, Partitioner::Iid, strategy, budget)
    }

    #[test]
    fn fedasync_learns() {
        let mut e = engine(Box::new(FedAsync::new(0.6, 0.5)), 60);
        let history = e.run();
        assert!(!history.is_empty());
        assert!(
            history.final_accuracy() > 0.5,
            "fedasync stalled at {}",
            history.final_accuracy()
        );
        assert!(e.ledger().uplink_updates() >= 60);
    }

    #[test]
    fn fedbuff_learns_and_buffers() {
        let mut e = engine(Box::new(FedBuff::new(3, 1.0)), 60);
        let history = e.run();
        assert!(history.final_accuracy() > 0.5, "fedbuff stalled");
        // Buffered: global version changes once per 3 arrivals.
        assert_eq!(e.version(), 20);
    }

    #[test]
    fn run_is_reproducible() {
        let h1 = engine(Box::new(FedAsync::new(0.6, 0.5)), 30).run();
        let h2 = engine(Box::new(FedAsync::new(0.6, 0.5)), 30).run();
        assert_eq!(h1, h2);
    }

    #[test]
    fn sim_time_is_monotone_in_history() {
        let mut e = engine(Box::new(FedAsync::new(0.6, 0.5)), 40);
        let history = e.run();
        let times: Vec<f64> = history
            .records()
            .iter()
            .map(|r| r.sim_time.seconds())
            .collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn telemetry_observes_staleness_without_perturbing_results() {
        use adafl_telemetry::{names, InMemoryRecorder};

        let plain = engine(Box::new(FedAsync::new(0.6, 0.5)), 30).run();
        let mut traced = engine(Box::new(FedAsync::new(0.6, 0.5)), 30);
        let rec = InMemoryRecorder::shared();
        traced.set_recorder(rec.clone());
        assert_eq!(plain, traced.run());

        let t = rec.snapshot();
        assert_eq!(t.histograms[names::ASYNC_STALENESS].count(), 30);
        assert_eq!(t.events_of(names::EVENT_STALENESS).count(), 30);
        assert!(t.spans_of(names::SPAN_CLIENT_COMPUTE).count() >= 30);
        assert!(t.spans_of(names::SPAN_UPLINK).count() >= 30);
    }

    #[test]
    fn slow_clients_are_staler() {
        // Make client 0 very slow; its updates should carry staleness yet
        // the run must still complete the budget.
        let data = SyntheticSpec::mnist_like(8, 400).generate(0);
        let (train, test) = data.split_at(320);
        let cfg = config();
        let shards = Partitioner::Iid.split(&train, cfg.clients, cfg.seed_for("partition"));
        let network = ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); cfg.clients],
            0,
        );
        let compute = ComputeModel::heterogeneous(vec![3.0, 0.1, 0.1, 0.1]);
        let mut e = RuntimeBuilder::new(cfg, test)
            .shards(shards)
            .network(network)
            .compute(compute)
            .update_budget(40)
            .build_async(Box::new(FedAsync::new(0.6, 0.5)))
            .unwrap();
        let history = e.run();
        // Sends are ledgered at transmit time, so in-flight updates beyond
        // the arrival budget are included.
        assert!(e.ledger().uplink_updates() >= 40);
        assert!(history.final_accuracy() > 0.4);
        // The slow client contributed far fewer updates.
        assert!(e.ledger().client_uplink_updates(0) < e.ledger().client_uplink_updates(1));
    }
}
