//! Asynchronous baseline strategies: FedAsync \[22] and FedBuff \[35] — the
//! comparison set of Table II.

use super::engine::AsyncStrategy;
use adafl_tensor::vecops;

/// FedAsync (Xie et al. \[22]): every arriving client **model** is mixed
/// into the global model immediately, `x_g ← (1 − α_τ)·x_g + α_τ·x_client`,
/// with the staleness-decayed weight `α_τ = α · (1 + τ)^(−a)`. The mixing
/// form (rather than adding the raw delta) implicitly pulls the global
/// model toward the client's training snapshot, which is what keeps stale
/// updates from compounding into divergence.
#[derive(Debug, Clone)]
pub struct FedAsync {
    alpha: f32,
    staleness_exponent: f32,
}

impl FedAsync {
    /// Creates the strategy with base mixing weight `alpha ∈ (0, 1]` and
    /// polynomial staleness exponent `a ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics when parameters are out of range.
    pub fn new(alpha: f32, staleness_exponent: f32) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(
            staleness_exponent >= 0.0,
            "staleness exponent must be non-negative"
        );
        FedAsync {
            alpha,
            staleness_exponent,
        }
    }

    /// Effective mixing weight for a given staleness.
    pub fn effective_alpha(&self, staleness: u64) -> f32 {
        self.alpha * (1.0 + staleness as f32).powf(-self.staleness_exponent)
    }
}

impl AsyncStrategy for FedAsync {
    fn name(&self) -> &'static str {
        "fedasync"
    }

    fn on_update(
        &mut self,
        global: &mut [f32],
        delta: &[f32],
        snapshot: &[f32],
        _weight: f32,
        staleness: u64,
    ) -> bool {
        let alpha = self.effective_alpha(staleness);
        for ((g, d), s) in global.iter_mut().zip(delta).zip(snapshot) {
            let client_model = s + d;
            *g = (1.0 - alpha) * *g + alpha * client_model;
        }
        true
    }
}

/// FedBuff (Nguyen et al. \[35]): updates accumulate in a size-`K` buffer;
/// when full, their staleness-discounted mean is applied at once, reducing
/// the variance of purely asynchronous aggregation.
#[derive(Debug, Clone)]
pub struct FedBuff {
    buffer_size: usize,
    server_lr: f32,
    buffer: Vec<(Vec<f32>, f32, u64)>,
}

impl FedBuff {
    /// Creates the strategy with buffer capacity `buffer_size` and server
    /// learning rate `server_lr`.
    ///
    /// # Panics
    ///
    /// Panics when `buffer_size` is zero or `server_lr` is not positive.
    pub fn new(buffer_size: usize, server_lr: f32) -> Self {
        assert!(buffer_size > 0, "buffer size must be positive");
        assert!(server_lr > 0.0, "server learning rate must be positive");
        FedBuff {
            buffer_size,
            server_lr,
            buffer: Vec::new(),
        }
    }

    /// Buffer capacity `K`.
    pub fn buffer_size(&self) -> usize {
        self.buffer_size
    }

    /// Updates currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

impl AsyncStrategy for FedBuff {
    fn name(&self) -> &'static str {
        "fedbuff"
    }

    fn on_update(
        &mut self,
        global: &mut [f32],
        delta: &[f32],
        _snapshot: &[f32],
        weight: f32,
        staleness: u64,
    ) -> bool {
        self.buffer.push((delta.to_vec(), weight, staleness));
        if self.buffer.len() < self.buffer_size {
            return false;
        }
        // Staleness-discounted weighted mean: wᵢ / √(1 + τᵢ).
        let weights: Vec<f32> = self
            .buffer
            .iter()
            .map(|(_, w, s)| w / (1.0 + *s as f32).sqrt())
            .collect();
        let vectors: Vec<&[f32]> = self.buffer.iter().map(|(d, _, _)| d.as_slice()).collect();
        if let Some(mean) = vecops::weighted_average(&vectors, &weights) {
            vecops::axpy(global, self.server_lr, &mean);
        }
        self.buffer.clear();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedasync_mixes_models_immediately() {
        let mut s = FedAsync::new(0.5, 0.0);
        let mut global = vec![0.0f32, 0.0];
        // Client trained from the current global: snapshot == global.
        assert!(s.on_update(&mut global, &[2.0, -2.0], &[0.0, 0.0], 1.0, 0));
        assert_eq!(global, vec![1.0, -1.0]);
    }

    #[test]
    fn fedasync_pulls_toward_stale_snapshot() {
        // A stale client trained from snapshot 0 while the global moved to
        // 10; mixing must land between the two models, not at 10 + αΔ.
        let mut s = FedAsync::new(0.5, 0.0);
        let mut global = vec![10.0f32];
        s.on_update(&mut global, &[1.0], &[0.0], 1.0, 3);
        assert!(global[0] < 10.0, "mixing must damp toward the client model");
        assert!(global[0] > 1.0);
    }

    #[test]
    fn fedasync_discounts_stale_updates() {
        let s = FedAsync::new(0.8, 1.0);
        assert_eq!(s.effective_alpha(0), 0.8);
        assert_eq!(s.effective_alpha(1), 0.4);
        assert!(s.effective_alpha(9) < 0.1);
        // Exponent 0 disables discounting.
        let flat = FedAsync::new(0.8, 0.0);
        assert_eq!(flat.effective_alpha(100), 0.8);
    }

    #[test]
    fn fedbuff_flushes_exactly_at_capacity() {
        let mut s = FedBuff::new(3, 1.0);
        let mut global = vec![0.0f32];
        let snap = [0.0f32];
        assert!(!s.on_update(&mut global, &[3.0], &snap, 1.0, 0));
        assert!(!s.on_update(&mut global, &[6.0], &snap, 1.0, 0));
        assert_eq!(global, vec![0.0], "no change while buffering");
        assert_eq!(s.buffered(), 2);
        assert!(s.on_update(&mut global, &[9.0], &snap, 1.0, 0));
        assert_eq!(global, vec![6.0]); // mean of 3, 6, 9
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn fedbuff_downweights_stale_buffer_entries() {
        let mut s = FedBuff::new(2, 1.0);
        let mut global = vec![0.0f32];
        let snap = [0.0f32];
        s.on_update(&mut global, &[1.0], &snap, 1.0, 0);
        s.on_update(&mut global, &[5.0], &snap, 1.0, 99); // heavily stale
                                                          // Weighted mean ≈ 1·1/1 + 5·0.1 over (1 + 0.1) ≈ 1.36, well below
                                                          // the unweighted mean of 3.
        assert!(global[0] < 2.0, "stale entry dominated: {}", global[0]);
        assert!(global[0] > 0.9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        FedAsync::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "buffer size")]
    fn zero_buffer_panics() {
        FedBuff::new(0, 1.0);
    }
}
