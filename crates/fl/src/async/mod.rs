//! Asynchronous federated learning: the event-driven engine and its
//! baseline strategies.

pub mod strategies;

mod engine;

pub use engine::{AsyncEngine, AsyncStrategy};
