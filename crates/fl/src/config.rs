//! Experiment configuration.

use adafl_nn::models::ModelSpec;

/// Configuration shared by the synchronous and asynchronous engines.
///
/// Use [`FlConfig::builder`] to construct; the builder validates ranges at
/// [`FlConfigBuilder::build`].
///
/// # Examples
///
/// ```
/// use adafl_fl::FlConfig;
/// use adafl_nn::models::ModelSpec;
///
/// let cfg = FlConfig::builder()
///     .clients(10)
///     .rounds(40)
///     .participation(0.5)
///     .model(ModelSpec::LogisticRegression { in_features: 64, classes: 10 })
///     .build();
/// assert_eq!(cfg.participants_per_round(), 5);
/// ```
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct FlConfig {
    /// Number of federated clients.
    pub clients: usize,
    /// Number of communication rounds (sync) or the round budget used to
    /// derive the time horizon (async).
    pub rounds: usize,
    /// Fraction of clients sampled per round in `(0, 1]` (the paper's
    /// `r_p`, 0.5 for all baselines).
    pub participation: f64,
    /// Local SGD steps per round.
    pub local_steps: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Client learning rate.
    pub learning_rate: f32,
    /// Client SGD momentum.
    pub momentum: f32,
    /// Model recipe shared by server and clients.
    pub model: ModelSpec,
    /// Master seed; all component seeds derive from it.
    pub seed: u64,
    /// Synchronous only: maximum time (seconds) the server waits for
    /// updates each round (the §III "maximum wait time"); updates arriving
    /// later are dropped. `None` waits for every participant.
    pub round_deadline: Option<f64>,
    /// Synchronous only: schedule each round's participants in cohorts of
    /// at most this many clients and, when the aggregation policy supports
    /// it, fold updates into a streaming accumulator instead of buffering
    /// the whole cohort (O(model) instead of O(clients × model) server
    /// memory). `None` keeps the classic single-cohort buffered round,
    /// byte-identical to before this field existed.
    #[serde(default)]
    pub cohort_size: Option<usize>,
    /// Number of edge aggregators in the hierarchical tier between
    /// clients and server (streaming rounds only; update `u` folds at
    /// edge `u.client % edge_aggregators`, and each active edge ships one
    /// dense partial to the server, charged as relay bytes). `0` means a
    /// flat client→server topology.
    #[serde(default)]
    pub edge_aggregators: usize,
}

impl FlConfig {
    /// Starts a builder with experiment defaults matching the paper's setup
    /// (10 clients, `r_p = 0.5`).
    pub fn builder() -> FlConfigBuilder {
        FlConfigBuilder::default()
    }

    /// Number of clients sampled each round: `⌈participation · clients⌉`,
    /// at least 1.
    pub fn participants_per_round(&self) -> usize {
        ((self.participation * self.clients as f64).round() as usize).clamp(1, self.clients)
    }

    /// Deterministic sub-seed for a named component.
    pub fn seed_for(&self, component: &str) -> u64 {
        let mut h = self.seed ^ 0xCBF2_9CE4_8422_2325;
        for b in component.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }
}

/// Builder for [`FlConfig`].
#[derive(Debug, Clone)]
pub struct FlConfigBuilder {
    clients: usize,
    rounds: usize,
    participation: f64,
    local_steps: usize,
    batch_size: usize,
    learning_rate: f32,
    momentum: f32,
    model: Option<ModelSpec>,
    seed: u64,
    round_deadline: Option<f64>,
    cohort_size: Option<usize>,
    edge_aggregators: usize,
}

impl Default for FlConfigBuilder {
    fn default() -> Self {
        FlConfigBuilder {
            clients: 10,
            rounds: 40,
            participation: 0.5,
            local_steps: 5,
            batch_size: 32,
            learning_rate: 0.02,
            momentum: 0.9,
            model: None,
            seed: 42,
            round_deadline: None,
            cohort_size: None,
            edge_aggregators: 0,
        }
    }
}

impl FlConfigBuilder {
    /// Sets the client count.
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n;
        self
    }

    /// Sets the round count.
    pub fn rounds(mut self, n: usize) -> Self {
        self.rounds = n;
        self
    }

    /// Sets the per-round participation fraction `r_p`.
    pub fn participation(mut self, p: f64) -> Self {
        self.participation = p;
        self
    }

    /// Sets local steps per round.
    pub fn local_steps(mut self, n: usize) -> Self {
        self.local_steps = n;
        self
    }

    /// Sets the local mini-batch size.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = n;
        self
    }

    /// Sets the client learning rate.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets client SGD momentum.
    pub fn momentum(mut self, m: f32) -> Self {
        self.momentum = m;
        self
    }

    /// Sets the model recipe (required).
    pub fn model(mut self, spec: ModelSpec) -> Self {
        self.model = Some(spec);
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps how long the server waits for each synchronous round; late
    /// updates are dropped (the paper's §III maximum-wait-time policy).
    pub fn round_deadline(mut self, seconds: f64) -> Self {
        self.round_deadline = Some(seconds);
        self
    }

    /// Schedules each synchronous round in cohorts of at most `n`
    /// clients, enabling the streaming fold path for aggregation policies
    /// that support it (see [`FlConfig::cohort_size`]).
    pub fn cohort_size(mut self, n: usize) -> Self {
        self.cohort_size = Some(n);
        self
    }

    /// Inserts `n` edge aggregators between clients and server for
    /// streaming rounds (see [`FlConfig::edge_aggregators`]).
    pub fn edge_aggregators(mut self, n: usize) -> Self {
        self.edge_aggregators = n;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Panics
    ///
    /// Panics when no model was set, any count is zero, `participation` is
    /// outside `(0, 1]`, or the learning rate is not positive.
    pub fn build(self) -> FlConfig {
        assert!(self.clients > 0, "client count must be positive");
        assert!(self.rounds > 0, "round count must be positive");
        assert!(
            self.participation > 0.0 && self.participation <= 1.0,
            "participation must be in (0, 1]"
        );
        assert!(self.local_steps > 0, "local steps must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(
            self.learning_rate > 0.0 && self.learning_rate.is_finite(),
            "learning rate must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.momentum),
            "momentum must be in [0, 1)"
        );
        if let Some(d) = self.round_deadline {
            assert!(d > 0.0 && d.is_finite(), "round deadline must be positive");
        }
        if let Some(n) = self.cohort_size {
            assert!(n > 0, "cohort size must be positive");
        }
        assert!(
            self.edge_aggregators == 0 || self.cohort_size.is_some(),
            "edge aggregators require cohort scheduling (set cohort_size)"
        );
        assert!(
            self.edge_aggregators <= self.clients,
            "cannot have more edge aggregators than clients"
        );
        FlConfig {
            clients: self.clients,
            rounds: self.rounds,
            participation: self.participation,
            local_steps: self.local_steps,
            batch_size: self.batch_size,
            learning_rate: self.learning_rate,
            momentum: self.momentum,
            model: self.model.expect("model spec is required"),
            seed: self.seed,
            round_deadline: self.round_deadline,
            cohort_size: self.cohort_size,
            edge_aggregators: self.edge_aggregators,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ModelSpec {
        ModelSpec::LogisticRegression {
            in_features: 4,
            classes: 2,
        }
    }

    #[test]
    fn builder_defaults_match_paper_setup() {
        let cfg = FlConfig::builder().model(spec()).build();
        assert_eq!(cfg.clients, 10);
        assert_eq!(cfg.participation, 0.5);
        assert_eq!(cfg.participants_per_round(), 5);
    }

    #[test]
    fn participants_round_and_clamp() {
        let cfg = FlConfig::builder()
            .clients(3)
            .participation(0.5)
            .model(spec())
            .build();
        assert_eq!(cfg.participants_per_round(), 2);
        let tiny = FlConfig::builder()
            .clients(10)
            .participation(0.01)
            .model(spec())
            .build();
        assert_eq!(tiny.participants_per_round(), 1);
        let all = FlConfig::builder()
            .clients(7)
            .participation(1.0)
            .model(spec())
            .build();
        assert_eq!(all.participants_per_round(), 7);
    }

    #[test]
    fn seed_for_is_stable_and_distinct() {
        let cfg = FlConfig::builder().model(spec()).build();
        assert_eq!(cfg.seed_for("data"), cfg.seed_for("data"));
        assert_ne!(cfg.seed_for("data"), cfg.seed_for("net"));
        let other = FlConfig::builder().seed(7).model(spec()).build();
        assert_ne!(cfg.seed_for("data"), other.seed_for("data"));
    }

    #[test]
    #[should_panic(expected = "model spec is required")]
    fn missing_model_panics() {
        FlConfig::builder().build();
    }

    #[test]
    #[should_panic(expected = "participation")]
    fn invalid_participation_panics() {
        FlConfig::builder().participation(1.5).model(spec()).build();
    }

    #[test]
    fn round_deadline_is_optional_and_validated() {
        let cfg = FlConfig::builder().model(spec()).build();
        assert_eq!(cfg.round_deadline, None);
        let with = FlConfig::builder()
            .round_deadline(3.5)
            .model(spec())
            .build();
        assert_eq!(with.round_deadline, Some(3.5));
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn non_positive_deadline_panics() {
        FlConfig::builder()
            .round_deadline(0.0)
            .model(spec())
            .build();
    }

    #[test]
    fn cohort_fields_default_off_and_build() {
        let cfg = FlConfig::builder().model(spec()).build();
        assert_eq!(cfg.cohort_size, None);
        assert_eq!(cfg.edge_aggregators, 0);
        let scaled = FlConfig::builder()
            .clients(100)
            .cohort_size(16)
            .edge_aggregators(4)
            .model(spec())
            .build();
        assert_eq!(scaled.cohort_size, Some(16));
        assert_eq!(scaled.edge_aggregators, 4);
    }

    #[test]
    #[should_panic(expected = "cohort size")]
    fn zero_cohort_size_panics() {
        FlConfig::builder().cohort_size(0).model(spec()).build();
    }

    #[test]
    #[should_panic(expected = "edge aggregators require cohort")]
    fn edges_without_cohort_panics() {
        FlConfig::builder()
            .edge_aggregators(2)
            .model(spec())
            .build();
    }

    #[test]
    #[should_panic(expected = "more edge aggregators than clients")]
    fn too_many_edges_panics() {
        FlConfig::builder()
            .clients(2)
            .cohort_size(2)
            .edge_aggregators(3)
            .model(spec())
            .build();
    }

    #[test]
    fn cohort_fields_round_trip_json_and_absent_fields_default() {
        let cfg = FlConfig::builder()
            .clients(50)
            .cohort_size(8)
            .edge_aggregators(2)
            .model(spec())
            .build();
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: FlConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, cfg);
        // Configs written before the fields existed still load, with the
        // streaming path off.
        let legacy = r#"{
            "clients": 4, "rounds": 2, "participation": 0.5,
            "local_steps": 1, "batch_size": 8, "learning_rate": 0.02,
            "momentum": 0.9,
            "model": {"LogisticRegression": {"in_features": 4, "classes": 2}},
            "seed": 7, "round_deadline": null
        }"#;
        let old: FlConfig = serde_json::from_str(legacy).expect("legacy json loads");
        assert_eq!(old.cohort_size, None);
        assert_eq!(old.edge_aggregators, 0);
    }
}
