//! Client compute-time models.
//!
//! Simulated training time per local step, so the asynchronous engine (and
//! the sync engine's round-time accounting, Eq. 3 of the paper) can place
//! client completion events on the simulated clock.

use adafl_netsim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-client seconds-per-local-step model with optional jitter.
///
/// # Examples
///
/// ```
/// use adafl_fl::compute::ComputeModel;
///
/// let cm = ComputeModel::uniform(4, 0.1);
/// let t = cm.training_time(2, 10);
/// assert!((t.seconds() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ComputeModel {
    seconds_per_step: Vec<f64>,
    jitter_frac: f64,
    rng_seed: u64,
}

impl ComputeModel {
    /// Every client takes `seconds_per_step` per local step, no jitter.
    ///
    /// # Panics
    ///
    /// Panics when `clients` is zero or `seconds_per_step` is not positive.
    pub fn uniform(clients: usize, seconds_per_step: f64) -> Self {
        assert!(clients > 0, "client count must be positive");
        assert!(seconds_per_step > 0.0, "step time must be positive");
        ComputeModel {
            seconds_per_step: vec![seconds_per_step; clients],
            jitter_frac: 0.0,
            rng_seed: 0,
        }
    }

    /// Heterogeneous fleet: per-client step times supplied directly.
    ///
    /// # Panics
    ///
    /// Panics when `seconds_per_step` is empty or contains a non-positive
    /// value.
    pub fn heterogeneous(seconds_per_step: Vec<f64>) -> Self {
        assert!(!seconds_per_step.is_empty(), "need at least one client");
        assert!(
            seconds_per_step.iter().all(|&s| s > 0.0),
            "step times must be positive"
        );
        ComputeModel {
            seconds_per_step,
            jitter_frac: 0.0,
            rng_seed: 0,
        }
    }

    /// Adds multiplicative jitter of `±frac` to each query, seeded.
    ///
    /// # Panics
    ///
    /// Panics when `frac` is outside `[0, 1)`.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction must be in [0, 1)"
        );
        self.jitter_frac = frac;
        self.rng_seed = seed;
        self
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.seconds_per_step.len()
    }

    /// Nominal step time of one client.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn step_time(&self, client: usize) -> f64 {
        self.seconds_per_step[client]
    }

    /// Scales one client's step time (used to model stale/slow clients).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds or `factor` is not positive.
    pub fn scale_client(&mut self, client: usize, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        self.seconds_per_step[client] *= factor;
    }

    /// Simulated time for `client` to run `steps` local steps.
    ///
    /// Jittered deterministically by `(client, steps)` so repeated queries
    /// agree.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn training_time(&self, client: usize, steps: usize) -> SimTime {
        let base = self.seconds_per_step[client] * steps as f64;
        if self.jitter_frac == 0.0 {
            return SimTime::from_seconds(base);
        }
        let mut rng = StdRng::seed_from_u64(
            self.rng_seed ^ (client as u64).wrapping_mul(0x9E37_79B9) ^ (steps as u64),
        );
        let scale = 1.0 + rng.gen_range(-self.jitter_frac..=self.jitter_frac);
        SimTime::from_seconds(base * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_time_is_linear_in_steps() {
        let cm = ComputeModel::uniform(2, 0.5);
        assert_eq!(cm.training_time(0, 4).seconds(), 2.0);
        assert_eq!(cm.training_time(1, 0).seconds(), 0.0);
        assert_eq!(cm.clients(), 2);
    }

    #[test]
    fn heterogeneous_clients_differ() {
        let cm = ComputeModel::heterogeneous(vec![0.1, 1.0]);
        assert!(cm.training_time(1, 5) > cm.training_time(0, 5));
        assert_eq!(cm.step_time(1), 1.0);
    }

    #[test]
    fn scaling_models_slow_clients() {
        let mut cm = ComputeModel::uniform(2, 1.0);
        cm.scale_client(1, 3.0); // the paper's 3× slower stale clients
        assert_eq!(cm.training_time(1, 1).seconds(), 3.0);
        assert_eq!(cm.training_time(0, 1).seconds(), 1.0);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let cm = ComputeModel::uniform(1, 1.0).with_jitter(0.2, 7);
        let a = cm.training_time(0, 10);
        let b = cm.training_time(0, 10);
        assert_eq!(a, b);
        assert!((8.0..=12.0).contains(&a.seconds()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_time_panics() {
        ComputeModel::uniform(1, 0.0);
    }
}
