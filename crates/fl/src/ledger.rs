//! Communication-cost accounting.
//!
//! Tracks bytes and update counts per client so the harness can report the
//! cost-reduction and update-frequency columns of Tables I/II.

/// Per-client and aggregate communication accounting.
///
/// # Examples
///
/// ```
/// use adafl_fl::CommunicationLedger;
///
/// let mut ledger = CommunicationLedger::new(2);
/// ledger.record_uplink(0, 1_000);
/// ledger.record_downlink(1, 2_000);
/// assert_eq!(ledger.total_bytes(), 3_000);
/// assert_eq!(ledger.uplink_updates(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommunicationLedger {
    up_bytes: Vec<u64>,
    down_bytes: Vec<u64>,
    up_updates: Vec<u64>,
    down_updates: Vec<u64>,
    control_bytes: Vec<u64>,
    control_messages: Vec<u64>,
    retrans_bytes: Vec<u64>,
    retransmissions: Vec<u64>,
    relay_bytes: Vec<u64>,
    relay_messages: Vec<u64>,
}

impl CommunicationLedger {
    /// Creates a ledger for `clients` clients.
    pub fn new(clients: usize) -> Self {
        CommunicationLedger {
            up_bytes: vec![0; clients],
            down_bytes: vec![0; clients],
            up_updates: vec![0; clients],
            down_updates: vec![0; clients],
            control_bytes: vec![0; clients],
            control_messages: vec![0; clients],
            retrans_bytes: vec![0; clients],
            retransmissions: vec![0; clients],
            relay_bytes: vec![0; clients],
            relay_messages: vec![0; clients],
        }
    }

    /// Number of clients tracked.
    pub fn clients(&self) -> usize {
        self.up_bytes.len()
    }

    /// Records one client→server transfer of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn record_uplink(&mut self, client: usize, bytes: usize) {
        self.up_bytes[client] += bytes as u64;
        self.up_updates[client] += 1;
    }

    /// Records one server→client transfer of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn record_downlink(&mut self, client: usize, bytes: usize) {
        self.down_bytes[client] += bytes as u64;
        self.down_updates[client] += 1;
    }

    /// Records a control-plane message (utility-score report, ĝ digest)
    /// of `bytes` for `client`. Control traffic counts toward byte totals
    /// but not toward the update frequency — the paper's "update freq."
    /// counts gradient updates only.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn record_control(&mut self, client: usize, bytes: usize) {
        self.control_bytes[client] += bytes as u64;
        self.control_messages[client] += 1;
    }

    /// Records payload bytes wasted on lost attempts by the reliable
    /// transport (retransmissions, or every attempt of a failed transfer).
    /// These count toward byte totals but never toward update counts — the
    /// payload either already has its `record_uplink`/`record_downlink`
    /// entry or never arrived.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn record_retransmission(&mut self, client: usize, bytes: usize) {
        self.retrans_bytes[client] += bytes as u64;
        self.retransmissions[client] += 1;
    }

    /// Records payload bytes forwarded by mesh relays on `client`'s
    /// behalf: every hop beyond the client's (or server's) own first hop
    /// re-transmits the payload, and those bytes are real radio traffic.
    /// Relay traffic counts toward byte totals but never toward update
    /// counts — the payload's own `record_uplink`/`record_downlink` entry
    /// covers the update. Always zero on star topologies.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn record_relay(&mut self, client: usize, bytes: usize) {
        self.relay_bytes[client] += bytes as u64;
        self.relay_messages[client] += 1;
    }

    /// Total bytes forwarded by mesh relays across clients.
    pub fn relay_bytes(&self) -> u64 {
        self.relay_bytes.iter().sum()
    }

    /// Total relay-charge entries across clients.
    pub fn relay_messages(&self) -> u64 {
        self.relay_messages.iter().sum()
    }

    /// Total payload bytes wasted on lost attempts across clients.
    pub fn retransmission_bytes(&self) -> u64 {
        self.retrans_bytes.iter().sum()
    }

    /// Total retransmission entries across clients.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions.iter().sum()
    }

    /// Total control-plane bytes across clients.
    pub fn control_bytes(&self) -> u64 {
        self.control_bytes.iter().sum()
    }

    /// Total control-plane messages across clients.
    pub fn control_messages(&self) -> u64 {
        self.control_messages.iter().sum()
    }

    /// Total uplink bytes across clients (excluding control traffic).
    pub fn uplink_bytes(&self) -> u64 {
        self.up_bytes.iter().sum()
    }

    /// Total bytes in both directions plus control traffic,
    /// retransmission waste and relay forwarding — the full
    /// communication bill.
    pub fn total_bytes_with_control(&self) -> u64 {
        self.total_bytes() + self.control_bytes() + self.retransmission_bytes() + self.relay_bytes()
    }

    /// Total downlink bytes across clients.
    pub fn downlink_bytes(&self) -> u64 {
        self.down_bytes.iter().sum()
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes() + self.downlink_bytes()
    }

    /// Total client→server updates (the paper's "update frequency").
    pub fn uplink_updates(&self) -> u64 {
        self.up_updates.iter().sum()
    }

    /// Total server→client transfers.
    pub fn downlink_updates(&self) -> u64 {
        self.down_updates.iter().sum()
    }

    /// Uplink bytes for one client.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn client_uplink_bytes(&self, client: usize) -> u64 {
        self.up_bytes[client]
    }

    /// Uplink update count for one client.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn client_uplink_updates(&self, client: usize) -> u64 {
        self.up_updates[client]
    }

    /// Mean uplink payload in bytes, `0.0` before any update.
    pub fn mean_uplink_payload(&self) -> f64 {
        let n = self.uplink_updates();
        if n == 0 {
            0.0
        } else {
            self.uplink_bytes() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut l = CommunicationLedger::new(3);
        l.record_uplink(0, 100);
        l.record_uplink(0, 200);
        l.record_uplink(2, 50);
        l.record_downlink(1, 500);
        assert_eq!(l.uplink_bytes(), 350);
        assert_eq!(l.downlink_bytes(), 500);
        assert_eq!(l.total_bytes(), 850);
        assert_eq!(l.uplink_updates(), 3);
        assert_eq!(l.downlink_updates(), 1);
        assert_eq!(l.client_uplink_bytes(0), 300);
        assert_eq!(l.client_uplink_updates(0), 2);
        assert_eq!(l.clients(), 3);
    }

    #[test]
    fn mean_payload_math() {
        let mut l = CommunicationLedger::new(1);
        assert_eq!(l.mean_uplink_payload(), 0.0);
        l.record_uplink(0, 100);
        l.record_uplink(0, 300);
        assert_eq!(l.mean_uplink_payload(), 200.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_client_panics() {
        CommunicationLedger::new(1).record_uplink(1, 10);
    }

    #[test]
    fn retransmissions_count_bytes_but_not_updates() {
        let mut l = CommunicationLedger::new(2);
        l.record_uplink(0, 1000);
        l.record_retransmission(0, 2000); // two lost attempts' worth
        l.record_control(0, 16); // the ACK
        assert_eq!(l.uplink_updates(), 1);
        assert_eq!(l.retransmissions(), 1);
        assert_eq!(l.retransmission_bytes(), 2000);
        assert_eq!(l.total_bytes(), 1000);
        assert_eq!(l.total_bytes_with_control(), 3016);
    }

    #[test]
    fn relay_traffic_counts_bytes_but_not_updates() {
        let mut l = CommunicationLedger::new(2);
        l.record_uplink(0, 1000);
        l.record_relay(0, 2000); // two relay hops' worth
        assert_eq!(l.uplink_updates(), 1);
        assert_eq!(l.relay_messages(), 1);
        assert_eq!(l.relay_bytes(), 2000);
        assert_eq!(l.total_bytes(), 1000);
        assert_eq!(l.total_bytes_with_control(), 3000);
    }

    #[test]
    fn control_traffic_counts_bytes_but_not_updates() {
        let mut l = CommunicationLedger::new(2);
        l.record_uplink(0, 1000);
        l.record_control(0, 16);
        l.record_control(1, 16);
        assert_eq!(l.uplink_updates(), 1);
        assert_eq!(l.control_messages(), 2);
        assert_eq!(l.control_bytes(), 32);
        assert_eq!(l.total_bytes_with_control(), 1032);
    }
}
