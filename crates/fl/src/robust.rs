//! Byzantine-robust pre-aggregation (ByzFL-style robust aggregators).
//!
//! The [`DefenseGate`](crate::defense::DefenseGate) screens *individually
//! implausible* updates — non-finite values, norm outliers. A colluding
//! adversary defeats it with updates that are plausible one at a time yet
//! poisonous in aggregate (sign-flips preserve norms; little-is-enough
//! shifts stay inside the norm envelope). A [`RobustAggregator`] closes
//! that gap: it runs **between** the gate's screen and the aggregation
//! policy, replacing the screened cohort with a robust estimate of its
//! centre before any [`AggregationPolicy`](crate::runtime::AggregationPolicy)
//! sees it. Because it transforms `Vec<RoundUpdate>` → `Vec<RoundUpdate>`,
//! it composes with every aggregation policy (FedAvg, FedProx, Scaffold,
//! AdaFL) and every wire codec — estimators operate on the decoded dense
//! views, so dense, sparse, quantized and ternary uplinks all feed the
//! same math.
//!
//! # Estimators and breakdown points
//!
//! | method | estimate | tolerates |
//! |---|---|---|
//! | [`RobustMethod::TrimmedMean`] | coordinate-wise mean after dropping the `t` smallest and largest values | `f ≤ t`, `2t < n` |
//! | [`RobustMethod::Median`] | coordinate-wise median | `f < n/2` |
//! | [`RobustMethod::Krum`] | the single update closest to its `n−f−2` nearest neighbours | `2f + 2 < n` |
//! | [`RobustMethod::MultiKrum`] | the `m` best-scored updates, passed through | `2f + 2 < n` |
//! | [`RobustMethod::GeometricMedian`] | Weiszfeld fixed point of Σ‖x − vᵢ‖ | `f < n/2` |
//!
//! # Determinism
//!
//! Every estimator is a pure function of the screened update set: the
//! stage first sorts the cohort by client id, so all floating-point
//! accumulation orders are fixed and the output is **bitwise identical
//! under any permutation of the input** (property-tested). No estimator
//! draws randomness. All comparison-based selection uses
//! [`f32::total_cmp`]/[`f64::total_cmp`], so even non-finite values that
//! slip past a disabled gate order deterministically.

use crate::pool::WorkerPool;
use crate::runtime::{RoundUpdate, UpdatePayload};

/// Columns per parallel job for the coordinate-wise estimators: large
/// enough that per-job overhead is negligible, small enough to spread a
/// CNN-sized gradient across a pool.
const COL_CHUNK: usize = 1024;

/// Which robust estimator replaces the plain weighted mean.
///
/// All parameters are validated by [`RobustAggregator::new`].
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum RobustMethod {
    /// Coordinate-wise trimmed mean: per coordinate, drop the
    /// `⌊trim_ratio·n⌋` smallest and largest values, average the rest.
    /// `trim_ratio = 0` reproduces the plain unweighted mean bit-for-bit.
    TrimmedMean {
        /// Fraction of the cohort trimmed from **each** end, in `[0, 0.5)`.
        trim_ratio: f64,
    },
    /// Coordinate-wise median. Even cohorts average the two middle values
    /// (the same tie-break as the defense gate's norm screen).
    Median,
    /// Krum (Blanchard et al.): score each update by the summed squared
    /// distance to its `n−f−2` nearest neighbours; pass through the single
    /// lowest-scored update.
    Krum {
        /// Number of Byzantine clients the scores budget for.
        f: usize,
    },
    /// Multi-Krum: pass through the `m` lowest-scored updates (ties broken
    /// by client order). `f = 0, m ≥ n` passes every update through
    /// unchanged, reproducing plain aggregation exactly.
    MultiKrum {
        /// Number of Byzantine clients the scores budget for.
        f: usize,
        /// Number of updates passed through (clamped to the cohort size).
        m: usize,
    },
    /// Geometric median via Weiszfeld iteration, started at the
    /// coordinate-wise mean. `max_iters = 0` reproduces the plain
    /// unweighted mean bit-for-bit.
    GeometricMedian {
        /// Iteration cap (64 is plenty at these dimensions).
        max_iters: usize,
        /// Stop once the iterate moves less than this L2 distance.
        tol: f64,
    },
}

impl RobustMethod {
    /// The method's canonical lowercase name, round-tripping through
    /// [`FromStr`](std::str::FromStr) — the spelling JSON experiment
    /// configs and telemetry fields use.
    pub fn as_str(&self) -> &'static str {
        match self {
            RobustMethod::TrimmedMean { .. } => "trimmed-mean",
            RobustMethod::Median => "median",
            RobustMethod::Krum { .. } => "krum",
            RobustMethod::MultiKrum { .. } => "multi-krum",
            RobustMethod::GeometricMedian { .. } => "geometric-median",
        }
    }
}

impl std::str::FromStr for RobustMethod {
    type Err = String;

    /// Parses a canonical method name (case-insensitive) with the default
    /// parameters documented per variant: `trimmed-mean` → ratio 0.25,
    /// `krum` → f 1, `multi-krum` → f 1, m 3, `geometric-median` → 64
    /// iterations at tolerance 1e-9.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "trimmed-mean" | "trimmed_mean" => Ok(RobustMethod::TrimmedMean { trim_ratio: 0.25 }),
            "median" => Ok(RobustMethod::Median),
            "krum" => Ok(RobustMethod::Krum { f: 1 }),
            "multi-krum" | "multi_krum" => Ok(RobustMethod::MultiKrum { f: 1, m: 3 }),
            "geometric-median" | "geometric_median" => Ok(RobustMethod::GeometricMedian {
                max_iters: 64,
                tol: 1e-9,
            }),
            other => Err(format!(
                "unknown robust method {other:?}; expected one of \
                 trimmed-mean, median, krum, multi-krum, geometric-median"
            )),
        }
    }
}

impl std::fmt::Display for RobustMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one robust pre-aggregation pass did, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustStats {
    /// Updates entering the stage (post-screen).
    pub input: usize,
    /// Updates leaving the stage (1 for blend estimators, `m` for
    /// Multi-Krum).
    pub output: usize,
    /// Updates fully excluded by selection (Krum family); 0 for blend
    /// estimators, which down-weight instead of rejecting.
    pub rejected: usize,
    /// Coordinate entries dropped by trimming (`2t·dim` for trimmed mean).
    pub trimmed_values: u64,
}

/// The robust pre-aggregation stage: validated method + the
/// [`RobustAggregator::pre_aggregate`] entry the runtime calls between
/// defense screening and the aggregation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustAggregator {
    method: RobustMethod,
}

impl RobustAggregator {
    /// Wraps a method, validating its parameters.
    ///
    /// # Panics
    ///
    /// Panics when `trim_ratio ∉ [0, 0.5)`, `m = 0`, or `tol` is not a
    /// finite non-negative number.
    pub fn new(method: RobustMethod) -> Self {
        match method {
            RobustMethod::TrimmedMean { trim_ratio } => assert!(
                (0.0..0.5).contains(&trim_ratio),
                "trim ratio must be in [0, 0.5)"
            ),
            RobustMethod::Median | RobustMethod::Krum { .. } => {}
            RobustMethod::MultiKrum { m, .. } => {
                assert!(m >= 1, "multi-krum must keep at least one update")
            }
            RobustMethod::GeometricMedian { tol, .. } => assert!(
                tol.is_finite() && tol >= 0.0,
                "weiszfeld tolerance must be finite and non-negative"
            ),
        }
        RobustAggregator { method }
    }

    /// The configured method.
    pub fn method(&self) -> &RobustMethod {
        &self.method
    }

    /// Replaces a screened cohort with its robust estimate.
    ///
    /// The cohort is first sorted by client id (the canonical order that
    /// makes every estimator permutation-invariant), then densified to
    /// `dim`-length views. Selection methods (Krum, Multi-Krum) pass the
    /// winning updates through untouched — original payloads, weights and
    /// client ids. Blend methods (trimmed mean, median, geometric median)
    /// synthesize a single dense update carrying the estimate, attributed
    /// to the lowest surviving client id with weight 1.0 — robust
    /// estimators are deliberately *unweighted*, since sample counts are
    /// self-reported and a Byzantine client would lie about them.
    ///
    /// Cohorts of one update pass through unchanged: no estimator can
    /// out-vote a lone sender.
    pub fn pre_aggregate(
        &self,
        dim: usize,
        updates: Vec<RoundUpdate>,
    ) -> (Vec<RoundUpdate>, RobustStats) {
        self.pre_aggregate_with(dim, updates, None)
    }

    /// [`RobustAggregator::pre_aggregate`] with an optional worker pool.
    ///
    /// Densification and the estimator's dominant loops (pairwise Krum
    /// distances, coordinate column blocks) fan across the pool; every job
    /// computes a disjoint output slice with an unchanged per-element
    /// reduction order, and [`WorkerPool::scope_run`] collects in
    /// submission order — so results are byte-identical to the serial path
    /// at any pool width.
    pub fn pre_aggregate_with(
        &self,
        dim: usize,
        mut updates: Vec<RoundUpdate>,
        pool: Option<&WorkerPool>,
    ) -> (Vec<RoundUpdate>, RobustStats) {
        let n = updates.len();
        let mut stats = RobustStats {
            input: n,
            output: n,
            ..RobustStats::default()
        };
        if n <= 1 {
            return (updates, stats);
        }
        updates.sort_by_key(|a| a.client);
        // One flat buffer instead of n separate allocations: cheaper to
        // fill, and row slices hand out disjoint &mut chunks for the pool.
        let mut dense = vec![0.0f32; n * dim];
        match pool {
            Some(pool) if pool.workers() > 0 && dim > 0 => {
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = updates
                    .iter()
                    .zip(dense.chunks_mut(dim))
                    .map(|(u, row)| Box::new(move || u.payload.add_scaled_into(row, 1.0)) as Box<_>)
                    .collect();
                pool.scope_run(jobs);
            }
            _ => {
                for (u, row) in updates.iter().zip(dense.chunks_mut(dim.max(1))) {
                    u.payload.add_scaled_into(row, 1.0);
                }
            }
        }
        let views: Vec<&[f32]> = (0..n).map(|i| &dense[i * dim..(i + 1) * dim]).collect();

        let synthesize = |estimate: Vec<f32>, updates: &[RoundUpdate]| RoundUpdate {
            client: updates[0].client,
            payload: UpdatePayload::dense(estimate),
            weight: 1.0,
        };

        match self.method {
            RobustMethod::TrimmedMean { trim_ratio } => {
                let trim = trim_count(n, trim_ratio);
                let estimate = coordinate_trimmed_mean_with(&views, trim, pool);
                stats.output = 1;
                stats.trimmed_values = (2 * trim * dim) as u64;
                let out = vec![synthesize(estimate, &updates)];
                (out, stats)
            }
            RobustMethod::Median => {
                let estimate = coordinate_median_with(&views, pool);
                stats.output = 1;
                let out = vec![synthesize(estimate, &updates)];
                (out, stats)
            }
            RobustMethod::Krum { f } => {
                let winners = krum_select_with(&views, f, 1, pool);
                stats.output = winners.len();
                stats.rejected = n - winners.len();
                let out = take_indices(updates, &winners);
                (out, stats)
            }
            RobustMethod::MultiKrum { f, m } => {
                let winners = krum_select_with(&views, f, m, pool);
                stats.output = winners.len();
                stats.rejected = n - winners.len();
                let out = take_indices(updates, &winners);
                (out, stats)
            }
            RobustMethod::GeometricMedian { max_iters, tol } => {
                let estimate = geometric_median(&views, max_iters, tol);
                stats.output = 1;
                let out = vec![synthesize(estimate, &updates)];
                (out, stats)
            }
        }
    }
}

/// Updates trimmed from each end for a cohort of `n`: `⌊ratio·n⌋`, clamped
/// so at least one value survives (`2t < n`).
pub fn trim_count(n: usize, ratio: f64) -> usize {
    ((ratio * n as f64).floor() as usize).min(n.saturating_sub(1) / 2)
}

/// Keeps `indices` (ascending positions into `updates`), dropping the rest.
fn take_indices(updates: Vec<RoundUpdate>, indices: &[usize]) -> Vec<RoundUpdate> {
    let mut keep = vec![false; updates.len()];
    for &i in indices {
        keep[i] = true;
    }
    updates
        .into_iter()
        .zip(keep)
        .filter_map(|(u, k)| k.then_some(u))
        .collect()
}

/// Coordinate-wise trimmed mean over equal-length views: per coordinate,
/// the `trim` smallest and largest values are dropped and the survivors
/// averaged **in view order**, so `trim = 0` is bit-identical to a plain
/// sequential mean.
///
/// # Panics
///
/// Panics when `views` is empty or `2·trim ≥ n`.
pub fn coordinate_trimmed_mean(views: &[&[f32]], trim: usize) -> Vec<f32> {
    coordinate_trimmed_mean_with(views, trim, None)
}

/// [`coordinate_trimmed_mean`] with an optional worker pool. Columns are
/// split into fixed `COL_CHUNK` blocks; each column's math is untouched,
/// so the result is byte-identical at any pool width.
///
/// # Panics
///
/// Panics when `views` is empty or `2·trim ≥ n`.
pub fn coordinate_trimmed_mean_with(
    views: &[&[f32]],
    trim: usize,
    pool: Option<&WorkerPool>,
) -> Vec<f32> {
    let n = views.len();
    assert!(n > 0, "trimmed mean of an empty cohort");
    assert!(2 * trim < n, "trim must leave at least one survivor");
    let dim = views[0].len();
    let kept = (n - 2 * trim) as f32;
    let mut estimate = vec![0.0f32; dim];
    run_columns(pool, &mut estimate, &|base, cols| {
        trimmed_mean_columns(views, trim, kept, base, cols)
    });
    estimate
}

/// One block of trimmed-mean columns: `cols[off]` receives column
/// `base + off`. Shared by the serial and pooled paths.
fn trimmed_mean_columns(views: &[&[f32]], trim: usize, kept: f32, base: usize, cols: &mut [f32]) {
    let n = views.len();
    let mut col: Vec<(f32, usize)> = Vec::with_capacity(n);
    let mut survivors: Vec<usize> = Vec::with_capacity(n);
    for (off, out) in cols.iter_mut().enumerate() {
        let j = base + off;
        col.clear();
        col.extend(views.iter().enumerate().map(|(i, v)| (v[j], i)));
        // total_cmp gives non-finite values a fixed order; the view index
        // breaks value ties so the survivor set is permutation-stable.
        col.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        survivors.clear();
        survivors.extend(col[trim..n - trim].iter().map(|&(_, i)| i));
        // Summing in ascending view order (not sorted-value order) pins
        // the float accumulation order independently of the data.
        survivors.sort_unstable();
        let mut sum = 0.0f32;
        for &i in &survivors {
            sum += views[i][j];
        }
        *out = sum / kept;
    }
}

/// Runs `work(base, block)` over `out` split into [`COL_CHUNK`] column
/// blocks — across the pool when one is provided and the split pays off,
/// inline otherwise. Blocks are disjoint, so the pool changes nothing but
/// wall-clock time.
fn run_columns(
    pool: Option<&WorkerPool>,
    out: &mut [f32],
    work: &(dyn Fn(usize, &mut [f32]) + Sync),
) {
    match pool {
        Some(pool) if pool.workers() > 0 && out.len() > COL_CHUNK => {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = out
                .chunks_mut(COL_CHUNK)
                .enumerate()
                .map(|(c, block)| Box::new(move || work(c * COL_CHUNK, block)) as Box<_>)
                .collect();
            pool.scope_run(jobs);
        }
        _ => {
            if !out.is_empty() {
                work(0, out);
            }
        }
    }
}

/// Coordinate-wise median over equal-length views. Even cohorts average
/// the two middle values — the same symmetric tie-break the defense gate's
/// norm screen uses.
///
/// # Panics
///
/// Panics when `views` is empty.
pub fn coordinate_median(views: &[&[f32]]) -> Vec<f32> {
    coordinate_median_with(views, None)
}

/// [`coordinate_median`] with an optional worker pool; column blocks are
/// independent, so the result is byte-identical at any pool width.
///
/// # Panics
///
/// Panics when `views` is empty.
pub fn coordinate_median_with(views: &[&[f32]], pool: Option<&WorkerPool>) -> Vec<f32> {
    let n = views.len();
    assert!(n > 0, "median of an empty cohort");
    let dim = views[0].len();
    let mut estimate = vec![0.0f32; dim];
    run_columns(pool, &mut estimate, &|base, cols| {
        let mut col: Vec<f32> = Vec::with_capacity(n);
        for (off, out) in cols.iter_mut().enumerate() {
            let j = base + off;
            col.clear();
            col.extend(views.iter().map(|v| v[j]));
            col.sort_by(f32::total_cmp);
            *out = if n % 2 == 1 {
                col[n / 2]
            } else {
                0.5 * (col[n / 2 - 1] + col[n / 2])
            };
        }
    });
    estimate
}

/// Krum/Multi-Krum selection: scores each view by the summed squared
/// distance to its `k = max(1, n−f−2)` nearest neighbours and returns the
/// positions of the `m` lowest-scored views, ascending. Ties break toward
/// the lower position, so selection is deterministic and
/// permutation-stable; distances involving non-finite values order last
/// under `total_cmp`, so NaN-laden views are never preferred.
///
/// # Panics
///
/// Panics when `views` is empty.
pub fn krum_select(views: &[&[f32]], f: usize, m: usize) -> Vec<usize> {
    krum_select_with(views, f, m, None)
}

/// [`krum_select`] with an optional worker pool: the O(n²·d) pairwise
/// distance matrix is computed one strict-upper-triangle row per job (each
/// row is a disjoint `&mut` slice, so the pool cannot change any value),
/// then mirrored. The per-pair distance itself runs `dist2`'s fixed
/// lane-split reduction, identical at any pool width.
///
/// # Panics
///
/// Panics when `views` is empty.
pub fn krum_select_with(
    views: &[&[f32]],
    f: usize,
    m: usize,
    pool: Option<&WorkerPool>,
) -> Vec<usize> {
    let n = views.len();
    assert!(n > 0, "krum over an empty cohort");
    let m = m.clamp(1, n);
    if n == 1 {
        return vec![0];
    }
    let mut d2 = vec![0.0f64; n * n];
    match pool {
        Some(pool) if pool.workers() > 0 => {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = d2
                .chunks_mut(n)
                .enumerate()
                .map(|(i, row)| {
                    Box::new(move || {
                        for j in (i + 1)..n {
                            row[j] = dist2(views[i], views[j]);
                        }
                    }) as Box<_>
                })
                .collect();
            pool.scope_run(jobs);
        }
        _ => {
            for (i, row) in d2.chunks_mut(n).enumerate() {
                for j in (i + 1)..n {
                    row[j] = dist2(views[i], views[j]);
                }
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            d2[i * n + j] = d2[j * n + i];
        }
    }
    let k = n.saturating_sub(f + 2).clamp(1, n - 1);
    let mut scores: Vec<(f64, usize)> = Vec::with_capacity(n);
    let mut row: Vec<f64> = Vec::with_capacity(n - 1);
    for i in 0..n {
        row.clear();
        row.extend((0..n).filter(|&j| j != i).map(|j| d2[i * n + j]));
        row.sort_by(f64::total_cmp);
        // Ascending partial sum: a fixed accumulation order per candidate.
        let score: f64 = row[..k].iter().sum();
        scores.push((score, i));
    }
    scores.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut selected: Vec<usize> = scores[..m].iter().map(|&(_, i)| i).collect();
    selected.sort_unstable();
    selected
}

/// Squared L2 distance between two equal-length views, accumulated in
/// `f64` across eight independent lanes combined left to right plus a
/// sequential tail. The lane split breaks the serial add-latency chain of
/// a naive running sum (~4-8× faster on the Krum hot path) while keeping
/// a single fixed reduction order — the function is deterministic and is
/// *the* definition of distance for [`krum_select`] at any pool width.
fn dist2(a: &[f32], b: &[f32]) -> f64 {
    const L: usize = 8;
    let mut lanes = [0.0f64; L];
    let chunks = a.len() / L;
    for t in 0..chunks {
        let av = &a[t * L..][..L];
        let bv = &b[t * L..][..L];
        for (x, (&va, &vb)) in lanes.iter_mut().zip(av.iter().zip(bv)) {
            let e = f64::from(va) - f64::from(vb);
            *x += e * e;
        }
    }
    let mut sum = 0.0f64;
    for &x in &lanes {
        sum += x;
    }
    for i in chunks * L..a.len() {
        let e = f64::from(a[i]) - f64::from(b[i]);
        sum += e * e;
    }
    sum
}

/// Geometric median via Weiszfeld iteration, started at the plain mean
/// (`max_iters = 0` returns that mean bit-for-bit). Iterates in `f64`;
/// a view coinciding with the iterate gets its inverse-distance weight
/// clamped at `1e12` instead of dividing by zero.
///
/// # Panics
///
/// Panics when `views` is empty.
pub fn geometric_median(views: &[&[f32]], max_iters: usize, tol: f64) -> Vec<f32> {
    let mean = coordinate_trimmed_mean(views, 0);
    if max_iters == 0 {
        return mean;
    }
    let mut x: Vec<f64> = mean.iter().map(|&v| f64::from(v)).collect();
    let mut next = vec![0.0f64; x.len()];
    for _ in 0..max_iters {
        let mut weight_sum = 0.0f64;
        next.iter_mut().for_each(|v| *v = 0.0);
        for v in views {
            let d2: f64 = v
                .iter()
                .zip(&x)
                .map(|(&a, &b)| {
                    let e = f64::from(a) - b;
                    e * e
                })
                .sum();
            let w = if d2 > 1e-24 { d2.sqrt().recip() } else { 1e12 };
            weight_sum += w;
            for (acc, &a) in next.iter_mut().zip(v.iter()) {
                *acc += w * f64::from(a);
            }
        }
        let mut shift2 = 0.0f64;
        for (acc, xv) in next.iter_mut().zip(x.iter_mut()) {
            *acc /= weight_sum;
            let e = *acc - *xv;
            shift2 += e * e;
            *xv = *acc;
        }
        if shift2.sqrt() <= tol {
            break;
        }
    }
    x.iter().map(|&v| v as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn update(client: usize, values: Vec<f32>, weight: f32) -> RoundUpdate {
        RoundUpdate {
            client,
            payload: UpdatePayload::dense(values),
            weight,
        }
    }

    /// `n` honest views clustered near `base` plus `f` adversarial views.
    fn cohort(
        honest: usize,
        base: f32,
        attackers: usize,
        poison: f32,
        dim: usize,
    ) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for i in 0..honest {
            // Small deterministic spread so honest clients are not identical.
            out.push(
                (0..dim)
                    .map(|j| base + 0.01 * ((i + j) % 5) as f32)
                    .collect(),
            );
        }
        for _ in 0..attackers {
            out.push(vec![poison; dim]);
        }
        out
    }

    fn views(cohort: &[Vec<f32>]) -> Vec<&[f32]> {
        cohort.iter().map(|v| v.as_slice()).collect()
    }

    fn l2(a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let e = f64::from(x) - f64::from(y);
                e * e
            })
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn method_names_round_trip() {
        let methods = [
            RobustMethod::TrimmedMean { trim_ratio: 0.25 },
            RobustMethod::Median,
            RobustMethod::Krum { f: 1 },
            RobustMethod::MultiKrum { f: 1, m: 3 },
            RobustMethod::GeometricMedian {
                max_iters: 64,
                tol: 1e-9,
            },
        ];
        for m in methods {
            let parsed = RobustMethod::from_str(m.as_str()).expect("canonical name parses");
            assert_eq!(parsed.as_str(), m.as_str());
            assert_eq!(format!("{m}"), m.as_str());
        }
        assert!(RobustMethod::from_str("majority-vote").is_err());
    }

    #[test]
    fn trim_count_clamps_to_leave_a_survivor() {
        assert_eq!(trim_count(10, 0.25), 2);
        assert_eq!(trim_count(10, 0.0), 0);
        assert_eq!(trim_count(10, 0.49), 4);
        assert_eq!(trim_count(3, 0.49), 1);
        assert_eq!(trim_count(2, 0.49), 0);
        assert_eq!(trim_count(1, 0.49), 0);
    }

    // --- breakdown-point tests: honest majority recovers, past-breakdown
    // fails as expected ---

    #[test]
    fn trimmed_mean_survives_minority_then_breaks_past_trim() {
        let honest_mean = {
            let c = cohort(6, 1.0, 0, 0.0, 8);
            coordinate_trimmed_mean(&views(&c), 0)
        };
        // 4 of 10 sign-flip-and-boost attackers, trim 4 from each end:
        // estimate stays near the honest mean.
        let c = cohort(6, 1.0, 4, -100.0, 8);
        let est = coordinate_trimmed_mean(&views(&c), 4);
        assert!(l2(&est, &honest_mean) < 0.1, "robust estimate drifted");
        // Same attack but trim 1 < f=4: poison survives trimming and the
        // estimate is dragged far from the honest mean.
        let est = coordinate_trimmed_mean(&views(&c), 1);
        assert!(l2(&est, &honest_mean) > 10.0, "expected breakdown");
    }

    #[test]
    fn median_survives_minority_then_breaks_at_majority() {
        let c = cohort(6, 1.0, 4, -100.0, 4);
        let est = coordinate_median(&views(&c));
        assert!(est.iter().all(|&v| v > 0.5), "median captured by minority");
        // 6 of 10 attackers: the median sits inside the attacker mass.
        let c = cohort(4, 1.0, 6, -100.0, 4);
        let est = coordinate_median(&views(&c));
        assert!(est.iter().all(|&v| v < -50.0), "expected breakdown");
    }

    #[test]
    fn krum_selects_honest_then_breaks_under_collusion() {
        // 7 honest + 3 boosted outliers, f = 3 (2f+2 = 8 < 10): Krum must
        // pick an honest update.
        let c = cohort(7, 1.0, 3, 250.0, 8);
        let sel = krum_select(&views(&c), 3, 1);
        assert!(sel[0] < 7, "krum picked an attacker at {}", sel[0]);
        // 4 colluders sending the *same* vector in a cohort of 6 with an
        // under-budgeted f = 1: each colluder's nearest neighbours are its
        // accomplices at distance 0, so a colluder wins (2f+2 < n fails).
        let c = cohort(2, 1.0, 4, -50.0, 8);
        let sel = krum_select(&views(&c), 1, 1);
        assert!(sel[0] >= 2, "expected a colluder to win past breakdown");
    }

    #[test]
    fn multi_krum_keeps_honest_updates() {
        let c = cohort(7, 1.0, 3, 250.0, 8);
        let sel = krum_select(&views(&c), 3, 4);
        assert_eq!(sel.len(), 4);
        assert!(sel.iter().all(|&i| i < 7), "multi-krum kept an attacker");
        // m clamps to the cohort size.
        assert_eq!(krum_select(&views(&c), 0, 99).len(), 10);
    }

    #[test]
    fn geometric_median_survives_minority_then_breaks_at_majority() {
        let honest_mean = {
            let c = cohort(7, 1.0, 0, 0.0, 8);
            coordinate_trimmed_mean(&views(&c), 0)
        };
        let c = cohort(7, 1.0, 3, 1000.0, 8);
        let est = geometric_median(&views(&c), 128, 1e-9);
        assert!(
            l2(&est, &honest_mean) < 0.5,
            "geometric median dragged to {est:?}"
        );
        // Plain mean is destroyed by the same attack (sanity check that
        // the test attack is actually doing something).
        let mean = coordinate_trimmed_mean(&views(&c), 0);
        assert!(l2(&mean, &honest_mean) > 100.0);
        // 6 of 10 attackers: majority mass wins the geometric median.
        let c = cohort(4, 1.0, 6, 1000.0, 8);
        let est = geometric_median(&views(&c), 128, 1e-9);
        assert!(l2(&est, &honest_mean) > 100.0, "expected breakdown");
    }

    #[test]
    fn weiszfeld_zero_iters_is_exactly_the_mean() {
        let c = cohort(5, 0.3, 2, -7.0, 16);
        let v = views(&c);
        assert_eq!(
            geometric_median(&v, 0, 1e-9),
            coordinate_trimmed_mean(&v, 0)
        );
    }

    #[test]
    fn weiszfeld_handles_coincident_points() {
        // All views identical: the iterate coincides with every view and
        // the clamped weight must not produce NaN.
        let c = vec![vec![2.0f32; 4]; 5];
        let est = geometric_median(&views(&c), 32, 1e-12);
        assert!(est.iter().all(|v| (v - 2.0).abs() < 1e-6), "{est:?}");
    }

    // --- stage-level behaviour ---

    #[test]
    fn pre_aggregate_is_deterministic_and_permutation_invariant() {
        let agg = RobustAggregator::new(RobustMethod::TrimmedMean { trim_ratio: 0.3 });
        let base = vec![
            update(3, vec![1.0, 2.0, 3.0], 5.0),
            update(0, vec![-1.0, 0.5, 2.0], 7.0),
            update(7, vec![100.0, -100.0, 0.0], 1.0),
            update(1, vec![0.9, 1.9, 2.9], 2.0),
        ];
        let mut shuffled = base.clone();
        shuffled.reverse();
        shuffled.swap(0, 2);
        let (a, sa) = agg.pre_aggregate(3, base);
        let (b, sb) = agg.pre_aggregate(3, shuffled);
        assert_eq!(a, b, "output depends on arrival order");
        assert_eq!(sa, sb);
        // Blend estimators attribute the synthetic update to the lowest
        // surviving client id with unit weight.
        assert_eq!(a[0].client, 0);
        assert_eq!(a[0].weight, 1.0);
    }

    #[test]
    fn selection_methods_pass_originals_through() {
        let agg = RobustAggregator::new(RobustMethod::MultiKrum { f: 1, m: 2 });
        let updates = vec![
            update(2, vec![1.0, 1.0], 3.0),
            update(5, vec![1.1, 0.9], 4.0),
            update(9, vec![50.0, -50.0], 2.0),
        ];
        let (out, stats) = agg.pre_aggregate(2, updates.clone());
        assert_eq!(out.len(), 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.output, 2);
        // Winners keep their payloads, weights and client ids.
        assert_eq!(out[0], updates[0]);
        assert_eq!(out[1], updates[1]);
    }

    #[test]
    fn singleton_and_empty_cohorts_pass_through() {
        let agg = RobustAggregator::new(RobustMethod::Median);
        let one = vec![update(4, vec![1.0, 2.0], 6.0)];
        let (out, stats) = agg.pre_aggregate(2, one.clone());
        assert_eq!(out, one);
        assert_eq!(stats.rejected, 0);
        let (out, _) = agg.pre_aggregate(2, Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn blend_estimate_densifies_every_codec() {
        use adafl_compression::top_k;
        // A sparse update must contribute its dense expansion, not its
        // packed value list.
        let agg = RobustAggregator::new(RobustMethod::TrimmedMean { trim_ratio: 0.0 });
        let dense = vec![0.0f32, 4.0, 0.0, -2.0];
        let updates = vec![
            update(0, dense.clone(), 1.0),
            RoundUpdate {
                client: 1,
                payload: UpdatePayload::Sparse(top_k(&dense, 2)),
                weight: 1.0,
            },
        ];
        let (out, _) = agg.pre_aggregate(4, updates);
        assert_eq!(out[0].payload.clone().into_dense(), dense);
    }

    #[test]
    #[should_panic(expected = "trim ratio")]
    fn half_trim_ratio_panics() {
        RobustAggregator::new(RobustMethod::TrimmedMean { trim_ratio: 0.5 });
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn zero_m_panics() {
        RobustAggregator::new(RobustMethod::MultiKrum { f: 1, m: 0 });
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn negative_tol_panics() {
        RobustAggregator::new(RobustMethod::GeometricMedian {
            max_iters: 8,
            tol: -1.0,
        });
    }

    #[test]
    fn nonfinite_values_cannot_win_selection() {
        // Without a defense gate, NaN views must never be preferred.
        let c = vec![
            vec![1.0f32, 1.0],
            vec![1.1, 0.9],
            vec![0.95, 1.05],
            vec![f32::NAN, 1.0],
        ];
        let sel = krum_select(&views(&c), 1, 1);
        assert!(sel[0] < 3, "krum selected the NaN view");
        // Trimmed mean orders NaN to one end; with trim ≥ 1 it is dropped.
        let est = coordinate_trimmed_mean(&views(&c), 1);
        assert!(est.iter().all(|v| v.is_finite()), "{est:?}");
    }
}
