//! Federated clients.

use adafl_data::loader::BatchLoader;
use adafl_data::Dataset;
use adafl_nn::loss::CrossEntropyLoss;
use adafl_nn::models::ModelSpec;
use adafl_nn::optim::{Optimizer, Sgd};
use adafl_nn::{Model, ModelWorkspace};
use adafl_tensor::Tensor;

/// Adjusts a client's local gradient during training.
///
/// Called once per local step with `(gradient, local_params,
/// global_params)`; FedProx adds its proximal term here and SCAFFOLD its
/// control-variate correction.
pub type GradientHook<'a> = &'a mut dyn FnMut(&mut [f32], &[f32], &[f32]);

/// Result of one local training round.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalOutcome {
    /// Parameter delta `w_local − w_global` — the update shipped (possibly
    /// compressed) to the server. Its direction serves as the client's
    /// gradient estimate for AdaFL's utility score.
    pub delta: Vec<f32>,
    /// Mean training loss over the local steps.
    pub mean_loss: f32,
    /// Client dataset size (the FedAvg weighting `n_i`).
    pub num_samples: usize,
    /// Local steps actually run.
    pub steps: usize,
}

/// A federated client: a local model replica plus its private shard.
///
/// # Examples
///
/// ```
/// use adafl_data::synthetic::SyntheticSpec;
/// use adafl_fl::FlClient;
/// use adafl_nn::models::ModelSpec;
///
/// let shard = SyntheticSpec::mnist_like(8, 50).generate(3);
/// let spec = ModelSpec::LogisticRegression { in_features: 64, classes: 10 };
/// let mut client = FlClient::new(0, spec.build(1), shard, 0.05, 0.9, 16, 7);
/// let global = client.model().params_flat();
/// let outcome = client.train_local(&global, 3, None);
/// assert_eq!(outcome.steps, 3);
/// ```
#[derive(Debug)]
pub struct FlClient {
    id: usize,
    model: Model,
    data: Dataset,
    loader: BatchLoader,
    learning_rate: f32,
    momentum: f32,
    /// Persistent local optimizer; reset to zero velocity at the start of
    /// each `train_local` so its semantics match a freshly built one while
    /// its buffer allocation is reused across rounds.
    optimizer: Sgd,
    /// Scratch arena reused by every forward/backward/step — after the
    /// first local step, training performs no heap allocation.
    ws: ModelWorkspace,
    batch_x: Tensor,
    batch_labels: Vec<usize>,
    logits: Tensor,
    dlogits: Tensor,
    dinput: Tensor,
    /// Flat gradient scratch for the gradient-hook path.
    hook_grads: Vec<f32>,
    /// Flat parameter scratch for the gradient-hook path.
    hook_params: Vec<f32>,
}

impl FlClient {
    /// Creates a client.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or hyperparameters are out of range (see
    /// [`Sgd::new`]).
    pub fn new(
        id: usize,
        model: Model,
        data: Dataset,
        learning_rate: f32,
        momentum: f32,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        assert!(!data.is_empty(), "client dataset must not be empty");
        let loader = BatchLoader::new(batch_size, seed ^ (id as u64).wrapping_mul(0x517C_C1B7));
        // Validates hyperparameters eagerly.
        let optimizer = Sgd::new(learning_rate, momentum, 0.0);
        FlClient {
            id,
            model,
            data,
            loader,
            learning_rate,
            momentum,
            optimizer,
            ws: ModelWorkspace::new(),
            batch_x: Tensor::default(),
            batch_labels: Vec::new(),
            logits: Tensor::default(),
            dlogits: Tensor::default(),
            dinput: Tensor::default(),
            hook_grads: Vec::new(),
            hook_params: Vec::new(),
        }
    }

    /// Builds a fleet of clients over pre-partitioned shards, all starting
    /// from the same `spec`-derived initial model.
    ///
    /// Shards that are empty are rejected — callers should re-partition or
    /// drop such clients explicitly.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty or any shard is empty.
    pub fn fleet(
        spec: &ModelSpec,
        shards: Vec<Dataset>,
        learning_rate: f32,
        momentum: f32,
        batch_size: usize,
        seed: u64,
    ) -> Vec<FlClient> {
        assert!(!shards.is_empty(), "need at least one shard");
        shards
            .into_iter()
            .enumerate()
            .map(|(id, shard)| {
                FlClient::new(
                    id,
                    spec.build(seed),
                    shard,
                    learning_rate,
                    momentum,
                    batch_size,
                    seed,
                )
            })
            .collect()
    }

    /// Client identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Rebinds this client object to impersonate client `id` for one
    /// round: installs its shard and reseeds the batch loader from
    /// `(seed, id, round)` so the data order is a deterministic function
    /// of who is being simulated and when — independent of which pool
    /// slot runs it. Model, optimizer and scratch buffers are reused;
    /// `train_local` overwrites parameters from the global model anyway.
    ///
    /// This is the cohort-resident pool's workhorse: a fleet of a million
    /// clients needs only `cohort_size` live [`FlClient`]s.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty.
    pub fn rebind(&mut self, id: usize, data: Dataset, seed: u64, round: u64) {
        assert!(!data.is_empty(), "client dataset must not be empty");
        self.id = id;
        self.data = data;
        self.loader = BatchLoader::new(
            self.loader.batch_size(),
            seed ^ (id as u64).wrapping_mul(0x517C_C1B7)
                ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
    }

    /// The local model replica.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Number of local samples (`n_i`).
    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    /// The client's local learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// The client's local SGD momentum.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Installs global parameters, synchronising the replica.
    ///
    /// # Panics
    ///
    /// Panics when `global.len()` differs from the model's parameter count.
    pub fn sync_to_global(&mut self, global: &[f32]) {
        self.model.set_params_flat(global);
    }

    /// Runs `steps` of local mini-batch SGD starting from `global`,
    /// returning the resulting delta.
    ///
    /// `hook` (if any) may rewrite each step's gradient — this is where
    /// FedProx and SCAFFOLD inject their corrections.
    ///
    /// # Panics
    ///
    /// Panics when `global.len()` differs from the model's parameter count
    /// or `steps` is zero.
    pub fn train_local(
        &mut self,
        global: &[f32],
        steps: usize,
        mut hook: Option<GradientHook<'_>>,
    ) -> LocalOutcome {
        assert!(steps > 0, "local steps must be positive");
        self.model.set_params_flat(global);
        // Zero velocity: same semantics as the fresh optimizer the seed
        // built per call, minus the allocation.
        self.optimizer.reset();
        let mut total_loss = 0.0f32;
        for _ in 0..steps {
            self.loader
                .next_batch_into(&self.data, &mut self.batch_x, &mut self.batch_labels);
            self.model.zero_grads();
            self.model
                .forward_into(&self.batch_x, &mut self.logits, true, &mut self.ws);
            let loss = CrossEntropyLoss.loss_and_grad_into(
                &self.logits,
                &self.batch_labels,
                &mut self.dlogits,
            );
            total_loss += loss;
            self.model
                .backward_into(&self.dlogits, &mut self.dinput, &mut self.ws);
            if let Some(h) = hook.as_mut() {
                self.model.grads_flat_into(&mut self.hook_grads);
                self.model.params_flat_into(&mut self.hook_params);
                h(&mut self.hook_grads, &self.hook_params, global);
                self.optimizer.step(&mut self.hook_params, &self.hook_grads);
                self.model.set_params_flat(&self.hook_params);
                self.model.zero_grads();
            } else {
                self.model
                    .apply_gradient_step_ws(&mut self.optimizer, &mut self.ws);
            }
        }
        // Reuse the flat-parameter scratch for the delta read-back; the
        // delta vector itself escapes, but the steady-state loop no longer
        // allocates a second full-width temporary per round.
        self.model.params_flat_into(&mut self.hook_params);
        let delta: Vec<f32> = self
            .hook_params
            .iter()
            .zip(global)
            .map(|(l, g)| l - g)
            .collect();
        LocalOutcome {
            delta,
            mean_loss: total_loss / steps as f32,
            num_samples: self.data.len(),
            steps,
        }
    }

    /// Runs `steps` of local mini-batch SGD over a parameter *sub-view*:
    /// the heterogeneous-capacity path where the server ships only the
    /// covered coordinates.
    ///
    /// `view_values` are the covered coordinates of the global model
    /// (`view.extract(global)` server-side). They are scattered into the
    /// local replica; *uncovered coordinates keep the client's stale local
    /// values* — the server did not transmit them, and the byte ledger
    /// stays honest. During training the gradient is masked to the view
    /// ([`adafl_nn::SubView::zero_outside`]) so frozen coordinates never
    /// move, and `hook` (FedProx/SCAFFOLD) sees the full-width masked
    /// gradient with the post-scatter parameters as its round anchor.
    ///
    /// The returned [`LocalOutcome::delta`] is **view-local**: element `i`
    /// is the change of the `i`-th covered coordinate, ready to wrap in a
    /// sub-view payload of length `view.view_len()`.
    ///
    /// # Panics
    ///
    /// Panics when `view` does not match the model's parameter count,
    /// `view_values.len()` differs from `view.view_len()`, or `steps` is
    /// zero.
    pub fn train_local_view(
        &mut self,
        view: &adafl_nn::SubView,
        view_values: &[f32],
        steps: usize,
        mut hook: Option<GradientHook<'_>>,
    ) -> LocalOutcome {
        assert!(steps > 0, "local steps must be positive");
        assert_eq!(
            view.dense_len(),
            self.model.param_count(),
            "view dimension mismatch"
        );
        // Install the transmitted slice; the rest of the replica stays.
        self.model.params_flat_into(&mut self.hook_params);
        view.scatter(view_values, &mut self.hook_params);
        self.model.set_params_flat(&self.hook_params);
        // The round anchor the hook receives as its "global" argument:
        // the replica right after synchronisation, like full-width rounds.
        let anchor = self.hook_params.clone();
        self.optimizer.reset();
        let mut total_loss = 0.0f32;
        for _ in 0..steps {
            self.loader
                .next_batch_into(&self.data, &mut self.batch_x, &mut self.batch_labels);
            self.model.zero_grads();
            self.model
                .forward_into(&self.batch_x, &mut self.logits, true, &mut self.ws);
            let loss = CrossEntropyLoss.loss_and_grad_into(
                &self.logits,
                &self.batch_labels,
                &mut self.dlogits,
            );
            total_loss += loss;
            self.model
                .backward_into(&self.dlogits, &mut self.dinput, &mut self.ws);
            self.model.grads_flat_into(&mut self.hook_grads);
            view.zero_outside(&mut self.hook_grads);
            self.model.params_flat_into(&mut self.hook_params);
            if let Some(h) = hook.as_mut() {
                h(&mut self.hook_grads, &self.hook_params, &anchor);
                // Re-mask: a hook term (e.g. FedProx's pull toward the
                // anchor) must not thaw frozen coordinates.
                view.zero_outside(&mut self.hook_grads);
            }
            self.optimizer.step(&mut self.hook_params, &self.hook_grads);
            self.model.set_params_flat(&self.hook_params);
        }
        self.model.params_flat_into(&mut self.hook_params);
        let mut delta = view.extract(&self.hook_params);
        for (d, v) in delta.iter_mut().zip(view_values) {
            *d -= v;
        }
        LocalOutcome {
            delta,
            mean_loss: total_loss / steps as f32,
            num_samples: self.data.len(),
            steps,
        }
    }

    /// Evaluates the local replica on a dataset, returning `(accuracy,
    /// mean_loss)`.
    pub fn evaluate(&mut self, data: &Dataset) -> (f32, f32) {
        evaluate_model(&mut self.model, data)
    }

    /// Computes a one-mini-batch gradient estimate at the replica's
    /// *current* parameters without updating them.
    ///
    /// This is the cheap probe AdaFL's utility score is built on: the
    /// client interrupts training, measures its local gradient direction,
    /// and reports a similarity score — no model transfer involved.
    pub fn probe_gradient(&mut self) -> Vec<f32> {
        self.loader
            .next_batch_into(&self.data, &mut self.batch_x, &mut self.batch_labels);
        self.model.zero_grads();
        self.model
            .forward_into(&self.batch_x, &mut self.logits, true, &mut self.ws);
        let _ = CrossEntropyLoss.loss_and_grad_into(
            &self.logits,
            &self.batch_labels,
            &mut self.dlogits,
        );
        self.model
            .backward_into(&self.dlogits, &mut self.dinput, &mut self.ws);
        let grad = self.model.grads_flat();
        self.model.zero_grads();
        grad
    }
}

/// Evaluates `model` on `data`, returning `(accuracy, mean_loss)`.
///
/// Batches internally so large test sets do not allocate one giant
/// activation tensor.
pub fn evaluate_model(model: &mut Model, data: &Dataset) -> (f32, f32) {
    if data.is_empty() {
        return (0.0, 0.0);
    }
    let mut correct = 0usize;
    let mut loss_sum = 0.0f32;
    let mut batches = 0usize;
    let chunk = 256usize;
    let mut start = 0usize;
    while start < data.len() {
        let end = (start + chunk).min(data.len());
        let indices: Vec<usize> = (start..end).collect();
        let (x, labels) = data.batch(&indices);
        let logits = model.forward(&x, false);
        let preds = logits.argmax_rows().expect("logits are a matrix");
        correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        let (loss, _) = CrossEntropyLoss.loss_and_grad(&logits, &labels);
        loss_sum += loss;
        batches += 1;
        start = end;
    }
    (
        correct as f32 / data.len() as f32,
        loss_sum / batches as f32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adafl_data::partition::Partitioner;
    use adafl_data::synthetic::SyntheticSpec;

    fn spec() -> ModelSpec {
        ModelSpec::LogisticRegression {
            in_features: 64,
            classes: 10,
        }
    }

    fn client() -> FlClient {
        let shard = SyntheticSpec::mnist_like(8, 60).generate(1);
        FlClient::new(0, spec().build(0), shard, 0.05, 0.9, 16, 3)
    }

    #[test]
    fn train_local_returns_nonzero_delta() {
        let mut c = client();
        let global = c.model().params_flat();
        let out = c.train_local(&global, 4, None);
        assert_eq!(out.steps, 4);
        assert_eq!(out.num_samples, 60);
        assert!(out.delta.iter().any(|&d| d != 0.0));
        assert!(out.mean_loss.is_finite());
    }

    #[test]
    fn training_from_same_global_is_deterministic() {
        let mut a = client();
        let mut b = client();
        let global = a.model().params_flat();
        assert_eq!(
            a.train_local(&global, 3, None),
            b.train_local(&global, 3, None)
        );
    }

    #[test]
    fn hook_can_zero_gradients() {
        let mut c = client();
        let global = c.model().params_flat();
        let mut hook = |grad: &mut [f32], _params: &[f32], _global: &[f32]| {
            grad.fill(0.0);
        };
        let out = c.train_local(&global, 3, Some(&mut hook));
        assert!(
            out.delta.iter().all(|&d| d == 0.0),
            "zeroed gradients must freeze params"
        );
    }

    #[test]
    fn hook_sees_global_params() {
        let mut c = client();
        let global = c.model().params_flat();
        let mut saw_global = false;
        let gcopy = global.clone();
        let mut hook = |_grad: &mut [f32], _params: &[f32], g: &[f32]| {
            assert_eq!(g, gcopy.as_slice());
            saw_global = true;
        };
        c.train_local(&global, 1, Some(&mut hook));
        assert!(saw_global);
    }

    #[test]
    fn fleet_starts_from_identical_models() {
        let data = SyntheticSpec::mnist_like(8, 200).generate(2);
        let shards = Partitioner::Iid.split(&data, 4, 0);
        let fleet = FlClient::fleet(&spec(), shards, 0.05, 0.9, 16, 5);
        assert_eq!(fleet.len(), 4);
        let p0 = fleet[0].model().params_flat();
        for c in &fleet[1..] {
            assert_eq!(c.model().params_flat(), p0);
        }
    }

    #[test]
    fn training_improves_local_accuracy() {
        let mut c = client();
        let shard = SyntheticSpec::mnist_like(8, 60).generate(1);
        let (before, _) = c.evaluate(&shard);
        let global = c.model().params_flat();
        for _ in 0..10 {
            let out = c.train_local(&c.model().params_flat().clone(), 5, None);
            let _ = out;
        }
        let _ = global;
        let (after, _) = c.evaluate(&shard);
        assert!(
            after > before,
            "local training did not help: {before} → {after}"
        );
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_shard_panics() {
        FlClient::new(0, spec().build(0), Dataset::empty(64), 0.05, 0.9, 16, 0);
    }

    fn mlp_client() -> FlClient {
        let shard = SyntheticSpec::mnist_like(8, 60).generate(1);
        let spec = ModelSpec::Mlp {
            in_features: 64,
            hidden: vec![16],
            classes: 10,
        };
        FlClient::new(0, spec.build(0), shard, 0.05, 0.9, 16, 3)
    }

    #[test]
    fn full_view_training_is_bitwise_train_local() {
        let mut a = mlp_client();
        let mut b = mlp_client();
        let global = a.model().params_flat();
        let view = adafl_nn::SubView::full(&b.model().segment_map());
        let out_a = a.train_local(&global, 3, None);
        let out_b = b.train_local_view(&view, &global, 3, None);
        assert_eq!(out_a, out_b, "full view must be the trivial case");
    }

    #[test]
    fn view_training_freezes_uncovered_coordinates() {
        let mut c = mlp_client();
        let map = c.model().segment_map();
        let view = adafl_nn::SubView::width(&map, 0.25, 0);
        assert!(!view.is_full());
        let before = c.model().params_flat();
        let values = view.extract(&before);
        let out = c.train_local_view(&view, &values, 3, None);
        assert_eq!(out.delta.len(), view.view_len());
        assert!(out.delta.iter().any(|&d| d != 0.0));
        let after = c.model().params_flat();
        let mut diff: Vec<f32> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
        let unmasked = diff.clone();
        view.zero_outside(&mut diff);
        assert_eq!(diff, unmasked, "all movement must be inside the view");
    }

    #[test]
    fn view_training_freezes_even_with_a_hook() {
        let mut c = mlp_client();
        let map = c.model().segment_map();
        let view = adafl_nn::SubView::layers(&map, 1);
        let before = c.model().params_flat();
        let values = view.extract(&before);
        // A hook that pushes every coordinate (FedProx-like anchored pull
        // plus a constant): must not thaw frozen layers.
        let mut hook = |grad: &mut [f32], params: &[f32], anchor: &[f32]| {
            for ((g, p), a) in grad.iter_mut().zip(params).zip(anchor) {
                *g += 0.1 * (p - a) + 0.05;
            }
        };
        c.train_local_view(&view, &values, 2, Some(&mut hook));
        let after = c.model().params_flat();
        let mut diff: Vec<f32> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
        let unmasked = diff.clone();
        view.zero_outside(&mut diff);
        assert_eq!(diff, unmasked, "hook terms must stay inside the view");
    }
}
