//! The synchronous round engine (FedAvg-style protocol, Eq. 3 of the paper).
//!
//! Since the runtime refactor this type is a thin facade: the round
//! skeleton lives in [`crate::runtime::SyncRuntime`], and `SyncEngine` is
//! the baseline policy bundle — uniform random selection, static
//! client-side compression and a [`SyncStrategy`] aggregation adapter,
//! with the §III round deadline enforced.

use crate::config::FlConfig;
use crate::defense::DefenseConfig;
use crate::history::RunHistory;
use crate::ledger::CommunicationLedger;
use crate::runtime::{RuntimeBuilder, StaticCompressionPolicy, SyncRuntime};
use crate::sync::StaticCompression;
use adafl_data::partition::Partitioner;
use adafl_data::Dataset;
use adafl_netsim::{ReliablePolicy, SimTime};
use adafl_telemetry::SharedRecorder;

/// One client's contribution to a synchronous aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpdate {
    /// Client identifier.
    pub client: usize,
    /// Parameter delta `w_local − w_global`.
    pub delta: Vec<f32>,
    /// Aggregation weight (the client's `n_i`).
    pub weight: f32,
}

/// Server-side behaviour of a synchronous FL strategy.
///
/// The engine owns the protocol (selection, communication, faults); a
/// strategy contributes the client-side gradient correction and the
/// server-side aggregation rule. This split is what lets FedAvg, FedAdam,
/// FedProx and SCAFFOLD share one engine.
pub trait SyncStrategy: std::fmt::Debug + Send + Sync {
    /// Strategy name for run labels.
    fn name(&self) -> &'static str;

    /// Called once before the first round with the model dimension and
    /// client count.
    fn init(&mut self, _dim: usize, _clients: usize) {}

    /// Client-side gradient correction applied at every local step.
    fn gradient_hook(&self, _client: usize, _grad: &mut [f32], _params: &[f32], _global: &[f32]) {}

    /// Called after a client finishes local training (before aggregation),
    /// with its delta and the hyperparameters that produced it. `lr` is the
    /// *effective* per-step learning rate — the engine folds momentum
    /// amplification (`η / (1 − μ)`) in, so SCAFFOLD's control-variate
    /// update stays calibrated under client momentum.
    fn after_local_round(&mut self, _client: usize, _delta: &[f32], _steps: usize, _lr: f32) {}

    /// Folds the round's delivered updates into the global parameters.
    fn aggregate(&mut self, global: &mut [f32], updates: &[ClientUpdate]);
}

/// Synchronous federated-learning engine.
///
/// Each round: sample `⌈r_p·N⌉` participants → broadcast the global model →
/// clients run local SGD → upload deltas over the simulated network (fault
/// plan and link losses apply) → aggregate → evaluate. Round time follows
/// Eq. 3: the slowest participant gates the round.
#[derive(Debug)]
pub struct SyncEngine {
    rt: SyncRuntime,
}

impl SyncEngine {
    /// Creates an engine with a default homogeneous broadband network, a
    /// uniform compute model and no faults.
    ///
    /// # Panics
    ///
    /// Panics when the partitioner produces an empty shard for any client
    /// (use more samples or fewer clients).
    pub fn new(
        config: FlConfig,
        train_set: &Dataset,
        test_set: Dataset,
        partitioner: Partitioner,
        strategy: Box<dyn SyncStrategy>,
    ) -> Self {
        RuntimeBuilder::new(config, test_set)
            .partitioned(train_set, partitioner)
            .build_sync(strategy)
    }

    /// Wraps a fully-assembled runtime (the builder's exit point).
    pub(crate) fn from_runtime(rt: SyncRuntime) -> Self {
        SyncEngine { rt }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &FlConfig {
        self.rt.config()
    }

    /// Enables or disables multi-threaded local training (on by default).
    /// Results are identical either way; this only affects wall-clock time.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.rt.set_parallel(parallel);
    }

    /// Applies a *static* client-side compression scheme to every uplink —
    /// the fixed model-level techniques from the paper's related work
    /// (QSGD \[11], TernGrad \[13], fixed top-k \[10]\[14]). Call before
    /// [`SyncEngine::run`]; resets all per-client compressor state.
    pub fn set_compression(&mut self, scheme: StaticCompression) {
        let seed = self.rt.config().seed_for("compression");
        self.rt
            .set_compression_policy(Box::new(StaticCompressionPolicy::new(scheme, seed)));
    }

    /// Attaches a telemetry recorder, also wiring it into the simulated
    /// network so transfers are traced. Recording is strictly passive: it
    /// never touches the engine's RNGs or the simulated clock, so traced
    /// and untraced runs produce identical histories.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.rt.set_recorder(recorder);
    }

    /// Enables reliable transport: every broadcast and upload runs through
    /// a retry layer with the given policy, and the ledger additionally
    /// charges retransmitted payload bytes and ACK control frames. Off by
    /// default (transfers are fire-and-forget datagrams).
    pub fn set_retry_policy(&mut self, policy: ReliablePolicy) {
        self.rt.set_retry_policy(policy);
    }

    /// Enables the defensive aggregation gate: updates are scrubbed and
    /// screened before [`SyncStrategy::aggregate`], and rounds below the
    /// configured quorum are skipped with state carried forward. Off by
    /// default.
    pub fn set_defense(&mut self, cfg: DefenseConfig) {
        self.rt.set_defense(cfg);
    }

    /// The communication ledger (cumulative).
    pub fn ledger(&self) -> &CommunicationLedger {
        self.rt.ledger()
    }

    /// Current global parameters.
    pub fn global_params(&self) -> &[f32] {
        self.rt.global_params()
    }

    /// Installs global parameters (e.g. restored from a
    /// [`Checkpoint`](crate::checkpoint::Checkpoint)) before running.
    ///
    /// # Panics
    ///
    /// Panics when `params.len()` differs from the model's parameter count.
    pub fn set_global_params(&mut self, params: &[f32]) {
        self.rt.set_global_params(params);
    }

    /// Current simulated time.
    pub fn clock(&self) -> SimTime {
        self.rt.clock()
    }

    /// Runs all configured rounds, returning the evaluation history.
    pub fn run(&mut self) -> RunHistory {
        self.rt.run()
    }

    /// Runs one round; returns the number of updates that reached the
    /// server.
    pub fn run_round(&mut self, round: usize) -> usize {
        self.rt.run_round(round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeModel;
    use crate::faults::FaultPlan;
    use crate::sync::strategies::FedAvg;
    use adafl_data::synthetic::SyntheticSpec;
    use adafl_netsim::{ClientNetwork, LinkProfile, LinkTrace};
    use adafl_nn::models::ModelSpec;
    use adafl_telemetry::names;

    fn small_config(rounds: usize) -> FlConfig {
        FlConfig::builder()
            .clients(4)
            .rounds(rounds)
            .participation(1.0)
            .local_steps(3)
            .batch_size(16)
            .model(ModelSpec::LogisticRegression {
                in_features: 64,
                classes: 10,
            })
            .build()
    }

    fn engine(rounds: usize) -> SyncEngine {
        let data = SyntheticSpec::mnist_like(8, 400).generate(0);
        let (train, test) = data.split_at(320);
        SyncEngine::new(
            small_config(rounds),
            &train,
            test,
            Partitioner::Iid,
            Box::new(FedAvg::new()),
        )
    }

    #[test]
    fn accuracy_improves_over_rounds() {
        let mut e = engine(15);
        let history = e.run();
        assert_eq!(history.len(), 15);
        let first = history.records()[0].accuracy;
        let last = history.final_accuracy();
        assert!(last > first + 0.2, "no learning: {first} → {last}");
    }

    #[test]
    fn ledger_counts_round_trips() {
        let mut e = engine(2);
        e.run();
        // 4 clients × 2 rounds, full participation, lossless broadband.
        assert_eq!(e.ledger().uplink_updates(), 8);
        assert_eq!(e.ledger().downlink_updates(), 8);
        assert!(e.ledger().uplink_bytes() > 0);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut e = engine(3);
        let mut last = SimTime::ZERO;
        let history = e.run();
        for r in history.records() {
            assert!(r.sim_time >= last);
            last = r.sim_time;
        }
        assert!(last.seconds() > 0.0);
    }

    #[test]
    fn runs_are_reproducible() {
        let h1 = engine(5).run();
        let h2 = engine(5).run();
        assert_eq!(h1, h2);
    }

    #[test]
    fn parallel_and_sequential_training_agree_bitwise() {
        let mut par = engine(5);
        par.set_parallel(true);
        let mut seq = engine(5);
        seq.set_parallel(false);
        assert_eq!(par.run(), seq.run());
        assert_eq!(par.global_params(), seq.global_params());
    }

    #[test]
    fn static_compression_cuts_uplink_but_still_learns() {
        let mut dense = engine(12);
        let dense_history = dense.run();
        let mut compressed = engine(12);
        compressed.set_compression(StaticCompression::TopK { ratio: 16.0 });
        let comp_history = compressed.run();
        assert!(
            compressed.ledger().uplink_bytes() < dense.ledger().uplink_bytes() / 4,
            "top-k did not cut bytes: {} vs {}",
            compressed.ledger().uplink_bytes(),
            dense.ledger().uplink_bytes()
        );
        assert!(
            comp_history.final_accuracy() > dense_history.final_accuracy() - 0.25,
            "compression destroyed learning: {} vs {}",
            comp_history.final_accuracy(),
            dense_history.final_accuracy()
        );
    }

    #[test]
    fn quantized_baselines_run() {
        for scheme in [
            StaticCompression::Qsgd { levels: 8 },
            StaticCompression::TernGrad,
        ] {
            let mut e = engine(6);
            e.set_compression(scheme);
            let history = e.run();
            assert!(
                history.final_accuracy() > 0.3,
                "{scheme:?} failed to learn: {}",
                history.final_accuracy()
            );
        }
    }

    #[test]
    fn round_deadline_drops_slow_participants() {
        let data = SyntheticSpec::mnist_like(8, 400).generate(0);
        let (train, test) = data.split_at(320);
        let base = small_config(4);
        let mut cfg = base.clone();
        cfg.round_deadline = Some(1.0);
        let shards = Partitioner::Iid.split(&train, cfg.clients, cfg.seed_for("partition"));
        let network = ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); cfg.clients],
            0,
        );
        // Client 0 takes ~3 s to train — past the 1 s deadline.
        let compute = ComputeModel::heterogeneous(vec![1.0, 0.01, 0.01, 0.01]);
        let mut e = RuntimeBuilder::new(cfg, test)
            .shards(shards)
            .network(network)
            .compute(compute)
            .build_sync(Box::new(FedAvg::new()));
        let history = e.run();
        // Every round: 4 uplinks transmitted, 3 accepted.
        assert!(history.records().iter().all(|r| r.contributors == 3));
        assert_eq!(e.ledger().uplink_updates(), 16);
        // The clock advances by exactly the deadline each round.
        assert!((e.clock().seconds() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_observes_rounds_without_perturbing_results() {
        use adafl_telemetry::InMemoryRecorder;

        let mut plain = engine(3);
        let plain_history = plain.run();
        let mut traced = engine(3);
        let rec = InMemoryRecorder::shared();
        traced.set_recorder(rec.clone());
        let traced_history = traced.run();

        // The determinism invariant: recording never changes the run.
        assert_eq!(plain_history, traced_history);
        assert_eq!(plain.global_params(), traced.global_params());

        let t = rec.snapshot();
        assert_eq!(t.spans_of(names::SPAN_ROUND).count(), 3);
        // 4 clients, full participation, lossless broadband: every round
        // has a compute, uplink and downlink span per client.
        assert_eq!(t.spans_of(names::SPAN_CLIENT_COMPUTE).count(), 12);
        assert_eq!(t.spans_of(names::SPAN_UPLINK).count(), 12);
        assert_eq!(t.spans_of(names::SPAN_DOWNLINK).count(), 12);
        assert_eq!(t.histograms[names::ROUND_SIM_SECONDS].count(), 3);
        // Identity compression: wire bytes equal raw bytes.
        assert_eq!(
            t.counters["compression.bytes_post.none"],
            t.counters["compression.bytes_pre.none"]
        );
    }

    #[test]
    fn dropout_faults_reduce_update_count() {
        let data = SyntheticSpec::mnist_like(8, 400).generate(0);
        let (train, test) = data.split_at(320);
        let cfg = small_config(4);
        let shards = Partitioner::Iid.split(&train, cfg.clients, cfg.seed_for("partition"));
        let network = ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); cfg.clients],
            0,
        );
        let compute = ComputeModel::uniform(cfg.clients, 0.1);
        let faults = FaultPlan::with_fraction(
            cfg.clients,
            0.5,
            crate::faults::FaultKind::Dropout { period: 2 },
            0,
        );
        let mut e = RuntimeBuilder::new(cfg, test)
            .shards(shards)
            .network(network)
            .compute(compute)
            .faults(faults)
            .build_sync(Box::new(FedAvg::new()));
        e.run();
        // 4 clients × 4 rounds = 16 ideal; 2 dropout clients deliver in only
        // 2 of 4 rounds → 12 expected.
        assert_eq!(e.ledger().uplink_updates(), 12);
    }
}
