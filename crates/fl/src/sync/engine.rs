//! The synchronous round engine (FedAvg-style protocol, Eq. 3 of the paper).

use crate::checkpoint::Checkpoint;
use crate::client::{evaluate_model, FlClient};
use crate::compute::ComputeModel;
use crate::config::FlConfig;
use crate::defense::{DefenseConfig, DefenseGate};
use crate::faults::{corrupt_update, FaultKind, FaultPlan};
use crate::history::{RoundRecord, RunHistory};
use crate::ledger::CommunicationLedger;
use crate::pool::WorkerPool;
use crate::sync::{CompressorState, StaticCompression};
use adafl_compression::dense_wire_size;
use adafl_data::partition::Partitioner;
use adafl_data::Dataset;
use adafl_netsim::{
    ClientNetwork, LinkProfile, LinkTrace, ReliablePolicy, ReliableTransfer, SimTime,
};
use adafl_telemetry::{names, EventRecord, SharedRecorder, SpanRecord};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One client's contribution to a synchronous aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpdate {
    /// Client identifier.
    pub client: usize,
    /// Parameter delta `w_local − w_global`.
    pub delta: Vec<f32>,
    /// Aggregation weight (the client's `n_i`).
    pub weight: f32,
}

/// Server-side behaviour of a synchronous FL strategy.
///
/// The engine owns the protocol (selection, communication, faults); a
/// strategy contributes the client-side gradient correction and the
/// server-side aggregation rule. This split is what lets FedAvg, FedAdam,
/// FedProx and SCAFFOLD share one engine.
pub trait SyncStrategy: std::fmt::Debug + Send + Sync {
    /// Strategy name for run labels.
    fn name(&self) -> &'static str;

    /// Called once before the first round with the model dimension and
    /// client count.
    fn init(&mut self, _dim: usize, _clients: usize) {}

    /// Client-side gradient correction applied at every local step.
    fn gradient_hook(&self, _client: usize, _grad: &mut [f32], _params: &[f32], _global: &[f32]) {}

    /// Called after a client finishes local training (before aggregation),
    /// with its delta and the hyperparameters that produced it. `lr` is the
    /// *effective* per-step learning rate — the engine folds momentum
    /// amplification (`η / (1 − μ)`) in, so SCAFFOLD's control-variate
    /// update stays calibrated under client momentum.
    fn after_local_round(&mut self, _client: usize, _delta: &[f32], _steps: usize, _lr: f32) {}

    /// Folds the round's delivered updates into the global parameters.
    fn aggregate(&mut self, global: &mut [f32], updates: &[ClientUpdate]);
}

/// Synchronous federated-learning engine.
///
/// Each round: sample `⌈r_p·N⌉` participants → broadcast the global model →
/// clients run local SGD → upload deltas over the simulated network (fault
/// plan and link losses apply) → aggregate → evaluate. Round time follows
/// Eq. 3: the slowest participant gates the round.
#[derive(Debug)]
pub struct SyncEngine {
    config: FlConfig,
    clients: Vec<FlClient>,
    global: Vec<f32>,
    global_model: adafl_nn::Model,
    test_set: Dataset,
    strategy: Box<dyn SyncStrategy>,
    network: ClientNetwork,
    compute: ComputeModel,
    faults: FaultPlan,
    ledger: CommunicationLedger,
    rng: StdRng,
    clock: SimTime,
    parallel: bool,
    compression: StaticCompression,
    compressors: Vec<CompressorState>,
    recorder: SharedRecorder,
    transport: Option<ReliableTransfer>,
    defense: Option<DefenseGate>,
    crash_checkpoints: Vec<Option<Checkpoint>>,
    pool: WorkerPool,
}

impl SyncEngine {
    /// Creates an engine with a default homogeneous broadband network, a
    /// uniform compute model and no faults.
    ///
    /// # Panics
    ///
    /// Panics when the partitioner produces an empty shard for any client
    /// (use more samples or fewer clients).
    pub fn new(
        config: FlConfig,
        train_set: &Dataset,
        test_set: Dataset,
        partitioner: Partitioner,
        strategy: Box<dyn SyncStrategy>,
    ) -> Self {
        let shards = partitioner.split(train_set, config.clients, config.seed_for("partition"));
        let network = ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); config.clients],
            config.seed_for("network"),
        );
        let compute = ComputeModel::uniform(config.clients, 0.1);
        let faults = FaultPlan::reliable(config.clients);
        SyncEngine::with_parts(config, shards, test_set, strategy, network, compute, faults)
    }

    /// Creates an engine with explicit shards, network, compute model and
    /// fault plan — the constructor the experiment harness uses.
    ///
    /// # Panics
    ///
    /// Panics when shard/network/compute/fault sizes disagree with
    /// `config.clients` or any shard is empty.
    pub fn with_parts(
        config: FlConfig,
        shards: Vec<Dataset>,
        test_set: Dataset,
        mut strategy: Box<dyn SyncStrategy>,
        network: ClientNetwork,
        mut compute: ComputeModel,
        faults: FaultPlan,
    ) -> Self {
        assert_eq!(shards.len(), config.clients, "shard count mismatch");
        assert_eq!(network.len(), config.clients, "network size mismatch");
        assert_eq!(
            compute.clients(),
            config.clients,
            "compute model size mismatch"
        );
        assert_eq!(faults.clients(), config.clients, "fault plan size mismatch");
        let clients = FlClient::fleet(
            &config.model,
            shards,
            config.learning_rate,
            config.momentum,
            config.batch_size,
            config.seed_for("model"),
        );
        let mut global_model = config.model.build(config.seed_for("model"));
        let global = global_model.params_flat();
        // Re-evaluate to ensure consistency between server copy and fleet.
        global_model.set_params_flat(&global);
        strategy.init(global.len(), config.clients);
        // Stale clients run slower.
        for c in 0..config.clients {
            let slow = faults.slowdown(c);
            if slow > 1.0 {
                compute.scale_client(c, slow);
            }
        }
        let rng = StdRng::seed_from_u64(config.seed_for("selection"));
        let compressors = (0..config.clients)
            .map(|c| {
                CompressorState::new(
                    StaticCompression::None,
                    global.len(),
                    config.seed_for("compression") ^ c as u64,
                )
            })
            .collect();
        SyncEngine {
            ledger: CommunicationLedger::new(config.clients),
            parallel: true,
            compression: StaticCompression::None,
            compressors,
            recorder: adafl_telemetry::noop(),
            transport: None,
            defense: None,
            crash_checkpoints: vec![None; config.clients],
            pool: WorkerPool::with_default_size(),
            config,
            clients,
            global,
            global_model,
            test_set,
            strategy,
            network,
            compute,
            faults,
            rng,
            clock: SimTime::ZERO,
        }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// Enables or disables multi-threaded local training (on by default).
    /// Results are identical either way; this only affects wall-clock time.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Applies a *static* client-side compression scheme to every uplink —
    /// the fixed model-level techniques from the paper's related work
    /// (QSGD [11], TernGrad [13], fixed top-k [10][14]). Call before
    /// [`SyncEngine::run`]; resets all per-client compressor state.
    pub fn set_compression(&mut self, scheme: StaticCompression) {
        self.compression = scheme;
        let dim = self.global.len();
        self.compressors = (0..self.config.clients)
            .map(|c| {
                CompressorState::new(scheme, dim, self.config.seed_for("compression") ^ c as u64)
            })
            .collect();
    }

    /// Attaches a telemetry recorder, also wiring it into the simulated
    /// network so transfers are traced. Recording is strictly passive: it
    /// never touches the engine's RNGs or the simulated clock, so traced
    /// and untraced runs produce identical histories.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.network.set_recorder(recorder.clone());
        if let Some(t) = &mut self.transport {
            t.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// Enables reliable transport: every broadcast and upload runs through
    /// a [`ReliableTransfer`] with the given retry policy, and the ledger
    /// additionally charges retransmitted payload bytes and ACK control
    /// frames. Off by default (transfers are fire-and-forget datagrams).
    pub fn set_retry_policy(&mut self, policy: ReliablePolicy) {
        let mut t = ReliableTransfer::new(policy, self.config.seed_for("transport"));
        t.set_recorder(self.recorder.clone());
        self.transport = Some(t);
    }

    /// Enables the defensive aggregation gate: updates are scrubbed and
    /// screened before [`SyncStrategy::aggregate`], and rounds below the
    /// configured quorum are skipped with state carried forward. Off by
    /// default.
    pub fn set_defense(&mut self, cfg: DefenseConfig) {
        self.defense = Some(DefenseGate::new(cfg));
    }

    /// The communication ledger (cumulative).
    pub fn ledger(&self) -> &CommunicationLedger {
        &self.ledger
    }

    /// Current global parameters.
    pub fn global_params(&self) -> &[f32] {
        &self.global
    }

    /// Installs global parameters (e.g. restored from a
    /// [`Checkpoint`](crate::checkpoint::Checkpoint)) before running.
    ///
    /// # Panics
    ///
    /// Panics when `params.len()` differs from the model's parameter count.
    pub fn set_global_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.global.len(),
            "flat parameter length mismatch"
        );
        self.global.copy_from_slice(params);
        self.global_model.set_params_flat(params);
    }

    /// Current simulated time.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Runs all configured rounds, returning the evaluation history.
    pub fn run(&mut self) -> RunHistory {
        let mut history = RunHistory::new(self.strategy.name());
        for round in 0..self.config.rounds {
            let contributors = self.run_round(round);
            let (accuracy, loss) =
                evaluate_global(&mut self.global_model, &self.global, &self.test_set);
            history.push(RoundRecord {
                round,
                sim_time: self.clock,
                accuracy,
                loss,
                uplink_bytes: self.ledger.uplink_bytes(),
                uplink_updates: self.ledger.uplink_updates(),
                contributors,
            });
        }
        history
    }

    /// Runs one round; returns the number of updates that reached the
    /// server.
    pub fn run_round(&mut self, round: usize) -> usize {
        self.handle_crashes(round);
        // The selection RNG is consumed identically with or without crash
        // faults; crashed clients are filtered after sampling.
        let participants: Vec<usize> = self
            .sample_participants()
            .into_iter()
            .filter(|&c| !self.faults.crashed(c, round))
            .collect();
        let payload = dense_wire_size(self.global.len());
        let mut updates: Vec<ClientUpdate> = Vec::new();
        let mut round_time = SimTime::ZERO;
        let mut deadline_hit = false;
        let tracing = self.recorder.enabled();
        let round_start = self.clock;
        let wall_start = self.recorder.wall_micros();

        // Phase 1 — broadcast the global model; clients whose broadcast is
        // lost sit the round out (unless reliable transport saves it).
        let mut ready: Vec<(usize, SimTime)> = Vec::with_capacity(participants.len());
        for &c in &participants {
            let arrival = match &mut self.transport {
                Some(t) => {
                    let report = t.downlink(&mut self.network, c, payload, self.clock);
                    if report.delivered() {
                        self.ledger.record_downlink(c, payload);
                        if report.wasted_bytes > 0 {
                            self.ledger
                                .record_retransmission(c, report.wasted_bytes as usize);
                        }
                        self.ledger.record_control(c, report.control_bytes as usize);
                    } else {
                        self.ledger
                            .record_retransmission(c, report.payload_bytes as usize);
                    }
                    report.arrival
                }
                None => {
                    let down = self.network.downlink_transfer(c, payload, self.clock);
                    self.ledger.record_downlink(c, payload);
                    down.arrival()
                }
            };
            if let Some(t) = arrival {
                ready.push((c, t));
            }
        }

        // Phase 2 — local training, in parallel when enabled. Clients are
        // independent, so parallel wall-clock execution is bit-identical to
        // sequential: outcomes are collected in participant order.
        let outcomes = self.train_ready(&ready);

        // Phase 3 — uplink, fault gating and deadline policy, in
        // deterministic participant order.
        let effective_lr = self.config.learning_rate / (1.0 - self.config.momentum);
        for ((c, downlink_done), outcome) in ready.into_iter().zip(outcomes) {
            self.strategy
                .after_local_round(c, &outcome.delta, outcome.steps, effective_lr);

            // Stale clients' slowdowns were folded into the compute model
            // at construction.
            let steps_time = self
                .compute
                .training_time(c, self.config.local_steps)
                .seconds();
            let train_done = downlink_done + SimTime::from_seconds(steps_time);
            if tracing {
                self.recorder.span(
                    SpanRecord::new(
                        names::SPAN_CLIENT_COMPUTE,
                        downlink_done.seconds(),
                        train_done.seconds(),
                    )
                    .round(round)
                    .client(c)
                    .field("steps", outcome.steps),
                );
            }

            if !self.faults.update_delivered(c, round) {
                if tracing {
                    self.recorder.counter_add(names::FL_DROPOUTS, 1);
                    self.recorder.event(
                        EventRecord::new(names::EVENT_DROPOUT, train_done.seconds())
                            .round(round)
                            .client(c),
                    );
                }
                continue;
            }
            // Static client-side compression (identity by default).
            let (mut sent_delta, wire) = self.compressors[c].compress(&outcome.delta);
            if tracing {
                adafl_compression::record_compression(
                    &self.recorder,
                    self.compression.label(),
                    payload,
                    wire,
                );
            }
            // Corruption faults hit the serialized update in transit; the
            // payload still arrives and the defensive gate must catch it.
            if let Some(seed) = self.faults.corrupts_update(c) {
                corrupt_update(&mut sent_delta, seed);
                if tracing {
                    self.recorder.counter_add(names::FL_CORRUPTIONS, 1);
                    self.recorder.event(
                        EventRecord::new(names::EVENT_CORRUPTION, train_done.seconds())
                            .round(round)
                            .client(c),
                    );
                }
            }
            let uplink_arrival = match &mut self.transport {
                Some(t) => {
                    let report = t.uplink(&mut self.network, c, wire, train_done);
                    if report.delivered() {
                        self.ledger.record_uplink(c, wire);
                        if report.wasted_bytes > 0 {
                            self.ledger
                                .record_retransmission(c, report.wasted_bytes as usize);
                        }
                        self.ledger.record_control(c, report.control_bytes as usize);
                    } else {
                        self.ledger
                            .record_retransmission(c, report.payload_bytes as usize);
                    }
                    report.arrival
                }
                None => {
                    let up = self.network.uplink_transfer(c, wire, train_done);
                    if up.arrival().is_some() {
                        self.ledger.record_uplink(c, wire);
                    }
                    up.arrival()
                }
            };
            match uplink_arrival {
                Some(arrival) => {
                    let elapsed = arrival - self.clock;
                    if let Some(deadline) = self.config.round_deadline {
                        // §III max-wait-time policy: the server drops
                        // updates arriving after the deadline.
                        if elapsed.seconds() > deadline {
                            deadline_hit = true;
                            if tracing {
                                self.recorder.counter_add(names::FL_DEADLINE_MISSES, 1);
                                self.recorder.event(
                                    EventRecord::new(names::EVENT_DEADLINE_MISS, arrival.seconds())
                                        .round(round)
                                        .client(c)
                                        .field("elapsed_seconds", elapsed.seconds()),
                                );
                            }
                            continue;
                        }
                    }
                    round_time = round_time.max(elapsed);
                    updates.push(ClientUpdate {
                        client: c,
                        delta: sent_delta,
                        weight: outcome.num_samples as f32,
                    });
                }
                None => continue,
            }
        }

        // Eq. 3: the round completes when the slowest delivered participant
        // finishes; when the deadline fired, the server waited exactly that
        // long; a round with no delivered update costs the wait timeout.
        if deadline_hit {
            self.clock += SimTime::from_seconds(
                self.config
                    .round_deadline
                    .expect("deadline_hit implies a deadline"),
            );
        } else if updates.is_empty() {
            self.clock += SimTime::from_seconds(0.5);
        } else {
            self.clock += round_time;
        }

        let updates = self.screen_updates(round, updates, participants.len());
        if !updates.is_empty() {
            self.strategy.aggregate(&mut self.global, &updates);
        }
        if tracing {
            let (start, end) = (round_start.seconds(), self.clock.seconds());
            self.recorder
                .histogram_record(names::ROUND_SIM_SECONDS, end - start);
            self.recorder.span(
                SpanRecord::new(names::SPAN_ROUND, start, end)
                    .round(round)
                    .wall(self.recorder.wall_micros().saturating_sub(wall_start))
                    .field("participants", participants.len())
                    .field("delivered", updates.len()),
            );
        }
        updates.len()
    }

    /// Crash-fault bookkeeping at the top of a round: snapshot a client's
    /// state into a [`Checkpoint`] the round its outage begins, restore it
    /// from the decoded checkpoint the round it comes back.
    fn handle_crashes(&mut self, round: usize) {
        let tracing = self.recorder.enabled();
        for c in 0..self.config.clients {
            let FaultKind::Crash { at_round, .. } = self.faults.kind(c) else {
                continue;
            };
            if round == at_round {
                let snapshot = Checkpoint::new(round as u64, self.clients[c].model().params_flat());
                self.crash_checkpoints[c] = Some(snapshot);
                if tracing {
                    self.recorder.counter_add(names::FL_CRASHES, 1);
                    self.recorder.event(
                        EventRecord::new(names::EVENT_CRASH, self.clock.seconds())
                            .round(round)
                            .client(c),
                    );
                }
            } else if self.faults.recovers_at(c, round) {
                if let Some(ckpt) = self.crash_checkpoints[c].take() {
                    // Recovery goes through the wire format: the client
                    // restores from the decoded bytes, exactly as it would
                    // from flash after a reboot.
                    let restored =
                        Checkpoint::decode(&ckpt.encode()).expect("checkpoint round-trips");
                    self.clients[c].sync_to_global(&restored.params);
                    if tracing {
                        self.recorder.counter_add(names::FL_RECOVERIES, 1);
                        self.recorder.event(
                            EventRecord::new(names::EVENT_RECOVERY, self.clock.seconds())
                                .round(round)
                                .client(c)
                                .field("checkpoint_round", restored.round as usize),
                        );
                    }
                }
            }
        }
    }

    /// Defensive aggregation gate: scrubs, norm-screens and quorum-checks
    /// the round's delivered updates. Identity when no defense is set; an
    /// empty result means the round is skipped.
    fn screen_updates(
        &mut self,
        round: usize,
        mut updates: Vec<ClientUpdate>,
        expected: usize,
    ) -> Vec<ClientUpdate> {
        let Some(gate) = self.defense.as_mut() else {
            return updates;
        };
        let tracing = self.recorder.enabled();
        let now = self.clock.seconds();
        let mut kept: Vec<ClientUpdate> = Vec::with_capacity(updates.len());
        let mut norms: Vec<f64> = Vec::with_capacity(updates.len());
        for mut u in updates.drain(..) {
            match gate.sanitize(&mut u.delta) {
                Ok(s) => {
                    if tracing && s.scrubbed > 0 {
                        self.recorder
                            .counter_add(names::FL_DEFENSE_SCRUBBED, s.scrubbed as u64);
                    }
                    norms.push(s.norm);
                    kept.push(u);
                }
                Err(reason) => {
                    if tracing {
                        self.recorder.counter_add(names::FL_DEFENSE_REJECTIONS, 1);
                        self.recorder.event(
                            EventRecord::new(names::EVENT_DEFENSE_REJECT, now)
                                .round(round)
                                .client(u.client)
                                .field("reason", reason.label()),
                        );
                    }
                }
            }
        }
        let verdicts = gate.admit_batch(&norms);
        let mut out: Vec<ClientUpdate> = Vec::with_capacity(kept.len());
        for (u, ok) in kept.into_iter().zip(verdicts) {
            if ok {
                out.push(u);
            } else if tracing {
                self.recorder.counter_add(names::FL_DEFENSE_REJECTIONS, 1);
                self.recorder.event(
                    EventRecord::new(names::EVENT_DEFENSE_REJECT, now)
                        .round(round)
                        .client(u.client)
                        .field("reason", "norm_outlier"),
                );
            }
        }
        if !gate.quorum_met(out.len(), expected) {
            if tracing {
                self.recorder.counter_add(names::FL_QUORUM_SKIPS, 1);
                self.recorder.event(
                    EventRecord::new(names::EVENT_QUORUM_SKIP, now)
                        .round(round)
                        .field("accepted", out.len())
                        .field("expected", expected),
                );
            }
            return Vec::new();
        }
        out
    }

    /// Trains the broadcast-ready clients, returning outcomes in the same
    /// order. Parallel across threads when enabled — clients are mutually
    /// independent during local training, so results do not depend on
    /// scheduling.
    fn train_ready(&mut self, ready: &[(usize, SimTime)]) -> Vec<crate::client::LocalOutcome> {
        let steps = self.config.local_steps;
        let strategy = &self.strategy;
        let global = &self.global;
        // Boolean mask over client ids (O(N), not an O(N²) contains scan),
        // then per-id slots so each ready client's &mut is taken exactly
        // once — in `ready` (participant) order, whatever that order is.
        let mut is_ready = vec![false; self.clients.len()];
        for &(c, _) in ready {
            is_ready[c] = true;
        }
        let mut slots: Vec<Option<&mut FlClient>> = self
            .clients
            .iter_mut()
            .enumerate()
            .map(|(c, client)| is_ready[c].then_some(client))
            .collect();
        let jobs: Vec<Box<dyn FnOnce() -> crate::client::LocalOutcome + Send + '_>> = ready
            .iter()
            .map(|&(c, _)| {
                let client = slots[c].take().expect("ready client listed once");
                Box::new(move || {
                    let mut hook = |grad: &mut [f32], params: &[f32], g: &[f32]| {
                        strategy.gradient_hook(c, grad, params, g);
                    };
                    client.train_local(global, steps, Some(&mut hook))
                }) as Box<_>
            })
            .collect();

        if self.parallel {
            // Persistent pool instead of per-round thread spawning; results
            // come back in submission (participant) order, so parallel and
            // sequential runs stay byte-identical.
            self.pool.scope_run(jobs)
        } else {
            jobs.into_iter().map(|job| job()).collect()
        }
    }

    fn sample_participants(&mut self) -> Vec<usize> {
        let k = self.config.participants_per_round();
        let mut ids: Vec<usize> = (0..self.config.clients).collect();
        ids.shuffle(&mut self.rng);
        ids.truncate(k);
        ids.sort_unstable();
        ids
    }
}

/// Evaluates `params` installed into `model` against `test_set`.
pub(crate) fn evaluate_global(
    model: &mut adafl_nn::Model,
    params: &[f32],
    test_set: &Dataset,
) -> (f32, f32) {
    model.set_params_flat(params);
    evaluate_model(model, test_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::strategies::FedAvg;
    use adafl_data::synthetic::SyntheticSpec;
    use adafl_nn::models::ModelSpec;

    fn small_config(rounds: usize) -> FlConfig {
        FlConfig::builder()
            .clients(4)
            .rounds(rounds)
            .participation(1.0)
            .local_steps(3)
            .batch_size(16)
            .model(ModelSpec::LogisticRegression {
                in_features: 64,
                classes: 10,
            })
            .build()
    }

    fn engine(rounds: usize) -> SyncEngine {
        let data = SyntheticSpec::mnist_like(8, 400).generate(0);
        let (train, test) = data.split_at(320);
        SyncEngine::new(
            small_config(rounds),
            &train,
            test,
            Partitioner::Iid,
            Box::new(FedAvg::new()),
        )
    }

    #[test]
    fn accuracy_improves_over_rounds() {
        let mut e = engine(15);
        let history = e.run();
        assert_eq!(history.len(), 15);
        let first = history.records()[0].accuracy;
        let last = history.final_accuracy();
        assert!(last > first + 0.2, "no learning: {first} → {last}");
    }

    #[test]
    fn ledger_counts_round_trips() {
        let mut e = engine(2);
        e.run();
        // 4 clients × 2 rounds, full participation, lossless broadband.
        assert_eq!(e.ledger().uplink_updates(), 8);
        assert_eq!(e.ledger().downlink_updates(), 8);
        assert!(e.ledger().uplink_bytes() > 0);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut e = engine(3);
        let mut last = SimTime::ZERO;
        let history = e.run();
        for r in history.records() {
            assert!(r.sim_time >= last);
            last = r.sim_time;
        }
        assert!(last.seconds() > 0.0);
    }

    #[test]
    fn runs_are_reproducible() {
        let h1 = engine(5).run();
        let h2 = engine(5).run();
        assert_eq!(h1, h2);
    }

    #[test]
    fn parallel_and_sequential_training_agree_bitwise() {
        let mut par = engine(5);
        par.set_parallel(true);
        let mut seq = engine(5);
        seq.set_parallel(false);
        assert_eq!(par.run(), seq.run());
        assert_eq!(par.global_params(), seq.global_params());
    }

    #[test]
    fn static_compression_cuts_uplink_but_still_learns() {
        let mut dense = engine(12);
        let dense_history = dense.run();
        let mut compressed = engine(12);
        compressed.set_compression(StaticCompression::TopK { ratio: 16.0 });
        let comp_history = compressed.run();
        assert!(
            compressed.ledger().uplink_bytes() < dense.ledger().uplink_bytes() / 4,
            "top-k did not cut bytes: {} vs {}",
            compressed.ledger().uplink_bytes(),
            dense.ledger().uplink_bytes()
        );
        assert!(
            comp_history.final_accuracy() > dense_history.final_accuracy() - 0.25,
            "compression destroyed learning: {} vs {}",
            comp_history.final_accuracy(),
            dense_history.final_accuracy()
        );
    }

    #[test]
    fn quantized_baselines_run() {
        for scheme in [
            StaticCompression::Qsgd { levels: 8 },
            StaticCompression::TernGrad,
        ] {
            let mut e = engine(6);
            e.set_compression(scheme);
            let history = e.run();
            assert!(
                history.final_accuracy() > 0.3,
                "{scheme:?} failed to learn: {}",
                history.final_accuracy()
            );
        }
    }

    #[test]
    fn round_deadline_drops_slow_participants() {
        let data = SyntheticSpec::mnist_like(8, 400).generate(0);
        let (train, test) = data.split_at(320);
        let base = small_config(4);
        let mut cfg = base.clone();
        cfg.round_deadline = Some(1.0);
        let shards = Partitioner::Iid.split(&train, cfg.clients, cfg.seed_for("partition"));
        let network = ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); cfg.clients],
            0,
        );
        // Client 0 takes ~3 s to train — past the 1 s deadline.
        let compute = ComputeModel::heterogeneous(vec![1.0, 0.01, 0.01, 0.01]);
        let mut e = SyncEngine::with_parts(
            cfg,
            shards,
            test,
            Box::new(FedAvg::new()),
            network,
            compute,
            FaultPlan::reliable(4),
        );
        let history = e.run();
        // Every round: 4 uplinks transmitted, 3 accepted.
        assert!(history.records().iter().all(|r| r.contributors == 3));
        assert_eq!(e.ledger().uplink_updates(), 16);
        // The clock advances by exactly the deadline each round.
        assert!((e.clock().seconds() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_observes_rounds_without_perturbing_results() {
        use adafl_telemetry::InMemoryRecorder;

        let mut plain = engine(3);
        let plain_history = plain.run();
        let mut traced = engine(3);
        let rec = InMemoryRecorder::shared();
        traced.set_recorder(rec.clone());
        let traced_history = traced.run();

        // The determinism invariant: recording never changes the run.
        assert_eq!(plain_history, traced_history);
        assert_eq!(plain.global_params(), traced.global_params());

        let t = rec.snapshot();
        assert_eq!(t.spans_of(names::SPAN_ROUND).count(), 3);
        // 4 clients, full participation, lossless broadband: every round
        // has a compute, uplink and downlink span per client.
        assert_eq!(t.spans_of(names::SPAN_CLIENT_COMPUTE).count(), 12);
        assert_eq!(t.spans_of(names::SPAN_UPLINK).count(), 12);
        assert_eq!(t.spans_of(names::SPAN_DOWNLINK).count(), 12);
        assert_eq!(t.histograms[names::ROUND_SIM_SECONDS].count(), 3);
        // Identity compression: wire bytes equal raw bytes.
        assert_eq!(
            t.counters["compression.bytes_post.none"],
            t.counters["compression.bytes_pre.none"]
        );
    }

    #[test]
    fn dropout_faults_reduce_update_count() {
        let data = SyntheticSpec::mnist_like(8, 400).generate(0);
        let (train, test) = data.split_at(320);
        let cfg = small_config(4);
        let shards = Partitioner::Iid.split(&train, cfg.clients, cfg.seed_for("partition"));
        let network = ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); cfg.clients],
            0,
        );
        let compute = ComputeModel::uniform(cfg.clients, 0.1);
        let faults = FaultPlan::with_fraction(
            cfg.clients,
            0.5,
            crate::faults::FaultKind::Dropout { period: 2 },
            0,
        );
        let mut e = SyncEngine::with_parts(
            cfg,
            shards,
            test,
            Box::new(FedAvg::new()),
            network,
            compute,
            faults,
        );
        e.run();
        // 4 clients × 4 rounds = 16 ideal; 2 dropout clients deliver in only
        // 2 of 4 rounds → 12 expected.
        assert_eq!(e.ledger().uplink_updates(), 12);
    }
}
