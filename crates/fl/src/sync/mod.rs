//! Synchronous federated learning: the round engine and its baseline
//! strategies.

pub mod strategies;

mod engine;
mod static_compression;

pub use engine::{ClientUpdate, SyncEngine, SyncStrategy};
pub(crate) use static_compression::CompressorState;
pub use static_compression::StaticCompression;
