//! Synchronous baseline strategies: FedAvg \[19], FedAdam \[34], FedProx \[20]
//! and SCAFFOLD \[21] — the comparison set of Table I.

use super::engine::{ClientUpdate, SyncStrategy};
use adafl_nn::optim::{Adam, Optimizer};
use adafl_tensor::vecops;

fn weighted_mean_delta(updates: &[ClientUpdate]) -> Option<Vec<f32>> {
    let vectors: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
    let weights: Vec<f32> = updates.iter().map(|u| u.weight).collect();
    vecops::weighted_average(&vectors, &weights)
}

/// Federated averaging (McMahan et al. \[19]): the global model moves by the
/// sample-weighted mean of client deltas.
#[derive(Debug, Clone, Default)]
pub struct FedAvg {
    _private: (),
}

impl FedAvg {
    /// Creates the strategy.
    pub fn new() -> Self {
        FedAvg::default()
    }
}

impl SyncStrategy for FedAvg {
    fn name(&self) -> &'static str {
        "fedavg"
    }

    fn aggregate(&mut self, global: &mut [f32], updates: &[ClientUpdate]) {
        if let Some(mean) = weighted_mean_delta(updates) {
            vecops::axpy(global, 1.0, &mean);
        }
    }
}

/// FedAdam (Reddi et al. \[34]): the server treats the negated mean delta as
/// a pseudo-gradient for a server-side Adam optimizer.
#[derive(Debug, Clone)]
pub struct FedAdam {
    adam: Adam,
}

impl FedAdam {
    /// Creates the strategy with server learning rate `server_lr` and the
    /// large adaptivity constant `τ = 10⁻³` the FedAdam paper recommends
    /// (a tiny Adam epsilon makes the normalised server step overshoot the
    /// small per-round deltas of federated training).
    ///
    /// # Panics
    ///
    /// Panics when `server_lr` is not positive.
    pub fn new(server_lr: f32) -> Self {
        FedAdam::with_adaptivity(server_lr, 1e-3)
    }

    /// Creates the strategy with an explicit adaptivity constant `τ`
    /// (Adam's denominator offset).
    ///
    /// # Panics
    ///
    /// Panics when `server_lr` is not positive.
    pub fn with_adaptivity(server_lr: f32, tau: f32) -> Self {
        FedAdam {
            adam: Adam::with_betas(server_lr, 0.9, 0.999, tau),
        }
    }
}

impl SyncStrategy for FedAdam {
    fn name(&self) -> &'static str {
        "fedadam"
    }

    fn aggregate(&mut self, global: &mut [f32], updates: &[ClientUpdate]) {
        if let Some(mean) = weighted_mean_delta(updates) {
            let pseudo_grad: Vec<f32> = mean.iter().map(|d| -d).collect();
            self.adam.step(global, &pseudo_grad);
        }
    }
}

/// FedProx (Li et al. \[20]): FedAvg aggregation plus a client-side proximal
/// term `μ·(w − w_global)` added to every local gradient, limiting client
/// drift under heterogeneity.
#[derive(Debug, Clone)]
pub struct FedProx {
    mu: f32,
}

impl FedProx {
    /// Creates the strategy with proximal coefficient `mu`.
    ///
    /// # Panics
    ///
    /// Panics when `mu` is negative.
    pub fn new(mu: f32) -> Self {
        assert!(mu >= 0.0, "proximal coefficient must be non-negative");
        FedProx { mu }
    }

    /// The proximal coefficient μ.
    pub fn mu(&self) -> f32 {
        self.mu
    }
}

impl SyncStrategy for FedProx {
    fn name(&self) -> &'static str {
        "fedprox"
    }

    fn gradient_hook(&self, _client: usize, grad: &mut [f32], params: &[f32], global: &[f32]) {
        for ((g, p), w) in grad.iter_mut().zip(params).zip(global) {
            *g += self.mu * (p - w);
        }
    }

    fn aggregate(&mut self, global: &mut [f32], updates: &[ClientUpdate]) {
        if let Some(mean) = weighted_mean_delta(updates) {
            vecops::axpy(global, 1.0, &mean);
        }
    }
}

/// FedAdagrad (Reddi et al. \[34]): server-side Adagrad over the mean client
/// delta — the `β₂ → 1`-free sibling of FedAdam from the same paper.
#[derive(Debug, Clone)]
pub struct FedAdagrad {
    lr: f32,
    tau: f32,
    accumulator: Vec<f32>,
}

impl FedAdagrad {
    /// Creates the strategy with server learning rate `server_lr` and
    /// adaptivity constant `τ`.
    ///
    /// # Panics
    ///
    /// Panics when `server_lr` or `tau` is not positive.
    pub fn new(server_lr: f32, tau: f32) -> Self {
        assert!(server_lr > 0.0, "server learning rate must be positive");
        assert!(tau > 0.0, "adaptivity constant must be positive");
        FedAdagrad {
            lr: server_lr,
            tau,
            accumulator: Vec::new(),
        }
    }
}

impl SyncStrategy for FedAdagrad {
    fn name(&self) -> &'static str {
        "fedadagrad"
    }

    fn init(&mut self, dim: usize, _clients: usize) {
        self.accumulator = vec![0.0; dim];
    }

    fn aggregate(&mut self, global: &mut [f32], updates: &[ClientUpdate]) {
        if let Some(mean) = weighted_mean_delta(updates) {
            if self.accumulator.len() != global.len() {
                self.accumulator = vec![0.0; global.len()];
            }
            for ((p, d), v) in global.iter_mut().zip(&mean).zip(&mut self.accumulator) {
                *v += d * d;
                *p += self.lr * d / (v.sqrt() + self.tau);
            }
        }
    }
}

/// FedYogi (Reddi et al. \[34]): the Yogi variant of server-side adaptive
/// optimization, whose sign-controlled second-moment update avoids the
/// variance blow-up Adam can exhibit under heterogeneous client deltas.
#[derive(Debug, Clone)]
pub struct FedYogi {
    lr: f32,
    beta1: f32,
    beta2: f32,
    tau: f32,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl FedYogi {
    /// Creates the strategy with server learning rate `server_lr` and
    /// adaptivity constant `τ` (standard `β₁ = 0.9`, `β₂ = 0.99`).
    ///
    /// # Panics
    ///
    /// Panics when `server_lr` or `tau` is not positive.
    pub fn new(server_lr: f32, tau: f32) -> Self {
        assert!(server_lr > 0.0, "server learning rate must be positive");
        assert!(tau > 0.0, "adaptivity constant must be positive");
        FedYogi {
            lr: server_lr,
            beta1: 0.9,
            beta2: 0.99,
            tau,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl SyncStrategy for FedYogi {
    fn name(&self) -> &'static str {
        "fedyogi"
    }

    fn init(&mut self, dim: usize, _clients: usize) {
        self.m = vec![0.0; dim];
        self.v = vec![self.tau * self.tau; dim];
    }

    fn aggregate(&mut self, global: &mut [f32], updates: &[ClientUpdate]) {
        if let Some(mean) = weighted_mean_delta(updates) {
            if self.m.len() != global.len() {
                self.m = vec![0.0; global.len()];
                self.v = vec![self.tau * self.tau; global.len()];
            }
            for (((p, d), m), v) in global
                .iter_mut()
                .zip(&mean)
                .zip(&mut self.m)
                .zip(&mut self.v)
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * d;
                let d2 = d * d;
                // Yogi: v moves toward d² only as fast as their gap's sign.
                *v -= (1.0 - self.beta2) * d2 * (*v - d2).signum();
                *p += self.lr * *m / (v.sqrt() + self.tau);
            }
        }
    }
}

/// SCAFFOLD (Karimireddy et al. \[21]): stochastic controlled averaging with
/// server (`c`) and per-client (`cᵢ`) control variates correcting client
/// drift: each local gradient becomes `g − cᵢ + c`.
#[derive(Debug, Clone)]
pub struct Scaffold {
    /// Server control variate `c`.
    server_control: Vec<f32>,
    /// Per-client control variates `cᵢ`.
    client_controls: Vec<Vec<f32>>,
    /// Control-variate deltas accumulated this round, drained at aggregate.
    pending: Vec<Vec<f32>>,
    clients: usize,
}

impl Scaffold {
    /// Creates the strategy (state sized lazily by [`SyncStrategy::init`]).
    pub fn new() -> Self {
        Scaffold {
            server_control: Vec::new(),
            client_controls: Vec::new(),
            pending: Vec::new(),
            clients: 0,
        }
    }
}

impl Default for Scaffold {
    fn default() -> Self {
        Scaffold::new()
    }
}

impl SyncStrategy for Scaffold {
    fn name(&self) -> &'static str {
        "scaffold"
    }

    fn init(&mut self, dim: usize, clients: usize) {
        self.server_control = vec![0.0; dim];
        self.client_controls = vec![vec![0.0; dim]; clients];
        self.clients = clients;
    }

    fn gradient_hook(&self, client: usize, grad: &mut [f32], _params: &[f32], _global: &[f32]) {
        let ci = &self.client_controls[client];
        for ((g, c), cc) in grad.iter_mut().zip(&self.server_control).zip(ci) {
            *g += c - cc;
        }
    }

    fn after_local_round(&mut self, client: usize, delta: &[f32], steps: usize, lr: f32) {
        // Option II of the paper: cᵢ⁺ = cᵢ − c + (w_global − w_local)/(K·η)
        //                             = cᵢ − c − Δ/(K·η).
        let scale = 1.0 / (steps as f32 * lr);
        let mut dc = vec![0.0f32; delta.len()];
        for (((d, ci), c), out) in delta
            .iter()
            .zip(&self.client_controls[client])
            .zip(&self.server_control)
            .zip(&mut dc)
        {
            let ci_plus = ci - c - d * scale;
            *out = ci_plus - ci;
        }
        for (ci, d) in self.client_controls[client].iter_mut().zip(&dc) {
            *ci += d;
        }
        self.pending.push(dc);
    }

    fn aggregate(&mut self, global: &mut [f32], updates: &[ClientUpdate]) {
        if let Some(mean) = weighted_mean_delta(updates) {
            vecops::axpy(global, 1.0, &mean);
        }
        // c ← c + (|S|/N) · mean(cᵢ⁺ − cᵢ)
        if !self.pending.is_empty() && self.clients > 0 {
            let s = self.pending.len() as f32;
            let factor = s / self.clients as f32 / s; // = 1/N per pending sum
            for dc in self.pending.drain(..) {
                vecops::axpy(&mut self.server_control, factor, &dc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(deltas: &[&[f32]], weights: &[f32]) -> Vec<ClientUpdate> {
        deltas
            .iter()
            .zip(weights)
            .enumerate()
            .map(|(i, (d, &w))| ClientUpdate {
                client: i,
                delta: d.to_vec(),
                weight: w,
            })
            .collect()
    }

    #[test]
    fn fedavg_moves_by_weighted_mean() {
        let mut s = FedAvg::new();
        let mut global = vec![0.0f32, 0.0];
        let ups = updates(&[&[1.0, 0.0], &[3.0, 2.0]], &[1.0, 3.0]);
        s.aggregate(&mut global, &ups);
        // mean = (1·[1,0] + 3·[3,2]) / 4 = [2.5, 1.5]
        assert_eq!(global, vec![2.5, 1.5]);
    }

    #[test]
    fn fedavg_noop_on_empty_round() {
        let mut s = FedAvg::new();
        let mut global = vec![1.0f32];
        s.aggregate(&mut global, &[]);
        assert_eq!(global, vec![1.0]);
    }

    #[test]
    fn fedadam_moves_in_delta_direction() {
        let mut s = FedAdam::new(0.1);
        let mut global = vec![0.0f32, 0.0];
        let ups = updates(&[&[1.0, -1.0]], &[1.0]);
        s.aggregate(&mut global, &ups);
        assert!(global[0] > 0.0, "should move along the mean delta");
        assert!(global[1] < 0.0);
    }

    #[test]
    fn fedprox_hook_pulls_toward_global() {
        let s = FedProx::new(0.5);
        let mut grad = vec![0.0f32, 0.0];
        s.gradient_hook(0, &mut grad, &[2.0, -2.0], &[0.0, 0.0]);
        assert_eq!(grad, vec![1.0, -1.0]); // 0.5·(params − global)
        assert_eq!(s.mu(), 0.5);
    }

    #[test]
    fn fedprox_zero_mu_is_fedavg() {
        let s = FedProx::new(0.0);
        let mut grad = vec![0.3f32];
        s.gradient_hook(0, &mut grad, &[5.0], &[1.0]);
        assert_eq!(grad, vec![0.3]);
    }

    #[test]
    fn scaffold_controls_start_at_zero_and_update() {
        let mut s = Scaffold::new();
        s.init(2, 4);
        let mut grad = vec![1.0f32, 1.0];
        s.gradient_hook(0, &mut grad, &[0.0, 0.0], &[0.0, 0.0]);
        assert_eq!(grad, vec![1.0, 1.0], "zero controls change nothing");

        // A client that moved by Δ = [-1, 0] over 1 step at lr 1.
        s.after_local_round(0, &[-1.0, 0.0], 1, 1.0);
        // cᵢ⁺ = 0 − 0 − (−1)/1 = 1 on coordinate 0.
        assert_eq!(s.client_controls[0], vec![1.0, 0.0]);

        let mut global = vec![0.0f32, 0.0];
        let ups = updates(&[&[-1.0, 0.0]], &[1.0]);
        s.aggregate(&mut global, &ups);
        assert_eq!(global, vec![-1.0, 0.0]);
        // c moved by (1/N)·Σ dc = 1/4 · [1, 0].
        assert_eq!(s.server_control, vec![0.25, 0.0]);
        assert!(s.pending.is_empty());
    }

    #[test]
    fn scaffold_hook_uses_controls_after_update() {
        let mut s = Scaffold::new();
        s.init(1, 2);
        s.after_local_round(0, &[-2.0], 1, 1.0); // c₀ = 2
        let mut grad = vec![0.0f32];
        s.gradient_hook(0, &mut grad, &[0.0], &[0.0]);
        // grad += c − c₀ = 0 − 2.
        assert_eq!(grad, vec![-2.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mu_panics() {
        FedProx::new(-0.1);
    }

    #[test]
    fn fedadagrad_step_shrinks_as_accumulator_grows() {
        let mut s = FedAdagrad::new(1.0, 1e-3);
        s.init(1, 2);
        let mut global = vec![0.0f32];
        s.aggregate(&mut global, &updates(&[&[1.0]], &[1.0]));
        let first = global[0];
        s.aggregate(&mut global, &updates(&[&[1.0]], &[1.0]));
        let second = global[0] - first;
        assert!(first > 0.0);
        assert!(
            second < first,
            "adagrad step should shrink: {first} then {second}"
        );
    }

    #[test]
    fn fedyogi_moves_along_mean_delta() {
        let mut s = FedYogi::new(0.1, 1e-2);
        s.init(2, 2);
        let mut global = vec![0.0f32, 0.0];
        s.aggregate(&mut global, &updates(&[&[1.0, -1.0]], &[1.0]));
        assert!(global[0] > 0.0);
        assert!(global[1] < 0.0);
    }

    #[test]
    fn fedyogi_bounded_under_repeated_updates() {
        // The sign-controlled v update must keep steps finite and stable.
        let mut s = FedYogi::new(0.1, 1e-2);
        s.init(1, 2);
        let mut global = vec![0.0f32];
        for i in 0..200 {
            let d = if i % 2 == 0 { 1.0 } else { -1.0 };
            s.aggregate(&mut global, &updates(&[&[d]], &[1.0]));
            assert!(global[0].is_finite());
        }
        assert!(global[0].abs() < 10.0, "fedyogi diverged to {}", global[0]);
    }

    #[test]
    fn adaptive_servers_lazily_resize() {
        // init() may be skipped by custom harnesses; aggregate must size
        // its own state.
        let mut s = FedAdagrad::new(0.1, 1e-3);
        let mut global = vec![0.0f32; 3];
        s.aggregate(&mut global, &updates(&[&[1.0, 2.0, 3.0]], &[1.0]));
        assert!(global.iter().all(|p| *p > 0.0));
        let mut y = FedYogi::new(0.1, 1e-2);
        let mut g2 = vec![0.0f32; 2];
        y.aggregate(&mut g2, &updates(&[&[1.0, 1.0]], &[1.0]));
        assert!(g2[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "adaptivity")]
    fn zero_tau_panics() {
        FedAdagrad::new(0.1, 0.0);
    }
}
