//! Static (non-adaptive) client-side update compression for the baseline
//! strategies.
//!
//! The paper's related-work critique is that existing model-level
//! techniques — sparsification [10][14], QSGD quantization [11], TernGrad
//! [13] — apply a *fixed* compression scheme regardless of network
//! conditions or update utility. This module provides exactly those static
//! schemes as engine-level options, so experiments can contrast
//! static-compressed baselines against AdaFL's utility-adaptive rates.

use crate::runtime::UpdatePayload;
use adafl_compression::{top_k, ErrorFeedback, QsgdQuantizer, SparseUpdate, TernGrad};

/// A fixed compression scheme applied to every uplink of every client.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
#[derive(Default)]
pub enum StaticCompression {
    /// Dense `f32` transmission (the default for all baselines).
    #[default]
    None,
    /// Magnitude top-k at a fixed ratio, with error-feedback residuals so
    /// dropped mass is retransmitted later.
    TopK {
        /// Compression ratio ≥ 1 (`32.0` transmits 1 in 32 coordinates).
        ratio: f32,
    },
    /// QSGD stochastic quantization \[11] at a fixed level count.
    Qsgd {
        /// Quantization levels (1–127).
        levels: u8,
    },
    /// TernGrad ternary quantization \[13].
    TernGrad,
}

impl StaticCompression {
    /// Short scheme label used to scope telemetry metric names,
    /// e.g. `compression.bytes_post.topk`.
    pub fn label(&self) -> &'static str {
        match self {
            StaticCompression::None => "none",
            StaticCompression::TopK { .. } => "topk",
            StaticCompression::Qsgd { .. } => "qsgd",
            StaticCompression::TernGrad => "terngrad",
        }
    }
}

/// Per-client compressor state for a [`StaticCompression`] scheme.
#[derive(Debug)]
pub(crate) enum CompressorState {
    None,
    TopK { feedback: ErrorFeedback, ratio: f32 },
    Qsgd(QsgdQuantizer),
    Tern(TernGrad),
}

impl CompressorState {
    pub(crate) fn new(scheme: StaticCompression, dim: usize, seed: u64) -> Self {
        match scheme {
            StaticCompression::None => CompressorState::None,
            StaticCompression::TopK { ratio } => {
                assert!(ratio >= 1.0, "top-k ratio must be ≥ 1");
                CompressorState::TopK {
                    feedback: ErrorFeedback::new(dim),
                    ratio,
                }
            }
            StaticCompression::Qsgd { levels } => {
                CompressorState::Qsgd(QsgdQuantizer::new(levels, seed))
            }
            StaticCompression::TernGrad => CompressorState::Tern(TernGrad::new(seed)),
        }
    }

    /// Compresses `delta` into its typed wire form; the payload's
    /// `encoded_len()` is what the ledger gets charged and its decoded
    /// view is what the server will apply.
    pub(crate) fn compress(&mut self, delta: &[f32]) -> UpdatePayload {
        match self {
            CompressorState::None => UpdatePayload::dense(delta.to_vec()),
            CompressorState::TopK { feedback, ratio } => {
                let k = ((delta.len() as f32 / *ratio).round() as usize).max(1);
                // The error-feedback wrapper wants the dense decoding of
                // what was sent; the sparse form itself is the payload.
                let mut sent: Option<SparseUpdate> = None;
                feedback.compress(delta, |g| {
                    let sparse = top_k(g, k);
                    let dense = sparse.to_dense();
                    sent = Some(sparse);
                    dense
                });
                UpdatePayload::Sparse(sent.expect("compressor closure always runs"))
            }
            CompressorState::Qsgd(q) => UpdatePayload::quantized(q.quantize(delta)),
            CompressorState::Tern(t) => UpdatePayload::ternary(t.ternarize(delta)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::WireForm;
    use adafl_compression::dense_wire_size;

    fn delta() -> Vec<f32> {
        (0..64).map(|i| ((i as f32) * 0.37).sin()).collect()
    }

    #[test]
    fn none_is_identity_at_dense_cost() {
        let mut c = CompressorState::new(StaticCompression::None, 64, 0);
        let payload = c.compress(&delta());
        assert_eq!(payload.encoded_len(), dense_wire_size(64));
        assert_eq!(payload.into_dense(), delta());
    }

    #[test]
    fn top_k_cuts_wire_size_and_keeps_mass_via_feedback() {
        let mut c = CompressorState::new(StaticCompression::TopK { ratio: 8.0 }, 64, 0);
        let payload = c.compress(&delta());
        assert_eq!(payload.form(), WireForm::Sparse);
        assert!(payload.encoded_len() < dense_wire_size(64) / 2);
        let sent1 = payload.into_dense();
        assert_eq!(sent1.iter().filter(|&&v| v != 0.0).count(), 8);
        // Feeding zeros drains the residual: eventually everything arrives.
        let mut total = sent1;
        for _ in 0..32 {
            let sent = c.compress(&vec![0.0; 64]).into_dense();
            for (t, s) in total.iter_mut().zip(&sent) {
                *t += s;
            }
        }
        for (t, d) in total.iter().zip(&delta()) {
            assert!((t - d).abs() < 1e-4, "mass lost: {t} vs {d}");
        }
    }

    #[test]
    fn qsgd_and_terngrad_shrink_wire() {
        for (scheme, form) in [
            (StaticCompression::Qsgd { levels: 8 }, WireForm::Quantized),
            (StaticCompression::TernGrad, WireForm::Ternary),
        ] {
            let mut c = CompressorState::new(scheme, 64, 1);
            let payload = c.compress(&delta());
            assert_eq!(payload.form(), form);
            assert!(
                payload.encoded_len() < dense_wire_size(64),
                "{scheme:?} did not compress"
            );
            assert_eq!(payload.into_dense().len(), 64);
        }
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn sub_unit_ratio_panics() {
        CompressorState::new(StaticCompression::TopK { ratio: 0.5 }, 4, 0);
    }
}
