//! Cohort-resident client pools for fleet-scale simulation.
//!
//! The classic runtime keeps one [`FlClient`] — model replica, optimizer,
//! scratch arenas, data shard — resident per simulated client:
//! O(clients × model) memory that caps realistic runs at tens of
//! thousands of clients. A [`ClientPool`] instead keeps only as many live
//! clients as one cohort, rebinding each slot to the client it simulates
//! this round ([`FlClient::rebind`]) and materialising that client's
//! shard on demand from a [`ShardSource`]. Per-client dense state is
//! O(cohort), data is O(cohort × shard), and the fleet size only shows up
//! in O(clients)-but-tiny structures (link traces, the ledger, the fault
//! plan).
//!
//! Pooled fleets trade per-client *persistence* for memory: a slot's
//! loader is reseeded deterministically from `(seed, client, round)`, so
//! runs are reproducible, but state that must survive on a specific
//! client across rounds — crash checkpoints, utility probes over the full
//! fleet — requires a resident fleet. The runtime asserts those
//! combinations away at construction.

use crate::client::FlClient;
use adafl_data::Dataset;
use adafl_nn::models::ModelSpec;
use std::fmt;

/// Produces client shards on demand, so a pooled fleet never holds more
/// than one cohort's data resident.
pub trait ShardSource: fmt::Debug + Send {
    /// Number of clients this source can shard for.
    fn clients(&self) -> usize;

    /// Materialises client `client`'s shard. Must be deterministic in
    /// `client` — two calls return identical datasets.
    ///
    /// # Panics
    ///
    /// Implementations panic when `client >= self.clients()`.
    fn shard(&self, client: usize) -> Dataset;
}

/// A [`ShardSource`] over pre-partitioned shards, cloning the requested
/// shard on demand. Holds all shards resident — useful for tests and
/// small fleets where the pooled *compute* state is the point, not the
/// data footprint.
#[derive(Debug)]
pub struct VecShardSource {
    shards: Vec<Dataset>,
}

impl VecShardSource {
    /// Wraps pre-partitioned shards.
    pub fn new(shards: Vec<Dataset>) -> Self {
        VecShardSource { shards }
    }
}

impl ShardSource for VecShardSource {
    fn clients(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, client: usize) -> Dataset {
        self.shards[client].clone()
    }
}

/// A pool of cohort-resident [`FlClient`]s: at most one cohort's worth of
/// live clients, rebound to the scheduled client ids each round.
pub struct ClientPool {
    spec: ModelSpec,
    source: Box<dyn ShardSource>,
    slots: Vec<FlClient>,
    learning_rate: f32,
    momentum: f32,
    batch_size: usize,
    seed: u64,
}

impl fmt::Debug for ClientPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientPool")
            .field("clients", &self.source.clients())
            .field("resident_slots", &self.slots.len())
            .field("source", &self.source)
            .finish_non_exhaustive()
    }
}

impl ClientPool {
    /// Creates an empty pool; slots are built lazily the first time a
    /// cohort of that size is checked out, then reused forever.
    pub fn new(
        spec: ModelSpec,
        source: Box<dyn ShardSource>,
        learning_rate: f32,
        momentum: f32,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        ClientPool {
            spec,
            source,
            slots: Vec::new(),
            learning_rate,
            momentum,
            batch_size,
            seed,
        }
    }

    /// Fleet size the pool simulates.
    pub fn clients(&self) -> usize {
        self.source.clients()
    }

    /// Live slots currently resident (peaks at the largest cohort seen).
    pub fn resident_slots(&self) -> usize {
        self.slots.len()
    }

    /// Checks out one slot per scheduled client, each rebound to simulate
    /// its client for round `round`, in the order given. Slots beyond the
    /// cohort size stay untouched and get reused next round.
    ///
    /// # Panics
    ///
    /// Panics when any id is out of range or its shard is empty.
    pub fn checkout(&mut self, ids: &[usize], round: u64) -> Vec<&mut FlClient> {
        while self.slots.len() < ids.len() {
            let c = ids[self.slots.len()];
            self.slots.push(FlClient::new(
                c,
                self.spec.build(self.seed),
                self.source.shard(c),
                self.learning_rate,
                self.momentum,
                self.batch_size,
                self.seed,
            ));
        }
        let slots = &mut self.slots[..ids.len()];
        for (slot, &c) in slots.iter_mut().zip(ids) {
            slot.rebind(c, self.source.shard(c), self.seed, round);
        }
        slots.iter_mut().collect()
    }
}

/// The runtime's client storage: every client resident (classic), or a
/// cohort-sized pool (fleet scale).
#[derive(Debug)]
pub enum Fleet {
    /// One live [`FlClient`] per simulated client.
    Resident(Vec<FlClient>),
    /// Cohort-resident pool over a [`ShardSource`].
    Pooled(ClientPool),
}

impl Fleet {
    /// Whether this fleet is pooled.
    pub fn is_pooled(&self) -> bool {
        matches!(self, Fleet::Pooled(_))
    }

    /// Live [`FlClient`]s currently resident: the whole fleet for
    /// resident storage, the peak cohort seen so far for pooled storage.
    pub fn resident_count(&self) -> usize {
        match self {
            Fleet::Resident(clients) => clients.len(),
            Fleet::Pooled(pool) => pool.resident_slots(),
        }
    }

    /// The resident clients as a mutable slice — the whole fleet for
    /// resident storage, empty for pooled storage (selection policies
    /// that probe individual clients need a resident fleet).
    pub fn resident_mut(&mut self) -> &mut [FlClient] {
        match self {
            Fleet::Resident(clients) => clients,
            Fleet::Pooled(_) => &mut [],
        }
    }

    /// Mutable access to one resident client (crash checkpoint/restore).
    ///
    /// # Panics
    ///
    /// Panics on a pooled fleet — the runtime rejects crash faults with
    /// pooled storage at construction, so this is unreachable there.
    pub fn resident_client(&mut self, client: usize) -> &mut FlClient {
        match self {
            Fleet::Resident(clients) => &mut clients[client],
            Fleet::Pooled(_) => {
                unreachable!("pooled fleets reject per-client persistent state")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adafl_data::synthetic::SyntheticSpec;

    fn spec() -> ModelSpec {
        ModelSpec::LogisticRegression {
            in_features: 64,
            classes: 10,
        }
    }

    fn source(clients: usize) -> Box<dyn ShardSource> {
        let data = SyntheticSpec::mnist_like(8, clients * 20).generate(3);
        let shards = adafl_data::partition::Partitioner::Iid.split(&data, clients, 0);
        Box::new(VecShardSource::new(shards))
    }

    #[test]
    fn pool_reuses_slots_across_cohorts() {
        let mut pool = ClientPool::new(spec(), source(10), 0.05, 0.9, 8, 7);
        let a = pool.checkout(&[0, 3, 5], 0);
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].id(), 3);
        drop(a);
        assert_eq!(pool.resident_slots(), 3);
        let b = pool.checkout(&[7, 9], 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].id(), 7);
        drop(b);
        // Two cohorts later, still only the peak cohort's slots exist.
        assert_eq!(pool.resident_slots(), 3);
    }

    #[test]
    fn pooled_training_is_deterministic_per_client_and_round() {
        let shards = {
            let data = SyntheticSpec::mnist_like(8, 200).generate(3);
            adafl_data::partition::Partitioner::Iid.split(&data, 10, 0)
        };
        let mut pool_a = ClientPool::new(
            spec(),
            Box::new(VecShardSource::new(shards.clone())),
            0.05,
            0.9,
            8,
            7,
        );
        let mut pool_b = ClientPool::new(
            spec(),
            Box::new(VecShardSource::new(shards)),
            0.05,
            0.9,
            8,
            7,
        );
        let global = spec().build(7).params_flat();
        // Same client, same round, different slot position → same outcome.
        let mut a = pool_a.checkout(&[2, 4], 0);
        let out_a = a[1].train_local(&global, 3, None);
        drop(a);
        let mut b = pool_b.checkout(&[4], 0);
        let out_b = b[0].train_local(&global, 3, None);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn fleet_pooled_exposes_no_resident_clients() {
        let mut fleet = Fleet::Pooled(ClientPool::new(spec(), source(4), 0.05, 0.9, 8, 7));
        assert!(fleet.is_pooled());
        assert!(fleet.resident_mut().is_empty());
    }
}
