//! Federated-learning framework for the AdaFL reproduction.
//!
//! Provides everything around the paper's contribution: clients that train
//! local models ([`FlClient`]), a synchronous round engine
//! ([`sync::SyncEngine`]) with the FedAvg / FedAdam / FedProx / SCAFFOLD
//! baselines, an asynchronous event-driven engine
//! (`async::AsyncEngine`) with FedAsync / FedBuff, network integration
//! via `adafl-netsim`, fault injection ([`faults`]) for the paper's
//! resiliency study (Figure 1), and communication accounting ([`ledger`])
//! for Tables I/II.
//!
//! The AdaFL strategy itself lives in `adafl-core`, which builds on the
//! primitives here.
//!
//! # Examples
//!
//! ```no_run
//! use adafl_data::{partition::Partitioner, synthetic::SyntheticSpec};
//! use adafl_fl::{config::FlConfig, sync::{SyncEngine, strategies::FedAvg}};
//! use adafl_nn::models::ModelSpec;
//!
//! let data = SyntheticSpec::mnist_like(16, 1000).generate(0);
//! let (train, test) = data.split_at(800);
//! let cfg = FlConfig::builder()
//!     .clients(10)
//!     .rounds(20)
//!     .model(ModelSpec::LogisticRegression { in_features: 256, classes: 10 })
//!     .build();
//! let mut engine = SyncEngine::new(cfg, &train, test, Partitioner::Iid, Box::new(FedAvg::new()));
//! let history = engine.run();
//! println!("final accuracy {}", history.final_accuracy());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod r#async;
pub mod checkpoint;
pub mod client;
pub mod compute;
pub mod config;
pub mod defense;
pub mod faults;
pub mod fleet;
pub mod history;
pub mod ledger;
pub mod pool;
pub mod robust;
pub mod runtime;
pub mod submodel;
pub mod sync;

pub use client::{FlClient, LocalOutcome};
pub use config::FlConfig;
pub use fleet::{ClientPool, Fleet, ShardSource, VecShardSource};
pub use history::{RoundRecord, RunHistory};
pub use ledger::CommunicationLedger;
pub use submodel::{CapacityPolicy, CapacityTier, StaticCapacity};
