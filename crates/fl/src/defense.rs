//! Defensive aggregation: the server-side gate protecting the global model
//! from corrupt or adversarial updates.
//!
//! One poisoned payload — a NaN from a truncated transfer, an Inf from a
//! bit flip, a 1e30 blow-up — would otherwise propagate through FedAvg's
//! mean into every client forever. The gate applies three screens, in the
//! spirit of ByzFL's robust-aggregation pre-filters:
//!
//! 1. **Scrub** — non-finite coordinates are zeroed; updates where more
//!    than a configurable fraction of coordinates are non-finite are
//!    rejected outright (the payload is garbage, not noise).
//! 2. **Norm screen** — updates whose L2 norm exceeds a configurable
//!    multiple of the running median norm are rejected (magnitude
//!    blow-ups and scaling attacks).
//! 3. **Quorum** — a synchronous round only aggregates when at least a
//!    quorum fraction of the expected cohort survives screening; below
//!    quorum the round is skipped and state carries forward.
//!
//! All norm arithmetic runs in `f64` so corrupted `f32` payloads near
//! `f32::MAX` cannot overflow the screen itself.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Thresholds of the defensive aggregation gate.
///
/// # Examples
///
/// ```
/// use adafl_fl::defense::{DefenseConfig, DefenseGate};
///
/// let mut gate = DefenseGate::new(DefenseConfig::default());
/// let mut update = vec![0.1f32; 100];
/// update[7] = f32::NAN; // 1% non-finite: scrubbed, not rejected
/// let ok = gate.sanitize(&mut update).unwrap();
/// assert_eq!(ok.scrubbed, 1);
/// assert_eq!(update[7], 0.0);
/// ```
#[derive(Serialize, Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct DefenseConfig {
    /// Reject an update whose L2 norm exceeds this multiple of the running
    /// median norm (once enough history exists).
    pub norm_multiple: f64,
    /// Number of accepted norms kept as the running-median window.
    pub norm_window: usize,
    /// Reject an update when more than this fraction of its coordinates is
    /// non-finite; below it they are scrubbed to zero.
    pub max_nonfinite_fraction: f64,
    /// Minimum fraction of the expected cohort that must survive screening
    /// for a synchronous round to aggregate (`0.0` disables the quorum).
    pub quorum: f64,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            norm_multiple: 10.0,
            norm_window: 64,
            max_nonfinite_fraction: 0.05,
            quorum: 0.0,
        }
    }
}

impl DefenseConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when `norm_multiple ≤ 1`, `norm_window == 0`, or a fraction
    /// is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.norm_multiple.is_finite() && self.norm_multiple > 1.0,
            "norm_multiple must be a finite value above 1"
        );
        assert!(self.norm_window >= 1, "norm_window must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.max_nonfinite_fraction),
            "max_nonfinite_fraction must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.quorum),
            "quorum must be in [0, 1]"
        );
    }
}

/// Why the gate rejected an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// Too many non-finite coordinates to salvage by scrubbing.
    NonFinite,
    /// L2 norm exceeded the running-median screen.
    NormOutlier,
}

impl RejectReason {
    /// Stable label used in telemetry events.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::NonFinite => "non_finite",
            RejectReason::NormOutlier => "norm_outlier",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Result of sanitizing one update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sanitized {
    /// Non-finite coordinates scrubbed to zero.
    pub scrubbed: usize,
    /// L2 norm of the (scrubbed) update, computed in `f64`.
    pub norm: f64,
}

/// Minimum accepted norms before the median screen activates; screening
/// against a near-empty history would reject legitimate early variance.
const MIN_HISTORY: usize = 3;

/// Stateful defensive gate: holds the thresholds plus the running window
/// of accepted update norms.
#[derive(Debug, Clone)]
pub struct DefenseGate {
    cfg: DefenseConfig,
    norms: VecDeque<f64>,
}

impl DefenseGate {
    /// Creates a gate.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid
    /// (see [`DefenseConfig::validate`]).
    pub fn new(cfg: DefenseConfig) -> Self {
        cfg.validate();
        DefenseGate {
            cfg,
            norms: VecDeque::with_capacity(cfg.norm_window),
        }
    }

    /// The gate's configuration.
    pub fn config(&self) -> &DefenseConfig {
        &self.cfg
    }

    /// Screen 1: scrubs non-finite coordinates in place and measures the
    /// update. Does **not** consult or update the norm history — norm
    /// admission is a separate step so sync engines can screen a whole
    /// round's batch against one consistent median.
    ///
    /// # Errors
    ///
    /// Returns [`RejectReason::NonFinite`] when more than
    /// `max_nonfinite_fraction` of the coordinates is non-finite.
    pub fn sanitize(&self, update: &mut [f32]) -> Result<Sanitized, RejectReason> {
        let bad = update.iter().filter(|v| !v.is_finite()).count();
        if !update.is_empty() && bad as f64 > self.cfg.max_nonfinite_fraction * update.len() as f64
        {
            return Err(RejectReason::NonFinite);
        }
        let mut norm_sq = 0.0f64;
        for v in update.iter_mut() {
            if !v.is_finite() {
                *v = 0.0;
            }
            norm_sq += (*v as f64) * (*v as f64);
        }
        Ok(Sanitized {
            scrubbed: bad,
            norm: norm_sq.sqrt(),
        })
    }

    /// Screen 2 for a synchronous round: admits or rejects each norm in
    /// `batch` against the median of history ∪ batch, then pushes the
    /// admitted norms into the history window. Screening the batch against
    /// one median (rather than sequentially) keeps the decision independent
    /// of client iteration order.
    pub fn admit_batch(&mut self, batch: &[f64]) -> Vec<bool> {
        let mut reference: Vec<f64> = self.norms.iter().copied().collect();
        reference.extend_from_slice(batch);
        let verdicts: Vec<bool> = if reference.len() < MIN_HISTORY {
            vec![true; batch.len()]
        } else {
            let median = median(&mut reference);
            batch
                .iter()
                .map(|&n| median == 0.0 || n <= self.cfg.norm_multiple * median)
                .collect()
        };
        for (&n, &ok) in batch.iter().zip(&verdicts) {
            if ok {
                if self.norms.len() == self.cfg.norm_window {
                    self.norms.pop_front();
                }
                self.norms.push_back(n);
            }
        }
        verdicts
    }

    /// Screen 2 for an asynchronous arrival: a batch of one.
    pub fn admit(&mut self, norm: f64) -> bool {
        self.admit_batch(&[norm])[0]
    }

    /// Screen 3: whether `accepted` survivors out of `expected` cohort
    /// members satisfy the quorum. Always true when the quorum is disabled
    /// or the expected cohort is empty.
    pub fn quorum_met(&self, accepted: usize, expected: usize) -> bool {
        expected == 0 || accepted as f64 >= self.cfg.quorum * expected as f64
    }
}

/// Median of a scratch slice (sorts it). **Tie-break:** an even count
/// takes the arithmetic mean of the two middle values, `(v[n/2−1] +
/// v[n/2]) / 2` — symmetric, so the reference never biases toward the
/// lower or upper half of the window and reversing the input changes
/// nothing. Pinned by `even_count_median_averages_the_middle_pair`.
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("norms are finite"));
    let n = values.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> DefenseGate {
        DefenseGate::new(DefenseConfig::default())
    }

    #[test]
    fn even_count_median_averages_the_middle_pair() {
        // Satellite: pin the running-median tie-break. An even window
        // interpolates the two middle values symmetrically — the reference
        // for [1, 2, 3, 10] is 2.5, not 2 (lower) or 3 (upper) — and is
        // invariant under reversing the input.
        let mut w = [1.0, 2.0, 3.0, 10.0];
        assert_eq!(median(&mut w), 2.5);
        let mut r = [10.0, 3.0, 2.0, 1.0];
        assert_eq!(median(&mut r), 2.5);
        let mut odd = [5.0, 1.0, 3.0];
        assert_eq!(median(&mut odd), 3.0);
        assert_eq!(median(&mut []), 0.0);
        // The batch screen inherits the symmetric reference: with history
        // [1, 2, 3] and batch [10], the decision median is 2.5, so a
        // norm_multiple of 3 admits anything ≤ 7.5 and rejects the 10.
        let cfg = DefenseConfig {
            norm_multiple: 3.0,
            ..DefenseConfig::default()
        };
        let mut gate = DefenseGate::new(cfg);
        assert_eq!(gate.admit_batch(&[1.0, 2.0, 3.0]), vec![true; 3]);
        assert_eq!(gate.admit_batch(&[10.0]), vec![false]);
        assert_eq!(gate.admit_batch(&[7.0]), vec![true]);
    }

    #[test]
    fn scrubs_sparse_nonfinite_values() {
        let g = gate();
        let mut u = vec![1.0f32; 100];
        u[7] = f32::NAN;
        u[50] = f32::INFINITY;
        let s = g.sanitize(&mut u).unwrap();
        assert_eq!(s.scrubbed, 2);
        assert_eq!(u[7], 0.0);
        assert_eq!(u[50], 0.0);
        assert!((s.norm - (98f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn rejects_mostly_nonfinite_payloads() {
        let g = gate();
        let mut u = vec![f32::NAN; 10];
        u[0] = 1.0;
        assert_eq!(g.sanitize(&mut u), Err(RejectReason::NonFinite));
    }

    #[test]
    fn norm_in_f64_survives_f32_blowups() {
        let g = gate();
        let mut u = vec![1e30f32; 4];
        let s = g.sanitize(&mut u).unwrap();
        assert!(s.norm.is_finite());
        assert!((s.norm - 2e30).abs() / 2e30 < 1e-6);
    }

    #[test]
    fn norm_screen_rejects_outliers_after_warmup() {
        let mut g = gate();
        // Warm up with unit-norm updates.
        assert!(g.admit_batch(&[1.0, 1.1, 0.9, 1.0]).iter().all(|&v| v));
        let verdicts = g.admit_batch(&[1.05, 1e6, 0.95]);
        assert_eq!(verdicts, vec![true, false, true]);
        // The outlier was not pushed into history.
        assert!(g.admit(1.0));
    }

    #[test]
    fn screen_stays_open_before_min_history() {
        let mut g = gate();
        // Fewer than MIN_HISTORY reference points: everything passes.
        assert_eq!(g.admit_batch(&[5.0, 1e9]), vec![true, true]);
    }

    #[test]
    fn zero_median_keeps_gate_open() {
        let mut g = gate();
        assert!(g.admit_batch(&[0.0, 0.0, 0.0]).iter().all(|&v| v));
        // All-zero history → median 0 → any norm admitted.
        assert!(g.admit(42.0));
    }

    #[test]
    fn batch_median_is_order_independent() {
        let run = |batch: &[f64]| {
            let mut g = gate();
            g.admit_batch(&[1.0, 1.0, 1.0]);
            g.admit_batch(batch)
        };
        let a = run(&[1.0, 1e6, 0.9]);
        let b = run(&[0.9, 1.0, 1e6]);
        assert_eq!(a[1], b[2]);
        assert_eq!(a[0], b[1]);
    }

    #[test]
    fn history_window_is_bounded() {
        let cfg = DefenseConfig {
            norm_window: 4,
            ..DefenseConfig::default()
        };
        let mut g = DefenseGate::new(cfg);
        for _ in 0..100 {
            g.admit(1.0);
        }
        assert!(g.norms.len() <= 4);
    }

    #[test]
    fn quorum_logic() {
        let cfg = DefenseConfig {
            quorum: 0.5,
            ..DefenseConfig::default()
        };
        let g = DefenseGate::new(cfg);
        assert!(g.quorum_met(5, 10));
        assert!(g.quorum_met(6, 10));
        assert!(!g.quorum_met(4, 10));
        assert!(g.quorum_met(0, 0));
        // Disabled quorum always passes.
        assert!(gate().quorum_met(0, 10));
    }

    #[test]
    fn empty_update_sanitizes_to_zero_norm() {
        let s = gate().sanitize(&mut []).unwrap();
        assert_eq!(
            s,
            Sanitized {
                scrubbed: 0,
                norm: 0.0
            }
        );
    }

    #[test]
    #[should_panic(expected = "norm_multiple")]
    fn invalid_multiple_panics() {
        DefenseGate::new(DefenseConfig {
            norm_multiple: 1.0,
            ..DefenseConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn invalid_quorum_panics() {
        DefenseGate::new(DefenseConfig {
            quorum: 1.5,
            ..DefenseConfig::default()
        });
    }
}
