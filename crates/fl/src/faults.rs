//! Fault injection for the paper's resiliency study (Figure 1).
//!
//! A [`FaultPlan`] assigns one [`FaultKind`] per client; the engines query
//! it each round. The three conditions mirror Section III:
//!
//! * **Dropout** — a high-latency client in synchronous FL whose update only
//!   reaches the server every other round.
//! * **DataLoss** — an unreliable link that loses the client's update with
//!   some probability.
//! * **Stale** — an asynchronous client training `factor×` slower, so its
//!   contributions are based on outdated global models.
//!
//! Two further kinds extend the study to compounded chaos sweeps:
//!
//! * **Crash** — the client disappears for a window of rounds and later
//!   recovers its state from a [`Checkpoint`](crate::checkpoint::Checkpoint).
//! * **Corruption** — the serialized update is corrupted in transit
//!   (seeded NaN/Inf injection and magnitude blow-ups), the adversary the
//!   server's defensive aggregation gate must survive.
//!
//! Three further kinds model *Byzantine* clients — compromised devices
//! sending well-formed but adversarial updates, the threat the
//! [`robust`](crate::robust) pre-aggregators defend against. Attacks act
//! on the **encoded bytes** via [`attack_payload`], like corruption:
//!
//! * **SignFlip** — every transmitted value is negated, pushing the
//!   aggregate *away* from the honest descent direction while preserving
//!   the update's norm (invisible to the norm screen).
//! * **Boost** — every transmitted value is scaled by a factor, the
//!   model-replacement/scaled-poisoning attack.
//! * **LittleIsEnough** — colluders replace their update with a shared
//!   small adversarial direction scaled to `ε · ‖own update‖`, staying
//!   inside the norm envelope. The direction is drawn from an RNG stream
//!   derived from the plan seed and the round, so all colluders move the
//!   aggregate the same way without any runtime coordination.

use crate::runtime::UpdatePayload;
use adafl_compression::codec::{DENSE_HEADER_BYTES, SPARSE_HEADER_BYTES, SPARSE_PAIR_BYTES};
use adafl_compression::DecodeError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure behaviour of one client.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Healthy client.
    Reliable,
    /// Update reaches the server only once every `period` rounds
    /// (the paper uses `period = 2`: "every other communication round").
    Dropout {
        /// Update delivery period in rounds (≥ 2).
        period: usize,
    },
    /// Each update is lost independently with probability `prob`.
    DataLoss {
        /// Loss probability in `[0, 1]`.
        prob: f64,
    },
    /// Trains `factor×` slower than nominal (async staleness; the paper
    /// uses `factor = 3`).
    Stale {
        /// Slowdown factor (> 1).
        factor: f64,
    },
    /// Client crashes at `at_round`, is unreachable for `down_for` rounds,
    /// then recovers its state from a checkpoint and resumes.
    Crash {
        /// Round at which the outage begins.
        at_round: usize,
        /// Outage length in rounds (≥ 1).
        down_for: usize,
    },
    /// Each update is corrupted in transit with probability `prob`
    /// (non-finite values and magnitude blow-ups injected into the
    /// serialized payload). The update still *arrives* — surviving it is
    /// the defensive aggregation gate's job.
    Corruption {
        /// Corruption probability in `[0, 1]`.
        prob: f64,
    },
    /// Byzantine: every transmitted value is negated. Norm-preserving, so
    /// only robust aggregation catches it.
    SignFlip,
    /// Byzantine: every transmitted value is scaled by `factor` (the
    /// scaled-poisoning / model-replacement attack).
    Boost {
        /// Multiplier applied to each value (finite, ≠ 1).
        factor: f64,
    },
    /// Byzantine: "a little is enough" collusion — the update is replaced
    /// by a shared adversarial direction scaled to `epsilon` times the
    /// honest update's norm, staying inside the defense gate's norm
    /// envelope. All colluders in a round derive the direction from the
    /// same [`FaultPlan::collusion_seed`].
    LittleIsEnough {
        /// Relative magnitude of the poisoned update (> 0).
        epsilon: f64,
    },
}

impl FaultKind {
    /// The kind's canonical lowercase name, round-tripping through
    /// [`FromStr`](std::str::FromStr) — the spelling JSON experiment
    /// configs and telemetry fields use.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Reliable => "reliable",
            FaultKind::Dropout { .. } => "dropout",
            FaultKind::DataLoss { .. } => "dataloss",
            FaultKind::Stale { .. } => "stale",
            FaultKind::Crash { .. } => "crash",
            FaultKind::Corruption { .. } => "corruption",
            FaultKind::SignFlip => "sign-flip",
            FaultKind::Boost { .. } => "boost",
            FaultKind::LittleIsEnough { .. } => "little-is-enough",
        }
    }

    /// Whether this kind is a Byzantine attack applied through
    /// [`attack_payload`] (as opposed to a delivery/timing/corruption
    /// fault).
    pub fn is_attack(&self) -> bool {
        matches!(
            self,
            FaultKind::SignFlip | FaultKind::Boost { .. } | FaultKind::LittleIsEnough { .. }
        )
    }
}

impl std::str::FromStr for FaultKind {
    type Err = String;

    /// Parses a canonical kind name (case-insensitive) with the default
    /// parameters the chaos sweeps use: `dropout` → period 2, `dataloss`
    /// → prob 0.5, `stale` → factor 3, `crash` → round 2 for 2,
    /// `corruption` → prob 0.5, `boost` → factor 10, `little-is-enough`
    /// (alias `lie`) → epsilon 0.3.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reliable" => Ok(FaultKind::Reliable),
            "dropout" => Ok(FaultKind::Dropout { period: 2 }),
            "dataloss" | "data-loss" => Ok(FaultKind::DataLoss { prob: 0.5 }),
            "stale" => Ok(FaultKind::Stale { factor: 3.0 }),
            "crash" => Ok(FaultKind::Crash {
                at_round: 2,
                down_for: 2,
            }),
            "corruption" => Ok(FaultKind::Corruption { prob: 0.5 }),
            "sign-flip" | "sign_flip" | "signflip" => Ok(FaultKind::SignFlip),
            "boost" => Ok(FaultKind::Boost { factor: 10.0 }),
            "little-is-enough" | "little_is_enough" | "lie" => {
                Ok(FaultKind::LittleIsEnough { epsilon: 0.3 })
            }
            other => Err(format!(
                "unknown fault kind {other:?}; expected one of reliable, \
                 dropout, dataloss, stale, crash, corruption, sign-flip, \
                 boost, little-is-enough"
            )),
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Corrupts `delta` in place using a seeded pattern: roughly 1% of
/// coordinates (at least 3, when the vector is non-empty) are overwritten
/// with NaN, ±Inf, or ±1e30 blow-ups — the payloads a bit-flipped or
/// truncated wire transfer produces in practice.
pub fn corrupt_update(delta: &mut [f32], seed: u64) {
    if delta.is_empty() {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_44);
    let hits = (delta.len() / 100).max(3).min(delta.len());
    for _ in 0..hits {
        let idx = rng.gen_range(0..delta.len());
        delta[idx] = corruption_pattern(&mut rng);
    }
}

/// One corrupted coordinate value: NaN, ±Inf, or a ±1e30 blow-up.
fn corruption_pattern(rng: &mut StdRng) -> f32 {
    match rng.gen_range(0..5usize) {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 1e30,
        _ => -1e30,
    }
}

/// Corrupts a payload's **encoded bytes** in place and re-decodes them —
/// the byte-real form of [`corrupt_update`].
///
/// Dense and sparse frames take the same seeded pattern, written into
/// value slots of the encoded buffer, so the decoded result is bit-exact
/// with the legacy in-memory corruption (the golden traces pin this) and
/// the frame always re-parses — surviving those values is the defensive
/// gate's job. Quantized and ternary frames take raw byte overwrites
/// anywhere in the frame; a hit that lands in the header makes the
/// decoder reject the whole update.
///
/// Every overwrite preserves the frame length, so the ledger charge
/// (`encoded_len()`) is unaffected either way.
///
/// # Errors
///
/// Returns the decoder's verdict when the corrupted bytes no longer
/// parse; the payload is left untouched (the runtime drops it on arrival
/// — the bytes still travelled and were charged).
pub fn corrupt_payload(payload: &mut UpdatePayload, seed: u64) -> Result<(), DecodeError> {
    // A sub-view frame corrupts in its inner payload's value bytes: the
    // descriptor header is simulation framing (a real transport would
    // checksum it separately), and recursing keeps the per-form flip
    // positions identical to full-width traffic.
    if let UpdatePayload::SubView { inner, .. } = payload {
        return corrupt_payload(inner, seed);
    }
    let mut bytes = payload.encode();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_44);
    match payload {
        UpdatePayload::Dense(d) => {
            let slots = d.len();
            if slots == 0 {
                return Ok(());
            }
            let hits = (slots / 100).max(3).min(slots);
            for _ in 0..hits {
                let at = DENSE_HEADER_BYTES + 4 * rng.gen_range(0..slots);
                bytes[at..at + 4].copy_from_slice(&corruption_pattern(&mut rng).to_le_bytes());
            }
        }
        UpdatePayload::Sparse(s) => {
            let slots = s.nnz();
            if slots == 0 {
                return Ok(());
            }
            let hits = (slots / 100).max(3).min(slots);
            for _ in 0..hits {
                let at = SPARSE_HEADER_BYTES + SPARSE_PAIR_BYTES * rng.gen_range(0..slots) + 4;
                bytes[at..at + 4].copy_from_slice(&corruption_pattern(&mut rng).to_le_bytes());
            }
        }
        UpdatePayload::Quantized { .. } | UpdatePayload::Ternary { .. } => {
            let slots = bytes.len();
            let hits = (slots / 100).max(3).min(slots);
            for _ in 0..hits {
                let at = rng.gen_range(0..slots);
                bytes[at] = rng.gen::<u8>();
            }
        }
        UpdatePayload::SubView { .. } => unreachable!("handled by recursion above"),
    }
    let form = payload.form();
    *payload = UpdatePayload::decode(form, &bytes)?;
    Ok(())
}

/// Applies a Byzantine attack to a payload's **encoded bytes** in place —
/// the adversarial sibling of [`corrupt_payload`].
///
/// Dense and sparse frames have every `f32` value slot rewritten with the
/// attacked value (sign-flip negates, boost scales, little-is-enough
/// substitutes the shared collusion direction scaled to `ε·‖values‖`).
/// Quantized and ternary frames carry one `f32` scale that every decoded
/// value is linear in, so the attack rewrites just that field: sign-flip
/// negates it, boost multiplies it, and little-is-enough shrinks it to
/// `−ε·scale` — the packed-form approximation of the dense attack. No
/// header or length byte changes, so the frame always re-parses and the
/// ledger charge (`encoded_len()`) is unchanged: Byzantine updates are
/// *well-formed*, which is exactly why the decoder and the defense gate
/// cannot stop them.
///
/// `collusion_seed` only matters for [`FaultKind::LittleIsEnough`]; pass
/// [`FaultPlan::collusion_seed`] for the current round so colluders agree
/// on the direction.
///
/// # Panics
///
/// Panics when `kind` is not a Byzantine attack
/// ([`FaultKind::is_attack`]).
pub fn attack_payload(payload: &mut UpdatePayload, kind: FaultKind, collusion_seed: u64) {
    assert!(kind.is_attack(), "{kind} is not a Byzantine attack kind");
    // Attackers rewrite the values they transmit; for a sub-view that is
    // the inner view-local payload (a Byzantine client cannot forge the
    // descriptor without the server noticing the length mismatch).
    if let UpdatePayload::SubView { inner, .. } = payload {
        return attack_payload(inner, kind, collusion_seed);
    }
    let mut bytes = payload.encode();
    match payload {
        UpdatePayload::Dense(d) => {
            let poisoned = attacked_values(kind, d.values(), collusion_seed);
            for (i, v) in poisoned.iter().enumerate() {
                let at = DENSE_HEADER_BYTES + 4 * i;
                bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
            }
        }
        UpdatePayload::Sparse(s) => {
            let poisoned = attacked_values(kind, s.values(), collusion_seed);
            for (i, v) in poisoned.iter().enumerate() {
                let at = SPARSE_HEADER_BYTES + SPARSE_PAIR_BYTES * i + 4;
                bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
            }
        }
        UpdatePayload::Quantized { .. } | UpdatePayload::Ternary { .. } => {
            // Both packed headers end with the f32 scale at bytes 8..12
            // (QUANTIZED_HEADER_BYTES == TERNARY_HEADER_BYTES == 12), and
            // both decoders are linear in it.
            let at = PACKED_SCALE_OFFSET;
            let scale = f32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 scale bytes"));
            let poisoned = match kind {
                FaultKind::SignFlip => -scale,
                FaultKind::Boost { factor } => factor as f32 * scale,
                FaultKind::LittleIsEnough { epsilon } => -(epsilon as f32) * scale,
                _ => unreachable!("gated by is_attack"),
            };
            bytes[at..at + 4].copy_from_slice(&poisoned.to_le_bytes());
        }
        UpdatePayload::SubView { .. } => unreachable!("handled by recursion above"),
    }
    let form = payload.form();
    *payload =
        UpdatePayload::decode(form, &bytes).expect("value/scale rewrites preserve frame structure");
}

/// Byte offset of the `f32` scale/norm field shared by the two packed
/// wire headers.
const PACKED_SCALE_OFFSET: usize = 8;

/// The attacked replacement for a slice of transmitted values.
fn attacked_values(kind: FaultKind, values: &[f32], collusion_seed: u64) -> Vec<f32> {
    match kind {
        FaultKind::SignFlip => values.iter().map(|v| -v).collect(),
        FaultKind::Boost { factor } => values.iter().map(|v| factor as f32 * v).collect(),
        FaultKind::LittleIsEnough { epsilon } => {
            let norm = values
                .iter()
                .map(|&v| f64::from(v) * f64::from(v))
                .sum::<f64>()
                .sqrt();
            if values.is_empty() || norm == 0.0 {
                return values.to_vec();
            }
            // All colluders seed the same stream, so updates of equal
            // length (every dense/packed client) poison in the *same*
            // direction; sparse colluders agree on the leading
            // coordinates of that direction within their own support.
            let mut rng = StdRng::seed_from_u64(collusion_seed ^ 0x11E);
            let mut dir: Vec<f64> = (0..values.len())
                .map(|_| rng.gen::<f64>() * 2.0 - 1.0)
                .collect();
            let mut dir_norm = dir.iter().map(|d| d * d).sum::<f64>().sqrt();
            if dir_norm == 0.0 {
                dir[0] = 1.0;
                dir_norm = 1.0;
            }
            let scale = epsilon * norm / dir_norm;
            dir.iter().map(|&d| (scale * d) as f32).collect()
        }
        _ => unreachable!("gated by is_attack"),
    }
}

/// A per-client fault assignment with seeded stochastic evaluation.
///
/// # Examples
///
/// ```
/// use adafl_fl::faults::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::with_fraction(10, 0.2, FaultKind::Dropout { period: 2 }, 1);
/// assert_eq!(plan.affected_clients().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    kinds: Vec<FaultKind>,
    rng: StdRng,
    /// Base seed for per-round collusion streams; independent of the plan
    /// RNG so attacks never perturb delivery/corruption sequences.
    attack_seed: u64,
}

impl FaultPlan {
    /// All clients reliable.
    pub fn reliable(clients: usize) -> Self {
        FaultPlan {
            kinds: vec![FaultKind::Reliable; clients],
            rng: StdRng::seed_from_u64(0),
            attack_seed: 0xB12A,
        }
    }

    /// Creates a plan from explicit per-client kinds.
    ///
    /// # Panics
    ///
    /// Panics when `kinds` is empty or any kind's parameters are invalid
    /// (`period < 2`, `prob ∉ [0,1]`, `factor ≤ 1`, a non-finite or
    /// identity boost factor, `epsilon ≤ 0`).
    pub fn new(kinds: Vec<FaultKind>, seed: u64) -> Self {
        assert!(!kinds.is_empty(), "need at least one client");
        for k in &kinds {
            match *k {
                FaultKind::Reliable => {}
                FaultKind::Dropout { period } => {
                    assert!(period >= 2, "dropout period must be ≥ 2")
                }
                FaultKind::DataLoss { prob } => {
                    assert!(
                        (0.0..=1.0).contains(&prob),
                        "loss probability must be in [0,1]"
                    )
                }
                FaultKind::Stale { factor } => {
                    assert!(factor > 1.0, "staleness factor must exceed 1")
                }
                FaultKind::Crash { down_for, .. } => {
                    assert!(down_for >= 1, "crash outage must last at least 1 round")
                }
                FaultKind::Corruption { prob } => {
                    assert!(
                        (0.0..=1.0).contains(&prob),
                        "corruption probability must be in [0,1]"
                    )
                }
                FaultKind::SignFlip => {}
                FaultKind::Boost { factor } => {
                    assert!(
                        factor.is_finite() && factor != 1.0,
                        "boost factor must be finite and ≠ 1"
                    )
                }
                FaultKind::LittleIsEnough { epsilon } => {
                    assert!(
                        epsilon.is_finite() && epsilon > 0.0,
                        "little-is-enough epsilon must be finite and > 0"
                    )
                }
            }
        }
        FaultPlan {
            kinds,
            rng: StdRng::seed_from_u64(seed ^ 0xFA17),
            attack_seed: seed ^ 0xB12A,
        }
    }

    /// Marks the **first** `⌊fraction·clients⌋` clients with `kind` — the
    /// paper's "proportion of unreliable clients" knob.
    ///
    /// # Panics
    ///
    /// Panics when `clients` is zero or `fraction` is outside `[0, 1]`.
    pub fn with_fraction(clients: usize, fraction: f64, kind: FaultKind, seed: u64) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let affected = (fraction * clients as f64).round() as usize;
        let kinds = (0..clients)
            .map(|i| {
                if i < affected {
                    kind
                } else {
                    FaultKind::Reliable
                }
            })
            .collect();
        FaultPlan::new(kinds, seed)
    }

    /// Number of clients in the plan.
    pub fn clients(&self) -> usize {
        self.kinds.len()
    }

    /// Fault kind of one client.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn kind(&self, client: usize) -> FaultKind {
        self.kinds[client]
    }

    /// Indices of non-reliable clients.
    pub fn affected_clients(&self) -> Vec<usize> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| !matches!(k, FaultKind::Reliable))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `client`'s update reaches the server in `round`
    /// (evaluates dropout periods and data-loss randomness; staleness always
    /// delivers — it is a *timing* fault handled by the compute model).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn update_delivered(&mut self, client: usize, round: usize) -> bool {
        match self.kinds[client] {
            FaultKind::Reliable
            | FaultKind::Stale { .. }
            | FaultKind::Corruption { .. }
            | FaultKind::SignFlip
            | FaultKind::Boost { .. }
            | FaultKind::LittleIsEnough { .. } => true,
            FaultKind::Dropout { period } => round % period == period - 1,
            FaultKind::DataLoss { prob } => self.rng.gen::<f64>() >= prob,
            FaultKind::Crash { .. } => !self.crashed(client, round),
        }
    }

    /// Whether `client` is inside its crash outage window during `round`.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn crashed(&self, client: usize, round: usize) -> bool {
        match self.kinds[client] {
            FaultKind::Crash { at_round, down_for } => {
                round >= at_round && round < at_round + down_for
            }
            _ => false,
        }
    }

    /// Whether `round` is the exact round in which `client` comes back
    /// from its crash outage (the engine restores it from a checkpoint).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn recovers_at(&self, client: usize, round: usize) -> bool {
        match self.kinds[client] {
            FaultKind::Crash { at_round, down_for } => round == at_round + down_for,
            _ => false,
        }
    }

    /// For a [`FaultKind::Corruption`] client, decides whether this round's
    /// update is corrupted; returns a fresh seed for
    /// [`corrupt_update`] when it is. Draws from the plan RNG **only** for
    /// corruption clients, so adding one to a fleet never perturbs the
    /// loss sequences of other fault kinds.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn corrupts_update(&mut self, client: usize) -> Option<u64> {
        match self.kinds[client] {
            FaultKind::Corruption { prob } => {
                if self.rng.gen::<f64>() < prob {
                    Some(self.rng.gen::<u64>())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// For a Byzantine client, the attack to apply to this uplink via
    /// [`attack_payload`]; `None` for honest and merely-faulty clients.
    /// Attacks fire every round and draw nothing from the plan RNG, so
    /// adding an attacker to a fleet never perturbs the loss/corruption
    /// sequences of other fault kinds (same guarantee as
    /// [`FaultPlan::corrupts_update`]).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn attacks_update(&self, client: usize) -> Option<FaultKind> {
        let kind = self.kinds[client];
        kind.is_attack().then_some(kind)
    }

    /// The shared seed colluding attackers use in `round` (the
    /// [`FaultKind::LittleIsEnough`] direction stream): derived from the
    /// plan seed, identical for every colluder, different every round.
    pub fn collusion_seed(&self, round: usize) -> u64 {
        self.attack_seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Compute-time slowdown factor of one client (1.0 unless stale).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn slowdown(&self, client: usize) -> f64 {
        match self.kinds[client] {
            FaultKind::Stale { factor } => factor,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_plan_always_delivers() {
        let mut plan = FaultPlan::reliable(3);
        for round in 0..10 {
            for c in 0..3 {
                assert!(plan.update_delivered(c, round));
            }
        }
        assert!(plan.affected_clients().is_empty());
    }

    #[test]
    fn dropout_delivers_every_other_round() {
        let mut plan = FaultPlan::new(vec![FaultKind::Dropout { period: 2 }], 0);
        let delivered: Vec<bool> = (0..6).map(|r| plan.update_delivered(0, r)).collect();
        assert_eq!(delivered, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn data_loss_rate_matches_probability() {
        let mut plan = FaultPlan::new(vec![FaultKind::DataLoss { prob: 0.25 }], 3);
        let delivered = (0..4000).filter(|&r| plan.update_delivered(0, r)).count();
        let rate = delivered as f64 / 4000.0;
        assert!((rate - 0.75).abs() < 0.03, "delivery rate {rate}");
    }

    #[test]
    fn stale_clients_deliver_but_slow_down() {
        let mut plan = FaultPlan::new(vec![FaultKind::Stale { factor: 3.0 }], 0);
        assert!(plan.update_delivered(0, 0));
        assert_eq!(plan.slowdown(0), 3.0);
        assert_eq!(FaultPlan::reliable(1).slowdown(0), 1.0);
    }

    #[test]
    fn fraction_marks_expected_count() {
        let plan = FaultPlan::with_fraction(10, 0.4, FaultKind::DataLoss { prob: 0.5 }, 0);
        assert_eq!(plan.affected_clients(), vec![0, 1, 2, 3]);
        assert_eq!(plan.kind(4), FaultKind::Reliable);
        let none = FaultPlan::with_fraction(10, 0.0, FaultKind::Dropout { period: 2 }, 0);
        assert!(none.affected_clients().is_empty());
    }

    #[test]
    fn fraction_boundaries_are_accepted() {
        // Satellite: both inclusive boundaries of [0, 1] must be valid.
        let none = FaultPlan::with_fraction(5, 0.0, FaultKind::DataLoss { prob: 0.5 }, 0);
        assert!(none.affected_clients().is_empty());
        let all = FaultPlan::with_fraction(5, 1.0, FaultKind::DataLoss { prob: 0.5 }, 0);
        assert_eq!(all.affected_clients().len(), 5);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn fraction_above_one_panics() {
        FaultPlan::with_fraction(5, 1.0001, FaultKind::Dropout { period: 2 }, 0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn negative_fraction_panics() {
        FaultPlan::with_fraction(5, -0.0001, FaultKind::Dropout { period: 2 }, 0);
    }

    #[test]
    fn crash_window_blocks_delivery_then_recovers() {
        let kind = FaultKind::Crash {
            at_round: 3,
            down_for: 2,
        };
        let mut plan = FaultPlan::new(vec![kind, FaultKind::Reliable], 0);
        let delivered: Vec<bool> = (0..8).map(|r| plan.update_delivered(0, r)).collect();
        assert_eq!(
            delivered,
            vec![true, true, true, false, false, true, true, true]
        );
        assert!(plan.crashed(0, 3) && plan.crashed(0, 4));
        assert!(!plan.crashed(0, 2) && !plan.crashed(0, 5));
        assert!(plan.recovers_at(0, 5));
        assert!(!plan.recovers_at(0, 4) && !plan.recovers_at(0, 6));
        assert!(!plan.crashed(1, 3) && !plan.recovers_at(1, 5));
    }

    #[test]
    fn corruption_rate_matches_probability_and_delivers() {
        let mut plan = FaultPlan::new(vec![FaultKind::Corruption { prob: 0.3 }], 5);
        assert!((0..10).all(|r| plan.update_delivered(0, r)));
        let corrupted = (0..4000)
            .filter(|_| plan.corrupts_update(0).is_some())
            .count();
        let rate = corrupted as f64 / 4000.0;
        assert!((rate - 0.3).abs() < 0.03, "corruption rate {rate}");
    }

    #[test]
    fn corruption_clients_do_not_perturb_other_rng_streams() {
        // A DataLoss client's delivery sequence must be identical whether or
        // not a Corruption client shares the plan and gets queried.
        let run = |with_corruption: bool| {
            let kinds = if with_corruption {
                vec![
                    FaultKind::DataLoss { prob: 0.4 },
                    FaultKind::Corruption { prob: 0.5 },
                ]
            } else {
                vec![FaultKind::DataLoss { prob: 0.4 }, FaultKind::Reliable]
            };
            let mut plan = FaultPlan::new(kinds, 13);
            (0..200)
                .map(|r| plan.update_delivered(0, r))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn corrupt_update_injects_nonfinite_or_blowup() {
        let mut delta = vec![0.01f32; 500];
        corrupt_update(&mut delta, 7);
        let bad = delta
            .iter()
            .filter(|v| !v.is_finite() || v.abs() > 1e20)
            .count();
        assert!(bad >= 3, "only {bad} corrupted coordinates");
        // Deterministic per seed.
        let mut again = vec![0.01f32; 500];
        corrupt_update(&mut again, 7);
        let same = delta
            .iter()
            .zip(&again)
            .all(|(a, b)| (a.is_nan() && b.is_nan()) || a == b);
        assert!(same, "corruption not deterministic");
        // Empty vectors are a no-op.
        corrupt_update(&mut [], 7);
    }

    #[test]
    fn corrupt_payload_matches_legacy_corruption_for_dense_and_sparse() {
        use adafl_compression::top_k;
        let eq = |a: &[f32], b: &[f32]| {
            a.iter()
                .zip(b)
                .all(|(x, y)| (x.is_nan() && y.is_nan()) || x == y)
        };
        let base: Vec<f32> = (0..500).map(|i| ((i as f32) * 0.013).sin()).collect();

        let mut payload = UpdatePayload::dense(base.clone());
        corrupt_payload(&mut payload, 7).expect("dense frames always re-parse");
        let mut legacy = base.clone();
        corrupt_update(&mut legacy, 7);
        assert!(eq(&payload.into_dense(), &legacy), "dense drifted");

        let sparse = top_k(&base, 50);
        let mut payload = UpdatePayload::Sparse(sparse.clone());
        corrupt_payload(&mut payload, 9).expect("sparse frames always re-parse");
        let mut legacy = sparse;
        corrupt_update(legacy.values_mut(), 9);
        let UpdatePayload::Sparse(got) = payload else {
            unreachable!("form preserved")
        };
        assert_eq!(got.indices(), legacy.indices());
        assert!(eq(got.values(), legacy.values()), "sparse drifted");
    }

    #[test]
    fn corrupt_payload_on_packed_forms_decodes_or_rejects() {
        use adafl_compression::{QsgdQuantizer, TernGrad};
        let g: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.1).cos()).collect();
        let mut rejects = 0usize;
        let mut survivals = 0usize;
        for seed in 0..200u64 {
            for mut p in [
                UpdatePayload::quantized(QsgdQuantizer::new(8, 1).quantize(&g)),
                UpdatePayload::ternary(TernGrad::new(1).ternarize(&g)),
            ] {
                let form = p.form();
                let charged = p.encoded_len();
                match corrupt_payload(&mut p, seed) {
                    Ok(()) => {
                        survivals += 1;
                        // Byte overwrites preserve the frame length, so the
                        // ledger charge is stable across corruption.
                        assert_eq!(p.encoded_len(), charged);
                        assert_eq!(p.form(), form);
                    }
                    Err(_) => rejects += 1,
                }
            }
        }
        assert!(rejects > 0, "no header hit rejected in 400 trials");
        assert!(survivals > 0, "no body-only corruption survived");
    }

    #[test]
    #[should_panic(expected = "outage must last")]
    fn zero_length_crash_panics() {
        FaultPlan::new(
            vec![FaultKind::Crash {
                at_round: 0,
                down_for: 0,
            }],
            0,
        );
    }

    #[test]
    #[should_panic(expected = "corruption probability")]
    fn invalid_corruption_prob_panics() {
        FaultPlan::new(vec![FaultKind::Corruption { prob: 1.5 }], 0);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn invalid_period_panics() {
        FaultPlan::new(vec![FaultKind::Dropout { period: 1 }], 0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn invalid_staleness_panics() {
        FaultPlan::new(vec![FaultKind::Stale { factor: 1.0 }], 0);
    }

    // --- Byzantine attack kinds ---

    #[test]
    fn fault_kind_names_round_trip() {
        use std::str::FromStr;
        let kinds = [
            FaultKind::Reliable,
            FaultKind::Dropout { period: 2 },
            FaultKind::DataLoss { prob: 0.5 },
            FaultKind::Stale { factor: 3.0 },
            FaultKind::Crash {
                at_round: 2,
                down_for: 2,
            },
            FaultKind::Corruption { prob: 0.5 },
            FaultKind::SignFlip,
            FaultKind::Boost { factor: 10.0 },
            FaultKind::LittleIsEnough { epsilon: 0.3 },
        ];
        for k in kinds {
            // FromStr fills in the documented default parameters, which are
            // exactly the ones above — a full value round-trip.
            assert_eq!(FaultKind::from_str(k.as_str()).unwrap(), k);
            assert_eq!(format!("{k}"), k.as_str());
        }
        assert_eq!(
            FaultKind::from_str("LIE").unwrap(),
            FaultKind::LittleIsEnough { epsilon: 0.3 }
        );
        assert!(FaultKind::from_str("gaslight").is_err());
    }

    #[test]
    fn attack_clients_deliver_every_round_and_report_their_kind() {
        let mut plan = FaultPlan::new(
            vec![
                FaultKind::SignFlip,
                FaultKind::Boost { factor: 10.0 },
                FaultKind::LittleIsEnough { epsilon: 0.3 },
                FaultKind::Reliable,
            ],
            7,
        );
        for round in 0..5 {
            for c in 0..4 {
                assert!(plan.update_delivered(c, round));
            }
        }
        assert_eq!(plan.attacks_update(0), Some(FaultKind::SignFlip));
        assert_eq!(
            plan.attacks_update(1),
            Some(FaultKind::Boost { factor: 10.0 })
        );
        assert!(plan.attacks_update(3).is_none());
        assert_eq!(plan.affected_clients(), vec![0, 1, 2]);
    }

    #[test]
    fn attack_clients_do_not_perturb_other_rng_streams() {
        // Mirrors corruption_clients_do_not_perturb_other_rng_streams: a
        // DataLoss client's delivery sequence is identical whether or not
        // a Byzantine client shares the plan and attacks every round.
        let run = |with_attacker: bool| {
            let second = if with_attacker {
                FaultKind::LittleIsEnough { epsilon: 0.3 }
            } else {
                FaultKind::Reliable
            };
            let mut plan = FaultPlan::new(vec![FaultKind::DataLoss { prob: 0.4 }, second], 13);
            (0..200)
                .map(|r| {
                    if let Some(kind) = plan.attacks_update(1) {
                        let mut p = UpdatePayload::dense(vec![1.0, -2.0, 3.0]);
                        attack_payload(&mut p, kind, plan.collusion_seed(r));
                    }
                    plan.update_delivered(0, r)
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn sign_flip_and_boost_transform_dense_and_sparse_values_exactly() {
        use adafl_compression::top_k;
        let base: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.11).sin()).collect();

        let mut p = UpdatePayload::dense(base.clone());
        attack_payload(&mut p, FaultKind::SignFlip, 0);
        let flipped: Vec<f32> = base.iter().map(|v| -v).collect();
        assert_eq!(p.into_dense(), flipped);

        let sparse = top_k(&base, 16);
        let mut p = UpdatePayload::Sparse(sparse.clone());
        attack_payload(&mut p, FaultKind::Boost { factor: 8.0 }, 0);
        let UpdatePayload::Sparse(got) = p else {
            unreachable!("form preserved")
        };
        assert_eq!(got.indices(), sparse.indices());
        let boosted: Vec<f32> = sparse.values().iter().map(|v| 8.0 * v).collect();
        assert_eq!(got.values(), boosted.as_slice());
    }

    #[test]
    fn packed_form_attacks_rewrite_only_the_scale() {
        use adafl_compression::{QsgdQuantizer, TernGrad};
        let g: Vec<f32> = (0..128).map(|i| ((i as f32) * 0.07).cos()).collect();
        for mut p in [
            UpdatePayload::quantized(QsgdQuantizer::new(8, 1).quantize(&g)),
            UpdatePayload::ternary(TernGrad::new(1).ternarize(&g)),
        ] {
            let before = p.clone().into_dense();
            let charged = p.encoded_len();
            let form = p.form();
            attack_payload(&mut p, FaultKind::SignFlip, 0);
            // Negating the scale negates every decoded value exactly; the
            // frame re-parses and the ledger charge is unchanged.
            assert_eq!(p.encoded_len(), charged);
            assert_eq!(p.form(), form);
            let after = p.into_dense();
            let negated: Vec<f32> = before.iter().map(|v| -v).collect();
            assert_eq!(after, negated);
        }
    }

    #[test]
    fn little_is_enough_stays_inside_the_norm_envelope_and_colludes() {
        let norm = |v: &[f32]| {
            v.iter()
                .map(|&x| f64::from(x) * f64::from(x))
                .sum::<f64>()
                .sqrt()
        };
        let a: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.05).sin()).collect();
        let b: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.09).cos()).collect();
        let kind = FaultKind::LittleIsEnough { epsilon: 0.3 };
        let seed = 42u64;

        let mut pa = UpdatePayload::dense(a.clone());
        let mut pb = UpdatePayload::dense(b.clone());
        attack_payload(&mut pa, kind, seed);
        attack_payload(&mut pb, kind, seed);
        let da = pa.into_dense();
        let db = pb.into_dense();

        // Poisoned norm ≈ ε · honest norm — well inside any norm screen.
        assert!((norm(&da) / norm(&a) - 0.3).abs() < 1e-3);
        assert!((norm(&db) / norm(&b) - 0.3).abs() < 1e-3);
        // Colluders sharing a round seed send *parallel* updates: the
        // cosine of the two poisoned directions is 1.
        let dot: f64 = da
            .iter()
            .zip(&db)
            .map(|(&x, &y)| f64::from(x) * f64::from(y))
            .sum();
        let cos = dot / (norm(&da) * norm(&db));
        assert!(cos > 0.9999, "colluders disagree, cos = {cos}");
        // A different round seed changes the direction.
        let mut pc = UpdatePayload::dense(a.clone());
        attack_payload(&mut pc, kind, seed ^ 1);
        let dc = pc.into_dense();
        let dot: f64 = da
            .iter()
            .zip(&dc)
            .map(|(&x, &y)| f64::from(x) * f64::from(y))
            .sum();
        let cos = dot / (norm(&da) * norm(&dc));
        assert!(cos < 0.9, "rounds share a direction, cos = {cos}");
    }

    #[test]
    fn attack_payload_is_deterministic_per_seed() {
        let base: Vec<f32> = (0..100).map(|i| (i as f32) * 0.01 - 0.5).collect();
        let kind = FaultKind::LittleIsEnough { epsilon: 0.5 };
        let mut one = UpdatePayload::dense(base.clone());
        let mut two = UpdatePayload::dense(base);
        attack_payload(&mut one, kind, 99);
        attack_payload(&mut two, kind, 99);
        assert_eq!(one, two);
    }

    #[test]
    fn collusion_seed_varies_by_round_not_by_query() {
        let plan = FaultPlan::new(vec![FaultKind::SignFlip], 3);
        assert_eq!(plan.collusion_seed(4), plan.collusion_seed(4));
        assert_ne!(plan.collusion_seed(4), plan.collusion_seed(5));
        // Different plan seeds produce different collusion streams.
        let other = FaultPlan::new(vec![FaultKind::SignFlip], 4);
        assert_ne!(plan.collusion_seed(4), other.collusion_seed(4));
    }

    #[test]
    #[should_panic(expected = "not a Byzantine attack")]
    fn attack_payload_rejects_non_attack_kinds() {
        let mut p = UpdatePayload::dense(vec![1.0]);
        attack_payload(&mut p, FaultKind::Reliable, 0);
    }

    #[test]
    #[should_panic(expected = "boost factor")]
    fn identity_boost_panics() {
        FaultPlan::new(vec![FaultKind::Boost { factor: 1.0 }], 0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn non_positive_epsilon_panics() {
        FaultPlan::new(vec![FaultKind::LittleIsEnough { epsilon: 0.0 }], 0);
    }
}
