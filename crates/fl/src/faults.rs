//! Fault injection for the paper's resiliency study (Figure 1).
//!
//! A [`FaultPlan`] assigns one [`FaultKind`] per client; the engines query
//! it each round. The three conditions mirror Section III:
//!
//! * **Dropout** — a high-latency client in synchronous FL whose update only
//!   reaches the server every other round.
//! * **DataLoss** — an unreliable link that loses the client's update with
//!   some probability.
//! * **Stale** — an asynchronous client training `factor×` slower, so its
//!   contributions are based on outdated global models.
//!
//! Two further kinds extend the study to compounded chaos sweeps:
//!
//! * **Crash** — the client disappears for a window of rounds and later
//!   recovers its state from a [`Checkpoint`](crate::checkpoint::Checkpoint).
//! * **Corruption** — the serialized update is corrupted in transit
//!   (seeded NaN/Inf injection and magnitude blow-ups), the adversary the
//!   server's defensive aggregation gate must survive.

use crate::runtime::UpdatePayload;
use adafl_compression::codec::{DENSE_HEADER_BYTES, SPARSE_HEADER_BYTES, SPARSE_PAIR_BYTES};
use adafl_compression::DecodeError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure behaviour of one client.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Healthy client.
    Reliable,
    /// Update reaches the server only once every `period` rounds
    /// (the paper uses `period = 2`: "every other communication round").
    Dropout {
        /// Update delivery period in rounds (≥ 2).
        period: usize,
    },
    /// Each update is lost independently with probability `prob`.
    DataLoss {
        /// Loss probability in `[0, 1]`.
        prob: f64,
    },
    /// Trains `factor×` slower than nominal (async staleness; the paper
    /// uses `factor = 3`).
    Stale {
        /// Slowdown factor (> 1).
        factor: f64,
    },
    /// Client crashes at `at_round`, is unreachable for `down_for` rounds,
    /// then recovers its state from a checkpoint and resumes.
    Crash {
        /// Round at which the outage begins.
        at_round: usize,
        /// Outage length in rounds (≥ 1).
        down_for: usize,
    },
    /// Each update is corrupted in transit with probability `prob`
    /// (non-finite values and magnitude blow-ups injected into the
    /// serialized payload). The update still *arrives* — surviving it is
    /// the defensive aggregation gate's job.
    Corruption {
        /// Corruption probability in `[0, 1]`.
        prob: f64,
    },
}

/// Corrupts `delta` in place using a seeded pattern: roughly 1% of
/// coordinates (at least 3, when the vector is non-empty) are overwritten
/// with NaN, ±Inf, or ±1e30 blow-ups — the payloads a bit-flipped or
/// truncated wire transfer produces in practice.
pub fn corrupt_update(delta: &mut [f32], seed: u64) {
    if delta.is_empty() {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_44);
    let hits = (delta.len() / 100).max(3).min(delta.len());
    for _ in 0..hits {
        let idx = rng.gen_range(0..delta.len());
        delta[idx] = corruption_pattern(&mut rng);
    }
}

/// One corrupted coordinate value: NaN, ±Inf, or a ±1e30 blow-up.
fn corruption_pattern(rng: &mut StdRng) -> f32 {
    match rng.gen_range(0..5usize) {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 1e30,
        _ => -1e30,
    }
}

/// Corrupts a payload's **encoded bytes** in place and re-decodes them —
/// the byte-real form of [`corrupt_update`].
///
/// Dense and sparse frames take the same seeded pattern, written into
/// value slots of the encoded buffer, so the decoded result is bit-exact
/// with the legacy in-memory corruption (the golden traces pin this) and
/// the frame always re-parses — surviving those values is the defensive
/// gate's job. Quantized and ternary frames take raw byte overwrites
/// anywhere in the frame; a hit that lands in the header makes the
/// decoder reject the whole update.
///
/// Every overwrite preserves the frame length, so the ledger charge
/// (`encoded_len()`) is unaffected either way.
///
/// # Errors
///
/// Returns the decoder's verdict when the corrupted bytes no longer
/// parse; the payload is left untouched (the runtime drops it on arrival
/// — the bytes still travelled and were charged).
pub fn corrupt_payload(payload: &mut UpdatePayload, seed: u64) -> Result<(), DecodeError> {
    let mut bytes = payload.encode();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_44);
    match payload {
        UpdatePayload::Dense(d) => {
            let slots = d.len();
            if slots == 0 {
                return Ok(());
            }
            let hits = (slots / 100).max(3).min(slots);
            for _ in 0..hits {
                let at = DENSE_HEADER_BYTES + 4 * rng.gen_range(0..slots);
                bytes[at..at + 4].copy_from_slice(&corruption_pattern(&mut rng).to_le_bytes());
            }
        }
        UpdatePayload::Sparse(s) => {
            let slots = s.nnz();
            if slots == 0 {
                return Ok(());
            }
            let hits = (slots / 100).max(3).min(slots);
            for _ in 0..hits {
                let at = SPARSE_HEADER_BYTES + SPARSE_PAIR_BYTES * rng.gen_range(0..slots) + 4;
                bytes[at..at + 4].copy_from_slice(&corruption_pattern(&mut rng).to_le_bytes());
            }
        }
        UpdatePayload::Quantized { .. } | UpdatePayload::Ternary { .. } => {
            let slots = bytes.len();
            let hits = (slots / 100).max(3).min(slots);
            for _ in 0..hits {
                let at = rng.gen_range(0..slots);
                bytes[at] = rng.gen::<u8>();
            }
        }
    }
    let form = payload.form();
    *payload = UpdatePayload::decode(form, &bytes)?;
    Ok(())
}

/// A per-client fault assignment with seeded stochastic evaluation.
///
/// # Examples
///
/// ```
/// use adafl_fl::faults::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::with_fraction(10, 0.2, FaultKind::Dropout { period: 2 }, 1);
/// assert_eq!(plan.affected_clients().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    kinds: Vec<FaultKind>,
    rng: StdRng,
}

impl FaultPlan {
    /// All clients reliable.
    pub fn reliable(clients: usize) -> Self {
        FaultPlan {
            kinds: vec![FaultKind::Reliable; clients],
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Creates a plan from explicit per-client kinds.
    ///
    /// # Panics
    ///
    /// Panics when `kinds` is empty or any kind's parameters are invalid
    /// (`period < 2`, `prob ∉ [0,1]`, `factor ≤ 1`).
    pub fn new(kinds: Vec<FaultKind>, seed: u64) -> Self {
        assert!(!kinds.is_empty(), "need at least one client");
        for k in &kinds {
            match *k {
                FaultKind::Reliable => {}
                FaultKind::Dropout { period } => {
                    assert!(period >= 2, "dropout period must be ≥ 2")
                }
                FaultKind::DataLoss { prob } => {
                    assert!(
                        (0.0..=1.0).contains(&prob),
                        "loss probability must be in [0,1]"
                    )
                }
                FaultKind::Stale { factor } => {
                    assert!(factor > 1.0, "staleness factor must exceed 1")
                }
                FaultKind::Crash { down_for, .. } => {
                    assert!(down_for >= 1, "crash outage must last at least 1 round")
                }
                FaultKind::Corruption { prob } => {
                    assert!(
                        (0.0..=1.0).contains(&prob),
                        "corruption probability must be in [0,1]"
                    )
                }
            }
        }
        FaultPlan {
            kinds,
            rng: StdRng::seed_from_u64(seed ^ 0xFA17),
        }
    }

    /// Marks the **first** `⌊fraction·clients⌋` clients with `kind` — the
    /// paper's "proportion of unreliable clients" knob.
    ///
    /// # Panics
    ///
    /// Panics when `clients` is zero or `fraction` is outside `[0, 1]`.
    pub fn with_fraction(clients: usize, fraction: f64, kind: FaultKind, seed: u64) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let affected = (fraction * clients as f64).round() as usize;
        let kinds = (0..clients)
            .map(|i| {
                if i < affected {
                    kind
                } else {
                    FaultKind::Reliable
                }
            })
            .collect();
        FaultPlan::new(kinds, seed)
    }

    /// Number of clients in the plan.
    pub fn clients(&self) -> usize {
        self.kinds.len()
    }

    /// Fault kind of one client.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn kind(&self, client: usize) -> FaultKind {
        self.kinds[client]
    }

    /// Indices of non-reliable clients.
    pub fn affected_clients(&self) -> Vec<usize> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| !matches!(k, FaultKind::Reliable))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `client`'s update reaches the server in `round`
    /// (evaluates dropout periods and data-loss randomness; staleness always
    /// delivers — it is a *timing* fault handled by the compute model).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn update_delivered(&mut self, client: usize, round: usize) -> bool {
        match self.kinds[client] {
            FaultKind::Reliable | FaultKind::Stale { .. } | FaultKind::Corruption { .. } => true,
            FaultKind::Dropout { period } => round % period == period - 1,
            FaultKind::DataLoss { prob } => self.rng.gen::<f64>() >= prob,
            FaultKind::Crash { .. } => !self.crashed(client, round),
        }
    }

    /// Whether `client` is inside its crash outage window during `round`.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn crashed(&self, client: usize, round: usize) -> bool {
        match self.kinds[client] {
            FaultKind::Crash { at_round, down_for } => {
                round >= at_round && round < at_round + down_for
            }
            _ => false,
        }
    }

    /// Whether `round` is the exact round in which `client` comes back
    /// from its crash outage (the engine restores it from a checkpoint).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn recovers_at(&self, client: usize, round: usize) -> bool {
        match self.kinds[client] {
            FaultKind::Crash { at_round, down_for } => round == at_round + down_for,
            _ => false,
        }
    }

    /// For a [`FaultKind::Corruption`] client, decides whether this round's
    /// update is corrupted; returns a fresh seed for
    /// [`corrupt_update`] when it is. Draws from the plan RNG **only** for
    /// corruption clients, so adding one to a fleet never perturbs the
    /// loss sequences of other fault kinds.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn corrupts_update(&mut self, client: usize) -> Option<u64> {
        match self.kinds[client] {
            FaultKind::Corruption { prob } => {
                if self.rng.gen::<f64>() < prob {
                    Some(self.rng.gen::<u64>())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Compute-time slowdown factor of one client (1.0 unless stale).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn slowdown(&self, client: usize) -> f64 {
        match self.kinds[client] {
            FaultKind::Stale { factor } => factor,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_plan_always_delivers() {
        let mut plan = FaultPlan::reliable(3);
        for round in 0..10 {
            for c in 0..3 {
                assert!(plan.update_delivered(c, round));
            }
        }
        assert!(plan.affected_clients().is_empty());
    }

    #[test]
    fn dropout_delivers_every_other_round() {
        let mut plan = FaultPlan::new(vec![FaultKind::Dropout { period: 2 }], 0);
        let delivered: Vec<bool> = (0..6).map(|r| plan.update_delivered(0, r)).collect();
        assert_eq!(delivered, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn data_loss_rate_matches_probability() {
        let mut plan = FaultPlan::new(vec![FaultKind::DataLoss { prob: 0.25 }], 3);
        let delivered = (0..4000).filter(|&r| plan.update_delivered(0, r)).count();
        let rate = delivered as f64 / 4000.0;
        assert!((rate - 0.75).abs() < 0.03, "delivery rate {rate}");
    }

    #[test]
    fn stale_clients_deliver_but_slow_down() {
        let mut plan = FaultPlan::new(vec![FaultKind::Stale { factor: 3.0 }], 0);
        assert!(plan.update_delivered(0, 0));
        assert_eq!(plan.slowdown(0), 3.0);
        assert_eq!(FaultPlan::reliable(1).slowdown(0), 1.0);
    }

    #[test]
    fn fraction_marks_expected_count() {
        let plan = FaultPlan::with_fraction(10, 0.4, FaultKind::DataLoss { prob: 0.5 }, 0);
        assert_eq!(plan.affected_clients(), vec![0, 1, 2, 3]);
        assert_eq!(plan.kind(4), FaultKind::Reliable);
        let none = FaultPlan::with_fraction(10, 0.0, FaultKind::Dropout { period: 2 }, 0);
        assert!(none.affected_clients().is_empty());
    }

    #[test]
    fn fraction_boundaries_are_accepted() {
        // Satellite: both inclusive boundaries of [0, 1] must be valid.
        let none = FaultPlan::with_fraction(5, 0.0, FaultKind::DataLoss { prob: 0.5 }, 0);
        assert!(none.affected_clients().is_empty());
        let all = FaultPlan::with_fraction(5, 1.0, FaultKind::DataLoss { prob: 0.5 }, 0);
        assert_eq!(all.affected_clients().len(), 5);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn fraction_above_one_panics() {
        FaultPlan::with_fraction(5, 1.0001, FaultKind::Dropout { period: 2 }, 0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn negative_fraction_panics() {
        FaultPlan::with_fraction(5, -0.0001, FaultKind::Dropout { period: 2 }, 0);
    }

    #[test]
    fn crash_window_blocks_delivery_then_recovers() {
        let kind = FaultKind::Crash {
            at_round: 3,
            down_for: 2,
        };
        let mut plan = FaultPlan::new(vec![kind, FaultKind::Reliable], 0);
        let delivered: Vec<bool> = (0..8).map(|r| plan.update_delivered(0, r)).collect();
        assert_eq!(
            delivered,
            vec![true, true, true, false, false, true, true, true]
        );
        assert!(plan.crashed(0, 3) && plan.crashed(0, 4));
        assert!(!plan.crashed(0, 2) && !plan.crashed(0, 5));
        assert!(plan.recovers_at(0, 5));
        assert!(!plan.recovers_at(0, 4) && !plan.recovers_at(0, 6));
        assert!(!plan.crashed(1, 3) && !plan.recovers_at(1, 5));
    }

    #[test]
    fn corruption_rate_matches_probability_and_delivers() {
        let mut plan = FaultPlan::new(vec![FaultKind::Corruption { prob: 0.3 }], 5);
        assert!((0..10).all(|r| plan.update_delivered(0, r)));
        let corrupted = (0..4000)
            .filter(|_| plan.corrupts_update(0).is_some())
            .count();
        let rate = corrupted as f64 / 4000.0;
        assert!((rate - 0.3).abs() < 0.03, "corruption rate {rate}");
    }

    #[test]
    fn corruption_clients_do_not_perturb_other_rng_streams() {
        // A DataLoss client's delivery sequence must be identical whether or
        // not a Corruption client shares the plan and gets queried.
        let run = |with_corruption: bool| {
            let kinds = if with_corruption {
                vec![
                    FaultKind::DataLoss { prob: 0.4 },
                    FaultKind::Corruption { prob: 0.5 },
                ]
            } else {
                vec![FaultKind::DataLoss { prob: 0.4 }, FaultKind::Reliable]
            };
            let mut plan = FaultPlan::new(kinds, 13);
            (0..200)
                .map(|r| plan.update_delivered(0, r))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn corrupt_update_injects_nonfinite_or_blowup() {
        let mut delta = vec![0.01f32; 500];
        corrupt_update(&mut delta, 7);
        let bad = delta
            .iter()
            .filter(|v| !v.is_finite() || v.abs() > 1e20)
            .count();
        assert!(bad >= 3, "only {bad} corrupted coordinates");
        // Deterministic per seed.
        let mut again = vec![0.01f32; 500];
        corrupt_update(&mut again, 7);
        let same = delta
            .iter()
            .zip(&again)
            .all(|(a, b)| (a.is_nan() && b.is_nan()) || a == b);
        assert!(same, "corruption not deterministic");
        // Empty vectors are a no-op.
        corrupt_update(&mut [], 7);
    }

    #[test]
    fn corrupt_payload_matches_legacy_corruption_for_dense_and_sparse() {
        use adafl_compression::top_k;
        let eq = |a: &[f32], b: &[f32]| {
            a.iter()
                .zip(b)
                .all(|(x, y)| (x.is_nan() && y.is_nan()) || x == y)
        };
        let base: Vec<f32> = (0..500).map(|i| ((i as f32) * 0.013).sin()).collect();

        let mut payload = UpdatePayload::dense(base.clone());
        corrupt_payload(&mut payload, 7).expect("dense frames always re-parse");
        let mut legacy = base.clone();
        corrupt_update(&mut legacy, 7);
        assert!(eq(&payload.into_dense(), &legacy), "dense drifted");

        let sparse = top_k(&base, 50);
        let mut payload = UpdatePayload::Sparse(sparse.clone());
        corrupt_payload(&mut payload, 9).expect("sparse frames always re-parse");
        let mut legacy = sparse;
        corrupt_update(legacy.values_mut(), 9);
        let UpdatePayload::Sparse(got) = payload else {
            unreachable!("form preserved")
        };
        assert_eq!(got.indices(), legacy.indices());
        assert!(eq(got.values(), legacy.values()), "sparse drifted");
    }

    #[test]
    fn corrupt_payload_on_packed_forms_decodes_or_rejects() {
        use adafl_compression::{QsgdQuantizer, TernGrad};
        let g: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.1).cos()).collect();
        let mut rejects = 0usize;
        let mut survivals = 0usize;
        for seed in 0..200u64 {
            for mut p in [
                UpdatePayload::quantized(QsgdQuantizer::new(8, 1).quantize(&g)),
                UpdatePayload::ternary(TernGrad::new(1).ternarize(&g)),
            ] {
                let form = p.form();
                let charged = p.encoded_len();
                match corrupt_payload(&mut p, seed) {
                    Ok(()) => {
                        survivals += 1;
                        // Byte overwrites preserve the frame length, so the
                        // ledger charge is stable across corruption.
                        assert_eq!(p.encoded_len(), charged);
                        assert_eq!(p.form(), form);
                    }
                    Err(_) => rejects += 1,
                }
            }
        }
        assert!(rejects > 0, "no header hit rejected in 400 trials");
        assert!(survivals > 0, "no body-only corruption survived");
    }

    #[test]
    #[should_panic(expected = "outage must last")]
    fn zero_length_crash_panics() {
        FaultPlan::new(
            vec![FaultKind::Crash {
                at_round: 0,
                down_for: 0,
            }],
            0,
        );
    }

    #[test]
    #[should_panic(expected = "corruption probability")]
    fn invalid_corruption_prob_panics() {
        FaultPlan::new(vec![FaultKind::Corruption { prob: 1.5 }], 0);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn invalid_period_panics() {
        FaultPlan::new(vec![FaultKind::Dropout { period: 1 }], 0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn invalid_staleness_panics() {
        FaultPlan::new(vec![FaultKind::Stale { factor: 1.0 }], 0);
    }
}
