//! Fault injection for the paper's resiliency study (Figure 1).
//!
//! A [`FaultPlan`] assigns one [`FaultKind`] per client; the engines query
//! it each round. The three conditions mirror Section III:
//!
//! * **Dropout** — a high-latency client in synchronous FL whose update only
//!   reaches the server every other round.
//! * **DataLoss** — an unreliable link that loses the client's update with
//!   some probability.
//! * **Stale** — an asynchronous client training `factor×` slower, so its
//!   contributions are based on outdated global models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure behaviour of one client.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Healthy client.
    Reliable,
    /// Update reaches the server only once every `period` rounds
    /// (the paper uses `period = 2`: "every other communication round").
    Dropout {
        /// Update delivery period in rounds (≥ 2).
        period: usize,
    },
    /// Each update is lost independently with probability `prob`.
    DataLoss {
        /// Loss probability in `[0, 1]`.
        prob: f64,
    },
    /// Trains `factor×` slower than nominal (async staleness; the paper
    /// uses `factor = 3`).
    Stale {
        /// Slowdown factor (> 1).
        factor: f64,
    },
}

/// A per-client fault assignment with seeded stochastic evaluation.
///
/// # Examples
///
/// ```
/// use adafl_fl::faults::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::with_fraction(10, 0.2, FaultKind::Dropout { period: 2 }, 1);
/// assert_eq!(plan.affected_clients().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    kinds: Vec<FaultKind>,
    rng: StdRng,
}

impl FaultPlan {
    /// All clients reliable.
    pub fn reliable(clients: usize) -> Self {
        FaultPlan {
            kinds: vec![FaultKind::Reliable; clients],
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Creates a plan from explicit per-client kinds.
    ///
    /// # Panics
    ///
    /// Panics when `kinds` is empty or any kind's parameters are invalid
    /// (`period < 2`, `prob ∉ [0,1]`, `factor ≤ 1`).
    pub fn new(kinds: Vec<FaultKind>, seed: u64) -> Self {
        assert!(!kinds.is_empty(), "need at least one client");
        for k in &kinds {
            match *k {
                FaultKind::Reliable => {}
                FaultKind::Dropout { period } => {
                    assert!(period >= 2, "dropout period must be ≥ 2")
                }
                FaultKind::DataLoss { prob } => {
                    assert!(
                        (0.0..=1.0).contains(&prob),
                        "loss probability must be in [0,1]"
                    )
                }
                FaultKind::Stale { factor } => {
                    assert!(factor > 1.0, "staleness factor must exceed 1")
                }
            }
        }
        FaultPlan {
            kinds,
            rng: StdRng::seed_from_u64(seed ^ 0xFA17),
        }
    }

    /// Marks the **first** `⌊fraction·clients⌋` clients with `kind` — the
    /// paper's "proportion of unreliable clients" knob.
    ///
    /// # Panics
    ///
    /// Panics when `clients` is zero or `fraction` is outside `[0, 1]`.
    pub fn with_fraction(clients: usize, fraction: f64, kind: FaultKind, seed: u64) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let affected = (fraction * clients as f64).round() as usize;
        let kinds = (0..clients)
            .map(|i| {
                if i < affected {
                    kind
                } else {
                    FaultKind::Reliable
                }
            })
            .collect();
        FaultPlan::new(kinds, seed)
    }

    /// Number of clients in the plan.
    pub fn clients(&self) -> usize {
        self.kinds.len()
    }

    /// Fault kind of one client.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn kind(&self, client: usize) -> FaultKind {
        self.kinds[client]
    }

    /// Indices of non-reliable clients.
    pub fn affected_clients(&self) -> Vec<usize> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| !matches!(k, FaultKind::Reliable))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `client`'s update reaches the server in `round`
    /// (evaluates dropout periods and data-loss randomness; staleness always
    /// delivers — it is a *timing* fault handled by the compute model).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn update_delivered(&mut self, client: usize, round: usize) -> bool {
        match self.kinds[client] {
            FaultKind::Reliable | FaultKind::Stale { .. } => true,
            FaultKind::Dropout { period } => round % period == period - 1,
            FaultKind::DataLoss { prob } => self.rng.gen::<f64>() >= prob,
        }
    }

    /// Compute-time slowdown factor of one client (1.0 unless stale).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn slowdown(&self, client: usize) -> f64 {
        match self.kinds[client] {
            FaultKind::Stale { factor } => factor,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_plan_always_delivers() {
        let mut plan = FaultPlan::reliable(3);
        for round in 0..10 {
            for c in 0..3 {
                assert!(plan.update_delivered(c, round));
            }
        }
        assert!(plan.affected_clients().is_empty());
    }

    #[test]
    fn dropout_delivers_every_other_round() {
        let mut plan = FaultPlan::new(vec![FaultKind::Dropout { period: 2 }], 0);
        let delivered: Vec<bool> = (0..6).map(|r| plan.update_delivered(0, r)).collect();
        assert_eq!(delivered, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn data_loss_rate_matches_probability() {
        let mut plan = FaultPlan::new(vec![FaultKind::DataLoss { prob: 0.25 }], 3);
        let delivered = (0..4000).filter(|&r| plan.update_delivered(0, r)).count();
        let rate = delivered as f64 / 4000.0;
        assert!((rate - 0.75).abs() < 0.03, "delivery rate {rate}");
    }

    #[test]
    fn stale_clients_deliver_but_slow_down() {
        let mut plan = FaultPlan::new(vec![FaultKind::Stale { factor: 3.0 }], 0);
        assert!(plan.update_delivered(0, 0));
        assert_eq!(plan.slowdown(0), 3.0);
        assert_eq!(FaultPlan::reliable(1).slowdown(0), 1.0);
    }

    #[test]
    fn fraction_marks_expected_count() {
        let plan = FaultPlan::with_fraction(10, 0.4, FaultKind::DataLoss { prob: 0.5 }, 0);
        assert_eq!(plan.affected_clients(), vec![0, 1, 2, 3]);
        assert_eq!(plan.kind(4), FaultKind::Reliable);
        let none = FaultPlan::with_fraction(10, 0.0, FaultKind::Dropout { period: 2 }, 0);
        assert!(none.affected_clients().is_empty());
    }

    #[test]
    #[should_panic(expected = "period")]
    fn invalid_period_panics() {
        FaultPlan::new(vec![FaultKind::Dropout { period: 1 }], 0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn invalid_staleness_panics() {
        FaultPlan::new(vec![FaultKind::Stale { factor: 1.0 }], 0);
    }
}
