//! Determinism guarantees of the pooled server path: a full adversarial
//! scenario — defensive gate, Multi-Krum robust stage, Byzantine and
//! corruption faults, telemetry recording — must be byte-identical when
//! the server worker pool runs single-threaded and when it fans out.
//!
//! This pins the whole parallel surface this crate exposes: parallel
//! uplink attack/corruption transforms (`process_uplink_frames`),
//! parallel defense sanitization, and the pooled robust estimators
//! (densify, column screens, distance matrix). Each collects results in
//! submission order, so histories, ledgers and traces may not depend on
//! pool width.

use adafl_data::partition::Partitioner;
use adafl_data::synthetic::SyntheticSpec;
use adafl_fl::config::FlConfig;
use adafl_fl::defense::DefenseConfig;
use adafl_fl::faults::{FaultKind, FaultPlan};
use adafl_fl::robust::RobustMethod;
use adafl_fl::runtime::RuntimeBuilder;
use adafl_fl::sync::strategies::FedAvg;
use adafl_fl::sync::SyncEngine;
use adafl_nn::models::ModelSpec;
use adafl_telemetry::{InMemoryRecorder, Trace};

/// A deliberately hostile 8-client scenario exercising every parallel
/// stage: sign-flip and boost attackers for the robust stage, a transit
/// corrupter for the decode-reject path, a dropout for the dropout path.
fn engine(threads: usize) -> SyncEngine {
    let config = FlConfig::builder()
        .clients(8)
        .rounds(3)
        .participation(1.0)
        .local_steps(2)
        .batch_size(16)
        .seed(7)
        .model(ModelSpec::LogisticRegression {
            in_features: 64,
            classes: 10,
        })
        .build();
    let data = SyntheticSpec::mnist_like(8, 480).generate(1);
    let (train, test) = data.split_at(400);
    let kinds = vec![
        FaultKind::SignFlip,
        FaultKind::Reliable,
        FaultKind::Corruption { prob: 0.5 },
        FaultKind::Reliable,
        FaultKind::Boost { factor: 5.0 },
        FaultKind::Reliable,
        FaultKind::Dropout { period: 2 },
        FaultKind::Reliable,
    ];
    RuntimeBuilder::new(config, test)
        .partitioned(&train, Partitioner::Iid)
        .faults(FaultPlan::new(kinds, 99))
        .defense(Some(DefenseConfig::default()))
        .robust(Some(RobustMethod::MultiKrum { f: 2, m: 4 }))
        .threads(Some(threads))
        .build_sync(Box::new(FedAvg::new()))
}

/// Strips the only legitimately nondeterministic telemetry dimension: wall
/// times measured inside spans.
fn scrub_wall_times(mut trace: Trace) -> Trace {
    for span in &mut trace.spans {
        span.wall_micros = 0;
    }
    trace
}

#[test]
fn pooled_and_single_thread_server_paths_are_byte_identical() {
    let mut narrow = engine(1);
    let narrow_rec = InMemoryRecorder::shared();
    narrow.set_recorder(narrow_rec.clone());
    let narrow_history = narrow.run();

    let mut wide = engine(4);
    let wide_rec = InMemoryRecorder::shared();
    wide.set_recorder(wide_rec.clone());
    let wide_history = wide.run();

    assert_eq!(narrow_history, wide_history);
    assert_eq!(narrow.global_params(), wide.global_params());
    assert_eq!(narrow.ledger(), wide.ledger());

    let narrow_t = scrub_wall_times(narrow_rec.snapshot());
    let wide_t = scrub_wall_times(wide_rec.snapshot());
    // Counters, gauges, histograms, spans and events — all of it.
    assert_eq!(narrow_t, wide_t);

    // The scenario must actually have driven the adversarial paths, or
    // the equality above proves nothing about them.
    let events: Vec<&str> = narrow_t.events.iter().map(|e| e.kind.as_str()).collect();
    assert!(
        events.contains(&"byzantine_attack"),
        "attacks fired: {events:?}"
    );
    assert!(
        narrow_history.records().iter().any(|r| r.contributors > 0),
        "some round aggregated updates"
    );
}
