//! Property tests for the Byzantine-robust pre-aggregators (satellite of
//! the robustness PR): every estimator is **permutation-invariant** over
//! client arrival order (bitwise — the stage canonicalises by client id
//! before any float touches an accumulator), **deterministic** (same
//! cohort in, same bytes out), and the parameter-free configurations
//! (`trim_ratio = 0`, Weiszfeld with zero iterations, Multi-Krum with
//! `f = 0, m ≥ n`) **exactly reproduce plain aggregation** on an honest
//! cohort.
//!
//! `PROPTEST_CASES` scales the case count (CI runs these elevated).

use adafl_fl::robust::{RobustAggregator, RobustMethod};
use adafl_fl::runtime::{RoundUpdate, UpdatePayload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const MAX_N: usize = 6;
const MAX_DIM: usize = 16;

fn values() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, MAX_N * MAX_DIM)
}

/// Builds a cohort of `n` updates of dimension `dim` with ascending,
/// non-contiguous client ids and varying weights.
fn cohort(values: &[f32], n: usize, dim: usize) -> Vec<RoundUpdate> {
    (0..n)
        .map(|i| RoundUpdate {
            client: 3 * i + 1,
            payload: UpdatePayload::dense(values[i * dim..(i + 1) * dim].to_vec()),
            weight: (i + 1) as f32,
        })
        .collect()
}

/// Plain sequential mean in client order — the reference the zero-trim and
/// zero-iteration estimators must hit bit-for-bit.
fn plain_mean(updates: &[RoundUpdate], dim: usize) -> Vec<f32> {
    let mut acc = vec![0.0f32; dim];
    for u in updates {
        u.payload.add_scaled_into(&mut acc, 1.0);
    }
    acc.iter().map(|a| a / updates.len() as f32).collect()
}

fn every_method() -> [RobustMethod; 5] {
    [
        RobustMethod::TrimmedMean { trim_ratio: 0.3 },
        RobustMethod::Median,
        RobustMethod::Krum { f: 1 },
        RobustMethod::MultiKrum { f: 1, m: 2 },
        RobustMethod::GeometricMedian {
            max_iters: 16,
            tol: 1e-9,
        },
    ]
}

proptest! {
    #[test]
    fn every_estimator_is_permutation_invariant(
        values in values(),
        n in 2usize..MAX_N + 1,
        dim in 1usize..MAX_DIM + 1,
        perm_seed in 0u64..u64::MAX,
    ) {
        let base = cohort(&values, n, dim);
        let mut shuffled = base.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(perm_seed));
        for method in every_method() {
            let agg = RobustAggregator::new(method);
            let (a, sa) = agg.pre_aggregate(dim, base.clone());
            let (b, sb) = agg.pre_aggregate(dim, shuffled.clone());
            // Bitwise equality: RoundUpdate derives PartialEq over f32
            // payloads, so any accumulation-order drift fails here.
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(sa, sb);
        }
    }

    #[test]
    fn every_estimator_is_deterministic(
        values in values(),
        n in 2usize..MAX_N + 1,
        dim in 1usize..MAX_DIM + 1,
    ) {
        let base = cohort(&values, n, dim);
        for method in every_method() {
            let agg = RobustAggregator::new(method);
            let (a, _) = agg.pre_aggregate(dim, base.clone());
            let (b, _) = agg.pre_aggregate(dim, base.clone());
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn zero_parameter_estimators_reproduce_plain_aggregation(
        values in values(),
        n in 2usize..MAX_N + 1,
        dim in 1usize..MAX_DIM + 1,
        perm_seed in 0u64..u64::MAX,
    ) {
        // The honest cohort arrives in arbitrary order; the stage must
        // still reproduce the client-ordered plain mean exactly.
        let base = cohort(&values, n, dim);
        let mean = plain_mean(&base, dim);
        let mut arrivals = base.clone();
        arrivals.shuffle(&mut StdRng::seed_from_u64(perm_seed));

        // Trimmed mean with nothing trimmed is the plain mean, bit-for-bit.
        let agg = RobustAggregator::new(RobustMethod::TrimmedMean { trim_ratio: 0.0 });
        let (out, stats) = agg.pre_aggregate(dim, arrivals.clone());
        prop_assert_eq!(out.len(), 1);
        prop_assert_eq!(out[0].payload.clone().into_dense(), mean.clone());
        prop_assert_eq!(stats.trimmed_values, 0);

        // Weiszfeld starts at the plain mean; zero iterations returns it.
        let agg = RobustAggregator::new(RobustMethod::GeometricMedian {
            max_iters: 0,
            tol: 1e-9,
        });
        let (out, _) = agg.pre_aggregate(dim, arrivals.clone());
        prop_assert_eq!(out[0].payload.clone().into_dense(), mean);

        // Multi-Krum with no Byzantine budget and a full keep-count passes
        // every update through untouched (in client order), so whatever
        // aggregation policy follows sees exactly the honest cohort.
        let agg = RobustAggregator::new(RobustMethod::MultiKrum { f: 0, m: MAX_N });
        let (out, stats) = agg.pre_aggregate(dim, arrivals);
        prop_assert_eq!(out, base);
        prop_assert_eq!(stats.rejected, 0);
    }
}
