//! End-to-end codec pipeline acceptance: quantized and ternary payloads
//! must travel a full synchronous round — selection → encode →
//! corruption injected into the real wire bytes → defense gate →
//! aggregation — with the ledger charged exactly the codec's
//! `encoded_len()` for every uplink, and learning must survive a fully
//! corrupting client.

use adafl_compression::codec::{QUANTIZED_HEADER_BYTES, TERNARY_HEADER_BYTES};
use adafl_data::partition::Partitioner;
use adafl_data::synthetic::SyntheticSpec;
use adafl_data::Dataset;
use adafl_fl::compute::ComputeModel;
use adafl_fl::defense::DefenseConfig;
use adafl_fl::faults::{FaultKind, FaultPlan};
use adafl_fl::runtime::RuntimeBuilder;
use adafl_fl::sync::strategies::FedAvg;
use adafl_fl::sync::{StaticCompression, SyncEngine};
use adafl_fl::FlConfig;
use adafl_netsim::{ClientNetwork, LinkProfile, LinkTrace};
use adafl_nn::models::ModelSpec;
use adafl_telemetry::{names, InMemoryRecorder};

const CLIENTS: usize = 6;
const ROUNDS: usize = 10;

fn config() -> FlConfig {
    FlConfig::builder()
        .clients(CLIENTS)
        .rounds(ROUNDS)
        .participation(1.0)
        .local_steps(3)
        .batch_size(16)
        .model(ModelSpec::LogisticRegression {
            in_features: 64,
            classes: 10,
        })
        .build()
}

fn task() -> (Dataset, Dataset) {
    SyntheticSpec::mnist_like(8, 600).generate(2).split_at(480)
}

/// One fully-corrupting client; everyone else reliable.
fn corrupt_plan() -> FaultPlan {
    let mut kinds = vec![FaultKind::Reliable; CLIENTS];
    kinds[0] = FaultKind::Corruption { prob: 1.0 };
    FaultPlan::new(kinds, 11)
}

fn engine(scheme: StaticCompression) -> SyncEngine {
    let (train, test) = task();
    let cfg = config();
    let shards = Partitioner::Iid.split(&train, CLIENTS, cfg.seed_for("partition"));
    let network = ClientNetwork::new(
        vec![LinkTrace::constant(LinkProfile::Broadband.spec()); CLIENTS],
        cfg.seed_for("network"),
    );
    let mut e = RuntimeBuilder::new(cfg, test)
        .shards(shards)
        .network(network)
        .compute(ComputeModel::uniform(CLIENTS, 0.05))
        .faults(corrupt_plan())
        .build_sync(Box::new(FedAvg::new()));
    e.set_compression(scheme);
    e.set_defense(DefenseConfig::default());
    e
}

/// Exact per-update wire size for each scheme at model dimension `dim`,
/// straight from the codec layout table.
fn per_update_len(scheme: StaticCompression, dim: usize) -> u64 {
    match scheme {
        StaticCompression::Qsgd { .. } => (QUANTIZED_HEADER_BYTES + dim) as u64,
        StaticCompression::TernGrad => (TERNARY_HEADER_BYTES + dim.div_ceil(4)) as u64,
        _ => panic!("only the packed forms are under test"),
    }
}

#[test]
fn packed_payloads_survive_corruption_and_charge_exact_bytes() {
    for scheme in [
        StaticCompression::Qsgd { levels: 8 },
        StaticCompression::TernGrad,
    ] {
        let mut e = engine(scheme);
        let rec = InMemoryRecorder::shared();
        e.set_recorder(rec.clone());
        let history = e.run();

        // Corruption really flowed through the encoded bytes.
        let trace = rec.snapshot();
        assert!(
            trace.counters[names::FL_CORRUPTIONS] > 0,
            "{scheme:?}: no corruption was injected"
        );

        // The gate + decode-reject path contained the corrupting client.
        assert!(
            e.global_params().iter().all(|v| v.is_finite()),
            "{scheme:?}: global model went non-finite"
        );
        assert!(
            history.final_accuracy() > 0.3,
            "{scheme:?}: learning did not survive corruption: {}",
            history.final_accuracy()
        );

        // Ledger accounting is byte-real: every uplink update — including
        // corrupted and decode-rejected ones, whose frames keep their
        // length — costs exactly the codec's encoded frame size.
        let expected = per_update_len(scheme, e.global_params().len());
        let ledger = e.ledger();
        assert_eq!(
            ledger.uplink_bytes(),
            ledger.uplink_updates() * expected,
            "{scheme:?}: ledger bytes drifted from encoded_len()"
        );
        assert_eq!(ledger.uplink_updates(), (CLIENTS * ROUNDS) as u64);
    }
}

#[test]
fn corrupted_packed_frames_reject_or_decode_deterministically() {
    // Byte-overwrite corruption on the packed forms may land in the
    // header (frame rejected at arrival) or the code body (frame decodes
    // to perturbed values for the defense gate to judge). Both paths are
    // deterministic under fixed seeds, and the server must account for
    // every corrupted frame one way or the other.
    let mut decode_rejects = 0u64;
    let mut defense_rejects = 0u64;
    for scheme in [
        StaticCompression::Qsgd { levels: 8 },
        StaticCompression::TernGrad,
    ] {
        let mut e = engine(scheme);
        let rec = InMemoryRecorder::shared();
        e.set_recorder(rec.clone());
        e.run();
        let trace = rec.snapshot();
        decode_rejects += trace
            .counters
            .get(names::FL_DECODE_REJECTIONS)
            .copied()
            .unwrap_or(0);
        defense_rejects += trace
            .counters
            .get(names::FL_DEFENSE_REJECTIONS)
            .copied()
            .unwrap_or(0);
    }
    assert!(
        decode_rejects + defense_rejects > 0,
        "corrupting client was never caught: {decode_rejects} decode rejects, \
         {defense_rejects} defense rejects"
    );
}
