//! Property tests pinning the sub-view wire format and the FedAvg
//! degeneracy of coverage-weighted aggregation.
//!
//! Two claims keep heterogeneous capacity honest:
//!
//! 1. a full-width [`SubView`] is a lossless frame — a payload built from
//!    `extract` survives encode → decode → scatter bitwise in all four
//!    wire forms, so turning the capacity machinery on with `full` tiers
//!    changes no transmitted value;
//! 2. [`coverage_weighted_fold`] with all-full-width clients is bitwise
//!    `==` [`vecops::weighted_average`] — the aggregation rule degenerates
//!    to exactly FedAvg, not approximately.
//!
//! Together with the golden-trace suite (capacity *off*), these pin both
//! edges of the feature: off is byte-identical to the legacy path, and on
//! with trivial tiers is value-identical.

use adafl_compression::{top_k, QsgdQuantizer, TernGrad, ViewDescriptor};
use adafl_fl::runtime::{RoundUpdate, UpdatePayload};
use adafl_fl::submodel::coverage_weighted_fold;
use adafl_nn::models::ModelSpec;
use adafl_nn::SubView;
use adafl_tensor::vecops;
use proptest::prelude::*;

/// Parameter count of the test MLP (6 → 8 → 4 → 3 with biases).
const DIM: usize = 6 * 8 + 8 + 8 * 4 + 4 + 4 * 3 + 3;

const MAX_N: usize = 6;
const MAX_DIM: usize = 48;

fn mlp_map() -> adafl_nn::ParamSegmentMap {
    let map = ModelSpec::Mlp {
        in_features: 6,
        hidden: vec![8, 4],
        classes: 3,
    }
    .build(7)
    .segment_map();
    assert_eq!(map.total_len(), DIM, "test MLP dimension drifted");
    map
}

fn dense_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..50.0, len)
}

/// The four base wire forms a view-local delta can travel as.
fn inner_forms(values: &[f32], k: usize, seed: u64) -> [UpdatePayload; 4] {
    [
        UpdatePayload::dense(values.to_vec()),
        UpdatePayload::Sparse(top_k(values, k)),
        UpdatePayload::quantized(QsgdQuantizer::new(4, seed).quantize(values)),
        UpdatePayload::ternary(TernGrad::new(seed).ternarize(values)),
    ]
}

proptest! {
    // extract → encode → decode → scatter is bitwise lossless for the
    // full view in every wire form: the decoded payload equals the
    // transmitted one, and scattering its view-local values reproduces
    // the payload's own densification exactly. For the dense inner form
    // the scattered vector is bitwise the original delta.
    #[test]
    fn full_width_subview_round_trips_every_wire_form(
        dense in dense_vec(DIM),
        k in 1usize..DIM,
        seed in 0u64..1024,
    ) {
        let map = mlp_map();
        let view = SubView::full(&map);
        prop_assert!(view.is_full());
        let extracted = view.extract(&dense);
        // The full view's gather is the identity.
        prop_assert_eq!(&extracted, &dense);

        let desc = ViewDescriptor::new(view.dense_len(), view.segments().to_vec());
        prop_assert_eq!(desc.view_len(), extracted.len());
        for inner in inner_forms(&extracted, k, seed) {
            let payload = UpdatePayload::sub_view(desc.clone(), inner);
            let bytes = payload.encode();
            prop_assert_eq!(bytes.len(), payload.encoded_len());

            let decoded = UpdatePayload::decode_view(payload.form(), &bytes).unwrap();
            prop_assert_eq!(&decoded, &payload);

            // Scatter the decoded view-local values back through the
            // SubView and compare against the payload's densification.
            let UpdatePayload::SubView { inner, .. } = decoded else {
                panic!("decode_view returned a non-view payload");
            };
            let view_values = inner.into_dense();
            let mut scattered = vec![0.0f32; view.dense_len()];
            view.scatter(&view_values, &mut scattered);
            let reference = payload.clone().into_dense();
            prop_assert_eq!(&scattered, &reference);
            if matches!(payload.form(), adafl_fl::runtime::WireForm::Dense) {
                prop_assert_eq!(&scattered, &dense);
            }
        }
    }

    // Partial views are exact on their coverage: scattering an extracted
    // slice into a zeroed buffer equals masking the original vector to
    // the view, for every width fraction and rolling round.
    #[test]
    fn width_view_extract_scatter_masks_exactly(
        dense in dense_vec(DIM),
        frac in 0.05f32..1.0,
        round in 0u64..64,
    ) {
        let map = mlp_map();
        let view = SubView::width(&map, frac, round);
        let extracted = view.extract(&dense);
        prop_assert_eq!(extracted.len(), view.view_len());

        let mut scattered = vec![0.0f32; DIM];
        view.scatter(&extracted, &mut scattered);
        let mut masked = dense.clone();
        view.zero_outside(&mut masked);
        prop_assert_eq!(scattered, masked);
    }

    // With every client full-width — framed or not — the coverage fold
    // is bitwise FedAvg: per-coordinate denominators accumulate the same
    // weight sequence `weighted_average` sums, so `w/den[i]` equals
    // `w/total` exactly.
    #[test]
    fn all_full_width_fold_is_bitwise_fedavg(
        pool in dense_vec(MAX_N * MAX_DIM),
        weights in proptest::collection::vec(0.5f32..8.0, MAX_N),
        n in 1usize..MAX_N + 1,
        dim in 1usize..MAX_DIM + 1,
        framed in 0usize..2,
    ) {
        let framed = framed == 1;
        let vectors: Vec<&[f32]> = (0..n)
            .map(|c| &pool[c * MAX_DIM..c * MAX_DIM + dim])
            .collect();
        let weights = &weights[..n];

        let updates: Vec<RoundUpdate> = vectors
            .iter()
            .zip(weights)
            .enumerate()
            .map(|(client, (v, &weight))| {
                let inner = UpdatePayload::dense(v.to_vec());
                let payload = if framed {
                    UpdatePayload::sub_view(ViewDescriptor::full(dim), inner)
                } else {
                    inner
                };
                RoundUpdate { client, payload, weight }
            })
            .collect();

        let fold = coverage_weighted_fold(dim, &updates).unwrap();
        let reference = vecops::weighted_average(&vectors, weights).unwrap();
        prop_assert_eq!(fold, reference);
    }
}
