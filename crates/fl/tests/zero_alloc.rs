//! Allocation-regression guard for the training hot path.
//!
//! A counting global allocator measures how many heap allocations a
//! `train_local` call performs after warm-up. Each call has a fixed
//! allocation overhead (the returned delta vector, flat parameter
//! snapshots), but the *per-step* cost must be zero: a call running 11
//! steps must allocate exactly as much as a call running 1 step. This
//! pins the whole workspace architecture — batch loading, im2col, layer
//! forward/backward, loss, and the optimizer step all reuse buffers.
//!
//! Kept as a single `#[test]` so no concurrent test thread perturbs the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adafl_data::partition::Partitioner;
use adafl_data::synthetic::SyntheticSpec;
use adafl_fl::FlClient;
use adafl_nn::models::ModelSpec;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn steady_state_training_steps_allocate_nothing() {
    // The paper's CNN: conv → pool → conv → pool → dense → dense, so the
    // check covers im2col scratch, activation caches and argmax buffers,
    // not just the dense path. Shard size is a multiple of the batch size
    // so every batch has identical shape.
    let spec = ModelSpec::MnistCnn {
        height: 16,
        width: 16,
        classes: 10,
    };
    let data = SyntheticSpec::mnist_like(16, 64).generate(5);
    let shards = Partitioner::Iid.split(&data, 1, 7);
    let mut clients = FlClient::fleet(&spec, shards, 0.05, 0.9, 16, 13);
    let client = &mut clients[0];
    let global = spec.build(13).params_flat();

    // Warm-up: grows every workspace/cache to steady-state capacity and
    // crosses an epoch boundary (4 batches per epoch).
    client.train_local(&global, 12, None);

    let (allocs_one_step, _) = allocations_during(|| client.train_local(&global, 1, None));
    let (allocs_eleven_steps, _) = allocations_during(|| client.train_local(&global, 11, None));

    // Identical totals mean the 10 extra steps performed zero heap
    // allocations; the fixed per-call overhead (delta vector, parameter
    // snapshots) cancels out.
    assert_eq!(
        allocs_eleven_steps, allocs_one_step,
        "per-step allocations crept back into the training hot path: \
         1-step call made {allocs_one_step} allocations, \
         11-step call made {allocs_eleven_steps}"
    );
    // Sanity: the counter is actually live.
    assert!(
        allocs_one_step > 0,
        "fixed per-call overhead should register"
    );

    // The gradient-hook configuration (the path sub-view training rides:
    // mask → hook → re-mask over the flat gradient) must not reintroduce
    // per-step allocations either. The hook itself only rescales in place.
    let mut hook = |grads: &mut [f32], _params: &[f32], _global: &[f32]| {
        for g in grads.iter_mut() {
            *g *= 0.5;
        }
    };
    client.train_local(&global, 12, Some(&mut hook));
    let (hooked_one_step, _) =
        allocations_during(|| client.train_local(&global, 1, Some(&mut hook)));
    let (hooked_eleven_steps, _) =
        allocations_during(|| client.train_local(&global, 11, Some(&mut hook)));
    assert_eq!(
        hooked_eleven_steps, hooked_one_step,
        "per-step allocations crept into the gradient-hook path: \
         1-step call made {hooked_one_step} allocations, \
         11-step call made {hooked_eleven_steps}"
    );
}
