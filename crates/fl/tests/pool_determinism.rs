//! Determinism guarantees of the persistent worker pool: pool-parallel and
//! sequential training must be byte-identical, both at the `LocalOutcome`
//! level and through a whole engine run's telemetry (modulo wall-clock
//! measurements, which are inherently nondeterministic).

use adafl_data::partition::Partitioner;
use adafl_data::synthetic::SyntheticSpec;
use adafl_fl::config::FlConfig;
use adafl_fl::pool::WorkerPool;
use adafl_fl::sync::strategies::FedAvg;
use adafl_fl::sync::SyncEngine;
use adafl_fl::{FlClient, LocalOutcome};
use adafl_nn::models::ModelSpec;
use adafl_telemetry::{InMemoryRecorder, Trace};

fn fleet() -> (Vec<FlClient>, Vec<f32>) {
    let spec = ModelSpec::Mlp {
        in_features: 64,
        hidden: vec![32],
        classes: 10,
    };
    let data = SyntheticSpec::mnist_like(8, 320).generate(3);
    let shards = Partitioner::Iid.split(&data, 8, 11);
    let clients = FlClient::fleet(&spec, shards, 0.05, 0.9, 16, 42);
    let global = spec.build(42).params_flat();
    (clients, global)
}

#[test]
fn pool_and_sequential_outcomes_are_byte_identical() {
    let (mut par_fleet, global) = fleet();
    let (mut seq_fleet, _) = fleet();

    let pool = WorkerPool::new(4);
    let jobs: Vec<Box<dyn FnOnce() -> LocalOutcome + Send + '_>> = par_fleet
        .iter_mut()
        .map(|client| {
            let global = &global;
            Box::new(move || client.train_local(global, 5, None)) as Box<_>
        })
        .collect();
    let parallel: Vec<LocalOutcome> = pool.scope_run(jobs);

    let sequential: Vec<LocalOutcome> = seq_fleet
        .iter_mut()
        .map(|client| client.train_local(&global, 5, None))
        .collect();

    // Byte-identical, not approximately equal: every delta coordinate, loss
    // and count must match exactly.
    assert_eq!(parallel, sequential);
    assert!(parallel.iter().any(|o| o.delta.iter().any(|&d| d != 0.0)));
}

fn engine(parallel: bool) -> SyncEngine {
    let config = FlConfig::builder()
        .clients(4)
        .rounds(3)
        .participation(1.0)
        .local_steps(3)
        .batch_size(16)
        .model(ModelSpec::LogisticRegression {
            in_features: 64,
            classes: 10,
        })
        .build();
    let data = SyntheticSpec::mnist_like(8, 400).generate(0);
    let (train, test) = data.split_at(320);
    let mut e = SyncEngine::new(
        config,
        &train,
        test,
        Partitioner::Iid,
        Box::new(FedAvg::new()),
    );
    e.set_parallel(parallel);
    e
}

/// Strips the only legitimately nondeterministic telemetry dimension: wall
/// times measured inside spans.
fn scrub_wall_times(mut trace: Trace) -> Trace {
    for span in &mut trace.spans {
        span.wall_micros = 0;
    }
    trace
}

#[test]
fn pool_and_sequential_telemetry_agree_modulo_wall_times() {
    let mut par = engine(true);
    let par_rec = InMemoryRecorder::shared();
    par.set_recorder(par_rec.clone());
    let par_history = par.run();

    let mut seq = engine(false);
    let seq_rec = InMemoryRecorder::shared();
    seq.set_recorder(seq_rec.clone());
    let seq_history = seq.run();

    assert_eq!(par_history, seq_history);
    assert_eq!(par.global_params(), seq.global_params());

    let par_t = scrub_wall_times(par_rec.snapshot());
    let seq_t = scrub_wall_times(seq_rec.snapshot());
    // Counters, gauges, histograms, spans and events — all of it.
    assert_eq!(par_t, seq_t);
    assert!(!par_t.spans.is_empty(), "telemetry actually recorded spans");
}
