//! Checkpoint/resume across engine instances: a server that restarts from a
//! checkpoint must continue improving from where it left off.

use adafl_data::partition::Partitioner;
use adafl_data::synthetic::SyntheticSpec;
use adafl_data::Dataset;
use adafl_fl::checkpoint::Checkpoint;
use adafl_fl::sync::strategies::FedAvg;
use adafl_fl::sync::SyncEngine;
use adafl_fl::FlConfig;
use adafl_nn::models::ModelSpec;

fn task() -> (Dataset, Dataset) {
    let data = SyntheticSpec::mnist_like(8, 600).generate(8);
    data.split_at(480)
}

fn config(rounds: usize) -> FlConfig {
    FlConfig::builder()
        .clients(5)
        .rounds(rounds)
        .local_steps(3)
        .batch_size(16)
        .model(ModelSpec::LogisticRegression {
            in_features: 64,
            classes: 10,
        })
        .build()
}

#[test]
fn resumed_engine_continues_improving() {
    let (train, test) = task();
    // Phase 1: train 10 rounds and checkpoint.
    let mut first = SyncEngine::new(
        config(10),
        &train,
        test.clone(),
        Partitioner::Iid,
        Box::new(FedAvg::new()),
    );
    let h1 = first.run();
    let ckpt = Checkpoint::new(10, first.global_params().to_vec());
    let bytes = ckpt.encode();

    // Phase 2: a fresh engine restores the checkpoint and keeps training.
    let restored = Checkpoint::decode(&bytes).expect("valid checkpoint");
    assert_eq!(restored.round, 10);
    let mut second = SyncEngine::new(
        config(10),
        &train,
        test.clone(),
        Partitioner::Iid,
        Box::new(FedAvg::new()),
    );
    second.set_global_params(&restored.params);
    let h2 = second.run();

    assert!(
        h2.final_accuracy() >= h1.final_accuracy() - 0.05,
        "resume regressed: {} then {}",
        h1.final_accuracy(),
        h2.final_accuracy()
    );
    // The resumed run must start from the checkpointed accuracy, not from
    // scratch: its first evaluation should already be far above chance.
    assert!(
        h2.records()[0].accuracy > 0.4,
        "resume started cold: {}",
        h2.records()[0].accuracy
    );
}

#[test]
fn file_checkpoint_survives_round_trip_mid_training() {
    let (train, test) = task();
    let mut engine = SyncEngine::new(
        config(4),
        &train,
        test,
        Partitioner::Iid,
        Box::new(FedAvg::new()),
    );
    engine.run();
    let dir = std::env::temp_dir().join("adafl_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("server.ckpt");
    Checkpoint::new(4, engine.global_params().to_vec())
        .write_file(&path)
        .unwrap();
    let back = Checkpoint::read_file(&path).unwrap();
    assert_eq!(back.params, engine.global_params());
    std::fs::remove_file(&path).ok();
}

#[test]
#[should_panic(expected = "length mismatch")]
fn restoring_wrong_sized_checkpoint_panics() {
    let (train, test) = task();
    let mut engine = SyncEngine::new(
        config(2),
        &train,
        test,
        Partitioner::Iid,
        Box::new(FedAvg::new()),
    );
    engine.set_global_params(&[0.0; 3]);
}
