//! Engine-level acceptance tests for the reliability layer: retry
//! transport must strictly beat fire-and-forget delivery under bursty
//! loss, every retransmitted and ACK byte must land in the ledger, and the
//! defensive gate must keep a corrupting client from poisoning the global
//! model.

use adafl_data::partition::Partitioner;
use adafl_data::synthetic::SyntheticSpec;
use adafl_data::Dataset;
use adafl_fl::compute::ComputeModel;
use adafl_fl::defense::DefenseConfig;
use adafl_fl::faults::{FaultKind, FaultPlan};
use adafl_fl::runtime::RuntimeBuilder;
use adafl_fl::sync::strategies::FedAvg;
use adafl_fl::sync::SyncEngine;
use adafl_fl::FlConfig;
use adafl_netsim::{ClientNetwork, GilbertElliott, LinkProfile, LinkTrace, ReliablePolicy};
use adafl_nn::models::ModelSpec;
use adafl_telemetry::{names, InMemoryRecorder};

const CLIENTS: usize = 5;
const ROUNDS: usize = 8;

fn config() -> FlConfig {
    FlConfig::builder()
        .clients(CLIENTS)
        .rounds(ROUNDS)
        .participation(1.0)
        .local_steps(3)
        .batch_size(16)
        .model(ModelSpec::LogisticRegression {
            in_features: 64,
            classes: 10,
        })
        .build()
}

fn split() -> (Dataset, Dataset) {
    SyntheticSpec::mnist_like(8, 500).generate(4).split_at(400)
}

/// Every client behind a Gilbert–Elliott channel with a 20% long-run loss
/// rate (0.4/(0.1+0.4)·0.05 + 0.1/(0.1+0.4)·0.8 = 0.20).
fn burst_network(seed: u64) -> ClientNetwork {
    let mut net = ClientNetwork::new(
        vec![LinkTrace::constant(LinkProfile::Broadband.spec()); CLIENTS],
        seed,
    );
    for c in 0..CLIENTS {
        net.set_burst_loss(c, GilbertElliott::new(0.1, 0.4, 0.05, 0.8, seed ^ c as u64));
    }
    net
}

fn engine(network: ClientNetwork, faults: FaultPlan) -> SyncEngine {
    let (train, test) = split();
    let cfg = config();
    let shards = Partitioner::Iid.split(&train, CLIENTS, cfg.seed_for("partition"));
    RuntimeBuilder::new(cfg, test)
        .shards(shards)
        .network(network)
        .compute(ComputeModel::uniform(CLIENTS, 0.05))
        .faults(faults)
        .build_sync(Box::new(FedAvg::new()))
}

#[test]
fn retries_beat_fire_and_forget_under_burst_loss() {
    let seed = 7;
    let mut plain = engine(burst_network(seed), FaultPlan::reliable(CLIENTS));
    plain.run();

    let mut reliable = engine(burst_network(seed), FaultPlan::reliable(CLIENTS));
    reliable.set_retry_policy(ReliablePolicy::default());
    reliable.run();

    let plain_delivered = plain.ledger().uplink_updates();
    let reliable_delivered = reliable.ledger().uplink_updates();
    assert!(
        reliable_delivered > plain_delivered,
        "retries did not raise the delivered-update rate: {reliable_delivered} vs {plain_delivered}"
    );
    // 20% loss on both legs wipes out a visible share of the
    // fire-and-forget round trips.
    assert!(plain_delivered < (CLIENTS * ROUNDS) as u64);
}

#[test]
fn ledger_accounts_for_retransmissions_and_acks() {
    let mut e = engine(burst_network(3), FaultPlan::reliable(CLIENTS));
    e.set_retry_policy(ReliablePolicy::default());
    let rec = InMemoryRecorder::shared();
    e.set_recorder(rec.clone());
    e.run();

    let ledger = e.ledger();
    // Payload totals never include overhead; the with-control view is
    // exactly payload + ACKs + wasted attempts.
    assert_eq!(
        ledger.total_bytes_with_control(),
        ledger.total_bytes() + ledger.control_bytes() + ledger.retransmission_bytes()
    );
    assert!(
        ledger.retransmission_bytes() > 0,
        "a 20% burst-loss run should have retransmitted something"
    );
    assert!(rec.snapshot().counters[names::NET_RETRIES] > 0);
    // One ACK per delivered transfer, nothing fractional.
    assert_eq!(
        ledger.control_bytes() % ReliablePolicy::default().ack_bytes as u64,
        0
    );
}

#[test]
fn clean_links_make_retry_overhead_exactly_one_ack_per_transfer() {
    let net = ClientNetwork::new(
        vec![LinkTrace::constant(LinkProfile::Broadband.spec()); CLIENTS],
        1,
    );
    let mut e = engine(net, FaultPlan::reliable(CLIENTS));
    e.set_retry_policy(ReliablePolicy::default());
    e.run();

    let ledger = e.ledger();
    assert_eq!(ledger.retransmission_bytes(), 0);
    // Full participation, loss-free: every round moves one downlink and one
    // uplink per client, each acknowledged once.
    let transfers = (2 * CLIENTS * ROUNDS) as u64;
    assert_eq!(
        ledger.control_bytes(),
        transfers * ReliablePolicy::default().ack_bytes as u64
    );
    assert_eq!(ledger.uplink_updates(), (CLIENTS * ROUNDS) as u64);
}

/// One client corrupts every update it sends; the defensive gate must keep
/// the global model finite and close to the fault-free run.
#[test]
fn defense_gate_contains_a_corrupting_client() {
    let clean_net = || {
        ClientNetwork::new(
            vec![LinkTrace::constant(LinkProfile::Broadband.spec()); CLIENTS],
            1,
        )
    };
    let corrupt_plan = || {
        let mut kinds = vec![FaultKind::Reliable; CLIENTS];
        kinds[0] = FaultKind::Corruption { prob: 1.0 };
        FaultPlan::new(kinds, 5)
    };

    let mut baseline = engine(clean_net(), FaultPlan::reliable(CLIENTS));
    let clean_history = baseline.run();

    let mut defended = engine(clean_net(), corrupt_plan());
    defended.set_defense(DefenseConfig::default());
    let rec = InMemoryRecorder::shared();
    defended.set_recorder(rec.clone());
    let defended_history = defended.run();

    assert!(
        defended.global_params().iter().all(|v| v.is_finite()),
        "defended global model went non-finite"
    );
    let trace = rec.snapshot();
    assert!(
        trace.counters[names::FL_DEFENSE_REJECTIONS] > 0,
        "gate never fired"
    );
    assert!(trace.counters[names::FL_CORRUPTIONS] > 0);
    let gap = (clean_history.final_accuracy() - defended_history.final_accuracy()).abs();
    assert!(
        gap < 0.15,
        "defended run strayed {gap:.3} from the fault-free run"
    );

    // Control: without the gate the same fault leaves the model non-finite.
    let mut exposed = engine(clean_net(), corrupt_plan());
    exposed.run();
    assert!(
        exposed.global_params().iter().any(|v| !v.is_finite()),
        "corruption fault too weak to matter — test is vacuous"
    );
}
