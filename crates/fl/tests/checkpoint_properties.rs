//! Property-based robustness tests for the checkpoint codec: any truncated
//! or single-byte-corrupted buffer must produce a `CheckpointError`, never
//! a panic and never a silently wrong decode.

use adafl_fl::checkpoint::Checkpoint;
use proptest::prelude::*;

fn params() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, 0..64)
}

proptest! {
    #[test]
    fn any_strict_prefix_is_an_error(
        round in 0u64..1_000_000,
        params in params(),
        cut in 0.0f64..1.0,
    ) {
        let bytes = Checkpoint::new(round, params).encode();
        let len = (cut * bytes.len() as f64) as usize; // always < full length
        prop_assert!(Checkpoint::decode(&bytes[..len]).is_err());
    }

    #[test]
    fn any_single_byte_flip_is_an_error(
        round in 0u64..1_000_000,
        params in params(),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = Checkpoint::new(round, params).encode().to_vec();
        let idx = ((pos * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        // The checksum covers the whole buffer, so a flip anywhere —
        // header, payload, or the checksum itself — must be rejected.
        prop_assert!(Checkpoint::decode(&bytes).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(0u8..255, 0..128)) {
        let _ = Checkpoint::decode(&data);
    }

    #[test]
    fn round_trip_is_lossless(round in 0u64..1_000_000, params in params()) {
        let ckpt = Checkpoint::new(round, params);
        prop_assert_eq!(Checkpoint::decode(&ckpt.encode()).unwrap(), ckpt);
    }
}
