//! Allocation-regression guard for the streaming aggregation path.
//!
//! The streaming fold's contract is O(model) steady-state memory: once a
//! sink's per-edge accumulators exist, folding an update must not
//! allocate at all — `fold` adds into the pre-sized accumulator in place.
//! A counting global allocator pins exactly that: accepting 64 updates
//! through a streaming [`UpdateSink`] allocates nothing beyond what
//! accepting 1 update does (namely nothing), and merging edge partials is
//! likewise allocation-free. This is what lets a round fold a 100k-client
//! cohort without the server's memory growing past the model size.
//!
//! Kept as a single `#[test]` so no concurrent test thread perturbs the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adafl_fl::runtime::{
    AggregationPolicy, RoundUpdate, SinkMode, StreamAccumulator, UpdatePayload, UpdateSink,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// A policy using the trait's default fold/finish (the streaming
/// weighted mean every streaming-capable policy builds on).
#[derive(Debug)]
struct MeanPolicy;

impl AggregationPolicy for MeanPolicy {
    fn label(&self) -> &str {
        "mean"
    }
    fn aggregate(
        &mut self,
        _global: &mut [f32],
        _global_gradient: &mut Vec<f32>,
        _updates: Vec<RoundUpdate>,
    ) {
        unreachable!("streaming-only test");
    }
    fn supports_streaming(&self) -> bool {
        true
    }
}

#[test]
fn streaming_fold_is_allocation_free_at_steady_state() {
    const DIM: usize = 4096;
    const EDGES: usize = 4;
    let mut policy = MeanPolicy;

    // Materialise the round's updates up front — in the runtime these are
    // decoded wire frames that exist either way; the property under test
    // is the *sink's* footprint, not the transport's.
    let updates: Vec<RoundUpdate> = (0..64)
        .map(|c| RoundUpdate {
            client: c,
            payload: UpdatePayload::dense(vec![0.125 * (c as f32 + 1.0); DIM]),
            weight: (c % 7 + 1) as f32,
        })
        .collect();

    // Sink construction allocates the per-edge accumulators: O(model ×
    // edges), once per round.
    let mut sink = UpdateSink::new(SinkMode::Streaming, DIM, EDGES);

    // Warm-up: the first accept exercises any lazy init.
    sink.accept(&mut policy, updates[0].clone());

    let folds: Vec<RoundUpdate> = updates[1..].to_vec();
    let (allocs, ()) = allocations_during(|| {
        for u in folds {
            sink.accept(&mut policy, u);
        }
    });
    assert_eq!(
        allocs, 0,
        "folding an update into a streaming sink must not allocate"
    );
    assert_eq!(sink.delivered(), 64);

    // Merging edge partials is element-wise into the destination buffer.
    let mut merged = StreamAccumulator::new(DIM);
    let partial = StreamAccumulator::new(DIM);
    let (allocs, ()) = allocations_during(|| merged.merge(&partial));
    assert_eq!(allocs, 0, "merging partial accumulators must not allocate");

    // Resetting for the next round reuses the same buffer.
    let (allocs, ()) = allocations_during(|| merged.reset());
    assert_eq!(allocs, 0, "resetting an accumulator must not allocate");
}
