//! Async-engine behaviour under lossy and bursty networks: lost transfers
//! must trigger resynchronisation rather than deadlock, and the run must
//! still complete its update budget.

use adafl_data::partition::Partitioner;
use adafl_data::synthetic::SyntheticSpec;
use adafl_fl::compute::ComputeModel;
use adafl_fl::r#async::strategies::{FedAsync, FedBuff};
use adafl_fl::r#async::AsyncEngine;
use adafl_fl::runtime::RuntimeBuilder;
use adafl_fl::FlConfig;
use adafl_netsim::{ClientNetwork, LinkProfile, LinkSpec, LinkTrace, TraceKind};
use adafl_nn::models::ModelSpec;

const CLIENTS: usize = 5;

fn config() -> FlConfig {
    FlConfig::builder()
        .clients(CLIENTS)
        .rounds(10)
        .local_steps(3)
        .batch_size(16)
        .model(ModelSpec::LogisticRegression {
            in_features: 64,
            classes: 10,
        })
        .build()
}

fn engine_with_network(network: ClientNetwork, budget: u64) -> AsyncEngine {
    let data = SyntheticSpec::mnist_like(8, 500).generate(4);
    let (train, test) = data.split_at(400);
    let cfg = config();
    let shards = Partitioner::Iid.split(&train, CLIENTS, cfg.seed_for("partition"));
    RuntimeBuilder::new(cfg, test)
        .shards(shards)
        .network(network)
        .compute(ComputeModel::uniform(CLIENTS, 0.05))
        .update_budget(budget)
        .build_async(Box::new(FedAsync::new(0.6, 0.5)))
        .unwrap()
}

#[test]
fn lossy_links_resync_instead_of_deadlocking() {
    // 30% loss on every transfer: the engine must still reach its budget.
    let spec = LinkSpec::new(2e6, 10e6, 0.01, 0.01, 0.3);
    let network = ClientNetwork::new(vec![LinkTrace::constant(spec); CLIENTS], 9);
    let mut e = engine_with_network(network, 40);
    let history = e.run();
    assert!(!history.is_empty());
    assert!(history.final_accuracy() > 0.3, "lossy run failed to learn");
    // Losses inflate sends relative to arrivals.
    assert!(e.ledger().uplink_updates() >= 40);
}

#[test]
fn time_varying_links_slow_but_do_not_break_the_run() {
    let degraded = LinkTrace::new(
        LinkProfile::Broadband.spec(),
        TraceKind::Periodic {
            period: 5.0,
            duty: 0.5,
            degraded_scale: 0.01,
        },
    );
    let steady = ClientNetwork::new(
        vec![LinkTrace::constant(LinkProfile::Broadband.spec()); CLIENTS],
        1,
    );
    let congested = ClientNetwork::new(vec![degraded; CLIENTS], 1);

    let steady_end = {
        let mut e = engine_with_network(steady, 30);
        let h = e.run();
        h.records().last().unwrap().sim_time.seconds()
    };
    let congested_end = {
        let mut e = engine_with_network(congested, 30);
        let h = e.run();
        h.records().last().unwrap().sim_time.seconds()
    };
    assert!(
        congested_end > steady_end,
        "congestion had no timing effect: {congested_end} vs {steady_end}"
    );
}

#[test]
fn fedbuff_partial_buffer_never_updates_global() {
    // A budget smaller than the buffer size leaves the global untouched.
    let data = SyntheticSpec::mnist_like(8, 500).generate(4);
    let (train, test) = data.split_at(400);
    let cfg = config();
    let shards = Partitioner::Iid.split(&train, CLIENTS, cfg.seed_for("partition"));
    let network = ClientNetwork::new(
        vec![LinkTrace::constant(LinkProfile::Broadband.spec()); CLIENTS],
        1,
    );
    let mut e = RuntimeBuilder::new(cfg, test)
        .shards(shards)
        .network(network)
        .compute(ComputeModel::uniform(CLIENTS, 0.05))
        .update_budget(6) // fewer arrivals than the buffer needs
        .build_async(Box::new(FedBuff::new(10, 1.0)))
        .unwrap();
    e.run();
    assert_eq!(e.version(), 0, "buffer flushed early");
}
