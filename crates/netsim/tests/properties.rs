//! Property-based tests of the network simulator.

use adafl_netsim::{EventQueue, LinkSpec, LinkTrace, SimTime, TraceKind};
use proptest::prelude::*;

proptest! {
    #[test]
    fn transfer_time_is_monotone_in_payload(
        bw in 1_000.0f64..10_000_000.0,
        latency in 0.0f64..1.0,
        small in 0usize..100_000,
        extra in 1usize..100_000,
    ) {
        let link = LinkSpec::new(bw, bw, latency, latency, 0.0);
        let t_small = link.uplink_time(small);
        let t_big = link.uplink_time(small + extra);
        prop_assert!(t_big > t_small);
        prop_assert!(t_small.seconds() >= latency);
    }

    #[test]
    fn transfer_time_scales_inversely_with_bandwidth(
        bw in 1_000.0f64..1_000_000.0,
        bytes in 1usize..1_000_000,
    ) {
        let slow = LinkSpec::new(bw, bw, 0.0, 0.0, 0.0);
        let fast = LinkSpec::new(bw * 2.0, bw * 2.0, 0.0, 0.0, 0.0);
        let ratio = slow.uplink_time(bytes).seconds() / fast.uplink_time(bytes).seconds();
        prop_assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1000.0, 1..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_seconds(t), i);
        }
        let mut last = -1.0f64;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.seconds() >= last);
            last = t.seconds();
        }
    }

    #[test]
    fn periodic_trace_never_exceeds_nominal(
        period in 0.5f64..100.0,
        duty in 0.01f64..0.99,
        scale in 0.01f64..1.0,
        at in 0.0f64..10_000.0,
    ) {
        let nominal = LinkSpec::new(1_000_000.0, 2_000_000.0, 0.01, 0.01, 0.0);
        let trace = LinkTrace::new(
            nominal,
            TraceKind::Periodic { period, duty, degraded_scale: scale },
        );
        let link = trace.link_at(SimTime::from_seconds(at));
        prop_assert!(link.uplink_bandwidth() <= nominal.uplink_bandwidth() + 1e-9);
        prop_assert!(link.uplink_bandwidth() >= nominal.uplink_bandwidth() * scale - 1e-9);
    }

    #[test]
    fn random_walk_trace_stays_in_bounds(
        step in 0.1f64..50.0,
        lo in 0.05f64..0.5,
        hi_extra in 0.0f64..0.5,
        seed in 0u64..100,
        at in 0.0f64..10_000.0,
    ) {
        let hi = lo + hi_extra;
        let nominal = LinkSpec::new(1_000_000.0, 1_000_000.0, 0.0, 0.0, 0.0);
        let trace = LinkTrace::new(
            nominal,
            TraceKind::RandomWalk { step, min_scale: lo, max_scale: hi, seed },
        );
        let bw = trace.link_at(SimTime::from_seconds(at)).uplink_bandwidth();
        prop_assert!(bw >= 1_000_000.0 * lo - 1e-6);
        prop_assert!(bw <= 1_000_000.0 * hi + 1e-6);
    }

    #[test]
    fn sim_time_addition_is_commutative(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let x = SimTime::from_seconds(a) + SimTime::from_seconds(b);
        let y = SimTime::from_seconds(b) + SimTime::from_seconds(a);
        prop_assert_eq!(x, y);
    }
}
