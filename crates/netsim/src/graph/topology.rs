//! The mesh graph itself: nodes, directed links, failure/recovery
//! schedules and per-node energy budgets.
//!
//! A [`Topology`] is the *live* state of an ad-hoc edge network. Links and
//! nodes can be scheduled to go down (and come back up) at simulated
//! times; embedded nodes can carry an [`EnergyBudget`] that drains with
//! every transmitted byte and takes the node down for good when it hits
//! zero. Every state change bumps an epoch counter, which is how the
//! dynamic route planner knows its cached paths are stale.

use crate::{GilbertElliott, LinkSpec, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// What a node does in the federated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// Trains locally and originates updates.
    Client,
    /// Forwards traffic only (a mesh hop with no local data).
    Relay,
    /// The aggregation server; the sink of every uplink path.
    Server,
}

/// A battery: a byte allowance that drains with transmission.
///
/// Transfer-time simulation already accounts for radio duty cycles via
/// link bandwidth, so the budget is modelled directly in transmitted
/// bytes — `capacity_joules / joules_per_byte` collapses to one number.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct EnergyBudget {
    remaining_bytes: f64,
}

impl EnergyBudget {
    /// A budget that allows transmitting `bytes` before the node dies.
    ///
    /// # Panics
    ///
    /// Panics when `bytes` is not positive and finite.
    pub fn from_bytes(bytes: f64) -> Self {
        assert!(
            bytes.is_finite() && bytes > 0.0,
            "energy budget must be positive and finite"
        );
        EnergyBudget {
            remaining_bytes: bytes,
        }
    }

    /// Bytes this node can still transmit.
    pub fn remaining_bytes(&self) -> f64 {
        self.remaining_bytes
    }

    /// Returns `true` when the budget is exhausted.
    pub fn depleted(&self) -> bool {
        self.remaining_bytes <= 0.0
    }
}

#[derive(Debug, Clone)]
struct Node {
    role: NodeRole,
    up: bool,
    energy: Option<EnergyBudget>,
}

/// A directed link between two nodes.
///
/// The [`LinkSpec`]'s uplink fields describe traversal toward the server
/// (client→server transfers), the downlink fields traversal away from it;
/// [`Topology::add_duplex_link`] installs the same spec in both
/// directions, which is the common radio-mesh case.
#[derive(Debug, Clone)]
pub struct MeshLink {
    src: usize,
    dst: usize,
    spec: LinkSpec,
    up: bool,
    burst: Option<GilbertElliott>,
}

impl MeshLink {
    /// Transmitting endpoint.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Receiving endpoint.
    pub fn dst(&self) -> usize {
        self.dst
    }

    /// Link conditions.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }
}

/// One scheduled failure or recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ScheduleEntry {
    NodeDown(usize),
    NodeUp(usize),
    LinkDown(usize),
    LinkUp(usize),
}

/// A multi-hop mesh: nodes, directed links, and a seeded failure/recovery
/// schedule applied as simulated time advances.
///
/// # Examples
///
/// ```
/// use adafl_netsim::graph::{NodeRole, Topology};
/// use adafl_netsim::{LinkProfile, SimTime};
///
/// let mut topo = Topology::new();
/// let server = topo.add_node(NodeRole::Server);
/// let relay = topo.add_node(NodeRole::Relay);
/// let client = topo.add_node(NodeRole::Client);
/// topo.add_duplex_link(client, relay, LinkProfile::Broadband.spec());
/// topo.add_duplex_link(relay, server, LinkProfile::Broadband.spec());
/// assert_eq!(topo.nodes(), 3);
/// assert_eq!(topo.links(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<MeshLink>,
    /// Outgoing link ids per node, in insertion order (deterministic
    /// neighbour iteration for the planners).
    outgoing: Vec<Vec<usize>>,
    schedule: Vec<(SimTime, ScheduleEntry)>,
    schedule_sorted: bool,
    cursor: usize,
    epoch: u64,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology {
            schedule_sorted: true,
            ..Topology::default()
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, role: NodeRole) -> usize {
        self.nodes.push(Node {
            role,
            up: true,
            energy: None,
        });
        self.outgoing.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Adds a node with an energy budget that drains with transmitted
    /// bytes; the node goes down permanently when the budget hits zero.
    pub fn add_node_with_energy(&mut self, role: NodeRole, energy: EnergyBudget) -> usize {
        let id = self.add_node(role);
        self.nodes[id].energy = Some(energy);
        id
    }

    /// Adds one directed link, returning its id.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of bounds or `src == dst`.
    pub fn add_link(&mut self, src: usize, dst: usize, spec: LinkSpec) -> usize {
        assert!(
            src < self.nodes.len() && dst < self.nodes.len(),
            "link endpoint out of bounds"
        );
        assert_ne!(src, dst, "self-links are not allowed");
        self.links.push(MeshLink {
            src,
            dst,
            spec,
            up: true,
            burst: None,
        });
        let id = self.links.len() - 1;
        self.outgoing[src].push(id);
        id
    }

    /// Adds a link in each direction with the same spec, returning both
    /// ids (`a→b`, `b→a`).
    pub fn add_duplex_link(&mut self, a: usize, b: usize, spec: LinkSpec) -> (usize, usize) {
        (self.add_link(a, b, spec), self.add_link(b, a, spec))
    }

    /// Attaches a Gilbert–Elliott burst-loss channel to a link; while
    /// attached, the channel decides that link's per-hop losses instead of
    /// the spec's Bernoulli `drop_prob`.
    ///
    /// # Panics
    ///
    /// Panics when `link` is out of bounds.
    pub fn set_link_burst(&mut self, link: usize, channel: GilbertElliott) {
        self.links[link].burst = Some(channel);
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn links(&self) -> usize {
        self.links.len()
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `link` is out of bounds.
    pub fn link(&self, link: usize) -> &MeshLink {
        &self.links[link]
    }

    /// A node's role.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of bounds.
    pub fn role(&self, node: usize) -> NodeRole {
        self.nodes[node].role
    }

    /// Whether a node is currently up (not failed, not energy-depleted).
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of bounds.
    pub fn node_up(&self, node: usize) -> bool {
        self.nodes[node].up
    }

    /// A node's remaining energy budget, when it has one.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of bounds.
    pub fn energy(&self, node: usize) -> Option<EnergyBudget> {
        self.nodes[node].energy
    }

    /// Outgoing link ids of a node, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of bounds.
    pub fn outgoing(&self, node: usize) -> &[usize] {
        &self.outgoing[node]
    }

    /// Whether a link can carry a transfer right now: the link itself and
    /// both endpoints are up.
    ///
    /// # Panics
    ///
    /// Panics when `link` is out of bounds.
    pub fn usable(&self, link: usize) -> bool {
        let l = &self.links[link];
        l.up && self.nodes[l.src].up && self.nodes[l.dst].up
    }

    /// Monotonic counter bumped on every up/down state change; route
    /// planners compare epochs to detect staleness.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Schedules a node failure at `at`.
    pub fn schedule_node_down(&mut self, at: SimTime, node: usize) {
        self.push_schedule(at, ScheduleEntry::NodeDown(node));
    }

    /// Schedules a node recovery at `at`.
    pub fn schedule_node_up(&mut self, at: SimTime, node: usize) {
        self.push_schedule(at, ScheduleEntry::NodeUp(node));
    }

    /// Schedules a link failure at `at`.
    pub fn schedule_link_down(&mut self, at: SimTime, link: usize) {
        self.push_schedule(at, ScheduleEntry::LinkDown(link));
    }

    /// Schedules a link recovery at `at`.
    pub fn schedule_link_up(&mut self, at: SimTime, link: usize) {
        self.push_schedule(at, ScheduleEntry::LinkUp(link));
    }

    fn push_schedule(&mut self, at: SimTime, entry: ScheduleEntry) {
        assert!(
            self.cursor == 0,
            "schedule entries must be added before time advances"
        );
        self.schedule.push((at, entry));
        self.schedule_sorted = false;
    }

    /// Applies every scheduled failure/recovery at or before `now`;
    /// returns `true` when any node or link changed state. Idempotent and
    /// safe to call with non-monotonic times (earlier times are no-ops
    /// once passed).
    pub fn advance_to(&mut self, now: SimTime) -> bool {
        if !self.schedule_sorted {
            // Stable sort keeps same-time entries in insertion order, so
            // schedules are deterministic however they were built.
            self.schedule.sort_by(|a, b| {
                a.0.seconds()
                    .partial_cmp(&b.0.seconds())
                    .expect("schedule times are finite")
            });
            self.schedule_sorted = true;
        }
        let mut changed = false;
        while self.cursor < self.schedule.len() && self.schedule[self.cursor].0 <= now {
            let (_, entry) = self.schedule[self.cursor];
            self.cursor += 1;
            changed |= self.apply(entry);
        }
        changed
    }

    fn apply(&mut self, entry: ScheduleEntry) -> bool {
        let flipped = match entry {
            ScheduleEntry::NodeDown(n) => std::mem::replace(&mut self.nodes[n].up, false),
            ScheduleEntry::NodeUp(n) => {
                // An energy-depleted node stays down; recovery cannot
                // recharge a battery.
                if self.nodes[n].energy.is_some_and(|e| e.depleted()) {
                    return false;
                }
                !std::mem::replace(&mut self.nodes[n].up, true)
            }
            ScheduleEntry::LinkDown(l) => std::mem::replace(&mut self.links[l].up, false),
            ScheduleEntry::LinkUp(l) => !std::mem::replace(&mut self.links[l].up, true),
        };
        if flipped {
            self.epoch += 1;
        }
        flipped
    }

    /// Drains `bytes` from `node`'s energy budget (no-op for unmetered
    /// nodes). Returns `true` when this drain depleted the budget — the
    /// node goes down permanently and the epoch bumps.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of bounds.
    pub fn drain_energy(&mut self, node: usize, bytes: usize) -> bool {
        let Some(energy) = self.nodes[node].energy.as_mut() else {
            return false;
        };
        if energy.depleted() {
            return false;
        }
        energy.remaining_bytes -= bytes as f64;
        if energy.depleted() {
            self.nodes[node].up = false;
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    /// Long-run loss estimate of a link, for route costing: the burst
    /// channel's stationary rate when one is attached, else the spec's
    /// Bernoulli `drop_prob`.
    ///
    /// # Panics
    ///
    /// Panics when `link` is out of bounds.
    pub fn link_loss_estimate(&self, link: usize) -> f64 {
        match &self.links[link].burst {
            Some(channel) => channel.expected_loss_rate(),
            None => self.links[link].spec.drop_prob(),
        }
    }

    /// Per-hop loss decision for `link`: the attached burst channel when
    /// present, otherwise a Bernoulli draw from `rng` against the spec's
    /// `drop_prob`. Mirrors [`ClientNetwork`]: a burst channel never
    /// touches the shared RNG, so attaching one to a link leaves every
    /// other link's loss sequence untouched.
    ///
    /// [`ClientNetwork`]: crate::ClientNetwork
    ///
    /// # Panics
    ///
    /// Panics when `link` is out of bounds.
    pub(crate) fn hop_lost(&mut self, link: usize, rng: &mut StdRng) -> bool {
        match &mut self.links[link].burst {
            Some(channel) => channel.transfer_lost(),
            None => rng.gen::<f64>() < self.links[link].spec.drop_prob(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkProfile;

    fn chain() -> Topology {
        let mut t = Topology::new();
        let s = t.add_node(NodeRole::Server);
        let r = t.add_node(NodeRole::Relay);
        let c = t.add_node(NodeRole::Client);
        t.add_duplex_link(c, r, LinkProfile::Broadband.spec());
        t.add_duplex_link(r, s, LinkProfile::Broadband.spec());
        t
    }

    #[test]
    fn schedule_applies_in_time_order() {
        let mut t = chain();
        t.schedule_link_up(SimTime::from_seconds(5.0), 0);
        t.schedule_link_down(SimTime::from_seconds(2.0), 0);
        assert!(t.usable(0));
        assert!(!t.advance_to(SimTime::from_seconds(1.0)));
        assert!(t.advance_to(SimTime::from_seconds(2.0)));
        assert!(!t.usable(0));
        assert!(t.advance_to(SimTime::from_seconds(10.0)));
        assert!(t.usable(0));
        assert_eq!(t.epoch(), 2);
    }

    #[test]
    fn node_failure_takes_links_down() {
        let mut t = chain();
        t.schedule_node_down(SimTime::from_seconds(1.0), 1);
        t.advance_to(SimTime::from_seconds(1.0));
        assert!(!t.node_up(1));
        // Both links touching the relay become unusable.
        for l in 0..t.links() {
            assert!(!t.usable(l), "link {l} still usable with relay down");
        }
    }

    #[test]
    fn energy_depletion_is_permanent() {
        let mut t = Topology::new();
        let n = t.add_node_with_energy(NodeRole::Client, EnergyBudget::from_bytes(100.0));
        assert!(!t.drain_energy(n, 60));
        assert!(t.drain_energy(n, 60), "second drain crosses zero");
        assert!(!t.node_up(n));
        assert!(t.energy(n).unwrap().depleted());
        // A scheduled recovery cannot resurrect a dead battery.
        t.schedule_node_up(SimTime::from_seconds(1.0), n);
        t.advance_to(SimTime::from_seconds(1.0));
        assert!(!t.node_up(n));
        // Further drains are no-ops.
        assert!(!t.drain_energy(n, 60));
    }

    #[test]
    fn duplicate_state_changes_do_not_bump_epoch() {
        let mut t = chain();
        t.schedule_link_down(SimTime::from_seconds(1.0), 0);
        t.schedule_link_down(SimTime::from_seconds(2.0), 0);
        t.advance_to(SimTime::from_seconds(5.0));
        assert_eq!(t.epoch(), 1, "re-downing a down link is not a change");
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut t = Topology::new();
        let n = t.add_node(NodeRole::Relay);
        t.add_link(n, n, LinkProfile::Broadband.spec());
    }
}
