//! Graph-topology network simulation: multi-hop meshes with pluggable,
//! cost-aware dynamic rerouting.
//!
//! The star-shaped [`ClientNetwork`] models each client as one direct
//! link to the server. Real embedded fleets are ad-hoc meshes: traffic
//! crosses relays, nodes and links fail and recover mid-round, batteries
//! die, and the *path* a payload takes is itself a decision. This module
//! adds that layer:
//!
//! * [`Topology`] — nodes ([`NodeRole`]), directed links (a [`LinkSpec`]
//!   each, optionally a Gilbert–Elliott burst channel), seeded
//!   failure/recovery schedules, and optional [`EnergyBudget`]s that
//!   drain with transmitted bytes.
//! * [`RoutePlanner`] — the routing strategy. [`StaticShortestPath`] is
//!   the naive baseline (hop-count BFS, planned once, fails hard);
//!   [`CostAwareDijkstra`] re-plans on the live graph with
//!   latency + bandwidth + loss edge costs.
//! * [`MeshNetwork`] — presents the same uplink/downlink transfer
//!   surface as [`ClientNetwork`] over a routed topology, so the FL
//!   engines run either flavor unchanged.
//! * [`FleetNetwork`] — the enum the engines actually hold. Its `Star`
//!   arm delegates to the untouched [`ClientNetwork`] code path, which
//!   is what keeps star-topology runs byte-for-byte identical.
//! * [`TransferMedium`] — the shared transfer surface, implemented by
//!   all three, over which the reliable transport is generic.
//!
//! [`ClientNetwork`]: crate::ClientNetwork

mod mesh;
mod route;
mod topology;

pub use mesh::{MeshLayout, MeshNetwork};
pub use route::{CostAwareDijkstra, RoutePlanner, StaticShortestPath, TransferDirection};
pub use topology::{EnergyBudget, MeshLink, NodeRole, Topology};

use crate::{ClientNetwork, LinkSpec, SimTime, TransferOutcome};
use adafl_telemetry::SharedRecorder;

/// The transfer surface shared by the star and mesh networks: simulate a
/// payload moving between a client and the server, and describe the
/// effective end-to-end link for probes and ACK timing.
///
/// The reliable transport ([`ReliableTransfer`]) is generic over this
/// trait, so retry/backoff semantics are written once and hold over any
/// medium.
///
/// [`ReliableTransfer`]: crate::ReliableTransfer
pub trait TransferMedium {
    /// Simulates sending `bytes` from `client` to the server at `now`.
    fn uplink_transfer(&mut self, client: usize, bytes: usize, now: SimTime) -> TransferOutcome;

    /// Simulates sending `bytes` from the server to `client` at `now`.
    fn downlink_transfer(&mut self, client: usize, bytes: usize, now: SimTime) -> TransferOutcome;

    /// Effective end-to-end link conditions of `client` at `now`.
    fn link_at(&self, client: usize, now: SimTime) -> LinkSpec;
}

impl TransferMedium for ClientNetwork {
    fn uplink_transfer(&mut self, client: usize, bytes: usize, now: SimTime) -> TransferOutcome {
        ClientNetwork::uplink_transfer(self, client, bytes, now)
    }

    fn downlink_transfer(&mut self, client: usize, bytes: usize, now: SimTime) -> TransferOutcome {
        ClientNetwork::downlink_transfer(self, client, bytes, now)
    }

    fn link_at(&self, client: usize, now: SimTime) -> LinkSpec {
        ClientNetwork::link_at(self, client, now)
    }
}

impl TransferMedium for MeshNetwork {
    fn uplink_transfer(&mut self, client: usize, bytes: usize, now: SimTime) -> TransferOutcome {
        MeshNetwork::uplink_transfer(self, client, bytes, now)
    }

    fn downlink_transfer(&mut self, client: usize, bytes: usize, now: SimTime) -> TransferOutcome {
        MeshNetwork::downlink_transfer(self, client, bytes, now)
    }

    fn link_at(&self, client: usize, now: SimTime) -> LinkSpec {
        MeshNetwork::link_at(self, client, now)
    }
}

/// Either network flavor behind one type, so the round runtime holds a
/// concrete value and the star arm stays the exact pre-mesh code path.
///
/// Engine constructors take `impl Into<FleetNetwork>`, and both flavors
/// convert with [`From`] — existing call sites passing a
/// [`ClientNetwork`] compile unchanged.
#[derive(Debug, Clone)]
pub enum FleetNetwork {
    /// Star of direct per-client links (the original model).
    Star(ClientNetwork),
    /// Routed multi-hop mesh.
    Mesh(MeshNetwork),
}

impl From<ClientNetwork> for FleetNetwork {
    fn from(net: ClientNetwork) -> Self {
        FleetNetwork::Star(net)
    }
}

impl From<MeshNetwork> for FleetNetwork {
    fn from(net: MeshNetwork) -> Self {
        FleetNetwork::Mesh(net)
    }
}

impl FleetNetwork {
    /// Number of clients.
    pub fn len(&self) -> usize {
        match self {
            FleetNetwork::Star(net) => net.len(),
            FleetNetwork::Mesh(net) => net.len(),
        }
    }

    /// Returns `true` when the network has no clients (never true
    /// post-construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attaches a telemetry recorder to the underlying network.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        match self {
            FleetNetwork::Star(net) => net.set_recorder(recorder),
            FleetNetwork::Mesh(net) => net.set_recorder(recorder),
        }
    }

    /// Relay bytes accumulated by the mesh since the last call; always
    /// zero for a star (a star has no relays — nothing is recorded and
    /// no state is touched).
    pub fn take_relay_bytes(&mut self) -> u64 {
        match self {
            FleetNetwork::Star(_) => 0,
            FleetNetwork::Mesh(net) => net.take_relay_bytes(),
        }
    }

    /// The star network, when this is one (used by star-only tooling).
    pub fn as_star(&self) -> Option<&ClientNetwork> {
        match self {
            FleetNetwork::Star(net) => Some(net),
            FleetNetwork::Mesh(_) => None,
        }
    }

    /// The mesh network, when this is one.
    pub fn as_mesh(&self) -> Option<&MeshNetwork> {
        match self {
            FleetNetwork::Star(_) => None,
            FleetNetwork::Mesh(net) => Some(net),
        }
    }

    /// Simulates sending `bytes` from `client` to the server at `now`.
    pub fn uplink_transfer(
        &mut self,
        client: usize,
        bytes: usize,
        now: SimTime,
    ) -> TransferOutcome {
        match self {
            FleetNetwork::Star(net) => net.uplink_transfer(client, bytes, now),
            FleetNetwork::Mesh(net) => net.uplink_transfer(client, bytes, now),
        }
    }

    /// Simulates sending `bytes` from the server to `client` at `now`.
    pub fn downlink_transfer(
        &mut self,
        client: usize,
        bytes: usize,
        now: SimTime,
    ) -> TransferOutcome {
        match self {
            FleetNetwork::Star(net) => net.downlink_transfer(client, bytes, now),
            FleetNetwork::Mesh(net) => net.downlink_transfer(client, bytes, now),
        }
    }

    /// Effective end-to-end link conditions of `client` at `now` — the
    /// direct link for a star, the routed path's combined spec for a mesh.
    pub fn link_at(&self, client: usize, now: SimTime) -> LinkSpec {
        match self {
            FleetNetwork::Star(net) => net.link_at(client, now),
            FleetNetwork::Mesh(net) => net.link_at(client, now),
        }
    }
}

impl TransferMedium for FleetNetwork {
    fn uplink_transfer(&mut self, client: usize, bytes: usize, now: SimTime) -> TransferOutcome {
        FleetNetwork::uplink_transfer(self, client, bytes, now)
    }

    fn downlink_transfer(&mut self, client: usize, bytes: usize, now: SimTime) -> TransferOutcome {
        FleetNetwork::downlink_transfer(self, client, bytes, now)
    }

    fn link_at(&self, client: usize, now: SimTime) -> LinkSpec {
        FleetNetwork::link_at(self, client, now)
    }
}
