//! Route planning over the live mesh graph.
//!
//! Two planners bracket the design space the paper's constrained-network
//! setting cares about. [`StaticShortestPath`] is the naive baseline:
//! hop-count BFS planned once, blind to failures — when its path breaks
//! the transfer fails hard. [`CostAwareDijkstra`] re-plans on the *live*
//! graph whenever a failure or recovery lands, minimising a composite
//! per-edge cost
//!
//! ```text
//! cost(e) = latency_e + ref_bytes / bandwidth_e − loss_weight · ln(1 − p_e)
//! ```
//!
//! which is exactly the expected traversal time of a reference payload
//! plus a log-penalty that makes a path's loss terms add the way
//! independent per-hop delivery probabilities multiply.

use super::Topology;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which way a payload moves through the mesh: hops toward the server use
/// each link's uplink bandwidth/latency, hops away from it the downlink
/// fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDirection {
    /// Client → server.
    Uplink,
    /// Server → client.
    Downlink,
}

/// Strategy for picking a path of link ids from `src` to `dst`.
///
/// Planners are pure functions of the topology snapshot they are handed;
/// [`MeshNetwork`](super::MeshNetwork) owns caching and decides *when* to
/// re-plan (never for static planners, on every topology epoch change for
/// dynamic ones).
pub trait RoutePlanner: std::fmt::Debug + Send {
    /// Short name for telemetry and bench tables, e.g. `"naive"`.
    fn label(&self) -> &'static str;

    /// Whether cached routes must be re-planned when the topology's
    /// failure/recovery epoch changes.
    fn dynamic(&self) -> bool;

    /// Plans a path of link ids from `src` to `dst` over the currently
    /// usable links, or `None` when the nodes are partitioned.
    fn plan(
        &self,
        topo: &Topology,
        src: usize,
        dst: usize,
        direction: TransferDirection,
    ) -> Option<Vec<usize>>;

    /// Boxed clone, so networks holding a planner stay `Clone`.
    fn clone_box(&self) -> Box<dyn RoutePlanner>;
}

impl Clone for Box<dyn RoutePlanner> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The naive baseline: breadth-first search minimising hop count.
///
/// Ties are broken deterministically by link insertion order. The planner
/// reports itself non-dynamic, so the mesh plans each (client, direction)
/// once and keeps that path forever — a relay failure on it makes every
/// subsequent transfer fail until the relay recovers.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticShortestPath;

impl RoutePlanner for StaticShortestPath {
    fn label(&self) -> &'static str {
        "naive"
    }

    fn dynamic(&self) -> bool {
        false
    }

    fn plan(
        &self,
        topo: &Topology,
        src: usize,
        dst: usize,
        _direction: TransferDirection,
    ) -> Option<Vec<usize>> {
        if src == dst {
            return Some(Vec::new());
        }
        let mut incoming: Vec<Option<usize>> = vec![None; topo.nodes()];
        let mut visited = vec![false; topo.nodes()];
        visited[src] = true;
        let mut frontier = std::collections::VecDeque::from([src]);
        while let Some(node) = frontier.pop_front() {
            for &link in topo.outgoing(node) {
                if !topo.usable(link) {
                    continue;
                }
                let next = topo.link(link).dst();
                if visited[next] {
                    continue;
                }
                visited[next] = true;
                incoming[next] = Some(link);
                if next == dst {
                    return Some(unwind(topo, &incoming, src, dst));
                }
                frontier.push_back(next);
            }
        }
        None
    }

    fn clone_box(&self) -> Box<dyn RoutePlanner> {
        Box::new(*self)
    }
}

/// Dijkstra over composite edge costs, re-planned on the live graph.
///
/// The per-edge cost is the expected time to move `ref_bytes` across it
/// plus `−loss_weight · ln(1 − p)` where `p` is the link's long-run loss
/// estimate (burst-channel stationary rate when attached, Bernoulli
/// `drop_prob` otherwise). Links with `p ≥ 1` are treated as unusable.
#[derive(Debug, Clone, Copy)]
pub struct CostAwareDijkstra {
    /// Reference payload size used to convert bandwidth into seconds.
    ref_bytes: usize,
    /// Seconds charged per unit of `−ln(1 − p)` path unreliability.
    loss_weight: f64,
}

impl CostAwareDijkstra {
    /// A planner costing edges for `ref_bytes`-sized payloads with the
    /// given loss penalty weight.
    ///
    /// # Panics
    ///
    /// Panics when `loss_weight` is negative or not finite.
    pub fn new(ref_bytes: usize, loss_weight: f64) -> Self {
        assert!(
            loss_weight.is_finite() && loss_weight >= 0.0,
            "loss weight must be finite and non-negative"
        );
        CostAwareDijkstra {
            ref_bytes,
            loss_weight,
        }
    }

    fn edge_cost(&self, topo: &Topology, link: usize, direction: TransferDirection) -> Option<f64> {
        let loss = topo.link_loss_estimate(link);
        if loss >= 1.0 {
            return None;
        }
        let spec = topo.link(link).spec();
        let time = match direction {
            TransferDirection::Uplink => spec.uplink_time(self.ref_bytes),
            TransferDirection::Downlink => spec.downlink_time(self.ref_bytes),
        };
        Some(time.seconds() - self.loss_weight * (1.0 - loss).ln())
    }
}

impl Default for CostAwareDijkstra {
    /// Costs edges for a 100 KB payload (the order of a compressed model
    /// update) with a 1 s/nat loss penalty.
    fn default() -> Self {
        CostAwareDijkstra::new(100_000, 1.0)
    }
}

/// Max-heap entry ordered for min-cost extraction; ties broken by node id
/// so the frontier pops in one deterministic order on every platform.
#[derive(Debug, PartialEq)]
struct Candidate {
    cost: f64,
    node: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl RoutePlanner for CostAwareDijkstra {
    fn label(&self) -> &'static str {
        "dynamic"
    }

    fn dynamic(&self) -> bool {
        true
    }

    fn plan(
        &self,
        topo: &Topology,
        src: usize,
        dst: usize,
        direction: TransferDirection,
    ) -> Option<Vec<usize>> {
        if src == dst {
            return Some(Vec::new());
        }
        let mut dist = vec![f64::INFINITY; topo.nodes()];
        let mut incoming: Vec<Option<usize>> = vec![None; topo.nodes()];
        let mut heap = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(Candidate {
            cost: 0.0,
            node: src,
        });
        while let Some(Candidate { cost, node }) = heap.pop() {
            if cost > dist[node] {
                continue; // stale entry
            }
            if node == dst {
                return Some(unwind(topo, &incoming, src, dst));
            }
            for &link in topo.outgoing(node) {
                if !topo.usable(link) {
                    continue;
                }
                let Some(edge) = self.edge_cost(topo, link, direction) else {
                    continue;
                };
                let next = topo.link(link).dst();
                let candidate = cost + edge;
                if candidate < dist[next] {
                    dist[next] = candidate;
                    incoming[next] = Some(link);
                    heap.push(Candidate {
                        cost: candidate,
                        node: next,
                    });
                }
            }
        }
        None
    }

    fn clone_box(&self) -> Box<dyn RoutePlanner> {
        Box::new(*self)
    }
}

/// Walks the `incoming` link tree backwards from `dst` to `src` and
/// returns the path in forward order.
fn unwind(topo: &Topology, incoming: &[Option<usize>], src: usize, dst: usize) -> Vec<usize> {
    let mut path = Vec::new();
    let mut node = dst;
    while node != src {
        let link = incoming[node].expect("unwind follows a reached node");
        path.push(link);
        node = topo.link(link).src();
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeRole;
    use crate::{LinkProfile, LinkSpec, SimTime};

    /// server(0) — relay(1) — client(2), plus a direct lossy shortcut
    /// client(2) → server(0).
    fn diamond() -> Topology {
        let mut t = Topology::new();
        let s = t.add_node(NodeRole::Server);
        let r = t.add_node(NodeRole::Relay);
        let c = t.add_node(NodeRole::Client);
        t.add_duplex_link(c, r, LinkProfile::Broadband.spec()); // links 0, 1
        t.add_duplex_link(r, s, LinkProfile::Broadband.spec()); // links 2, 3
                                                                // One-hop shortcut with heavy loss: fewer hops, worse cost.
        t.add_link(c, s, LinkSpec::new(2e6, 10e6, 0.01, 0.01, 0.9)); // link 4
        t
    }

    #[test]
    fn bfs_prefers_fewest_hops() {
        let topo = diamond();
        let path = StaticShortestPath
            .plan(&topo, 2, 0, TransferDirection::Uplink)
            .unwrap();
        assert_eq!(path, vec![4], "BFS takes the lossy one-hop shortcut");
    }

    #[test]
    fn dijkstra_pays_hops_to_dodge_loss() {
        let topo = diamond();
        let path = CostAwareDijkstra::default()
            .plan(&topo, 2, 0, TransferDirection::Uplink)
            .unwrap();
        assert_eq!(path, vec![0, 2], "cost routing avoids the 90%-loss hop");
    }

    #[test]
    fn certain_loss_links_are_unroutable_for_dijkstra() {
        let mut topo = Topology::new();
        let s = topo.add_node(NodeRole::Server);
        let c = topo.add_node(NodeRole::Client);
        topo.add_link(c, s, LinkProfile::Broadband.spec().with_drop_prob(1.0));
        assert!(StaticShortestPath
            .plan(&topo, c, s, TransferDirection::Uplink)
            .is_some());
        assert!(CostAwareDijkstra::default()
            .plan(&topo, c, s, TransferDirection::Uplink)
            .is_none());
    }

    #[test]
    fn planners_respect_down_links_and_nodes() {
        let mut topo = diamond();
        topo.schedule_link_down(SimTime::ZERO, 4);
        topo.schedule_node_down(SimTime::ZERO, 1);
        topo.advance_to(SimTime::ZERO);
        for planner in [
            &StaticShortestPath as &dyn RoutePlanner,
            &CostAwareDijkstra::default(),
        ] {
            assert!(
                planner
                    .plan(&topo, 2, 0, TransferDirection::Uplink)
                    .is_none(),
                "{} routed through a dead graph",
                planner.label()
            );
        }
    }

    #[test]
    fn plans_are_deterministic_across_equal_cost_ties() {
        // Two identical disjoint relay paths: planners must pick the same
        // one on every call.
        let mut topo = Topology::new();
        let s = topo.add_node(NodeRole::Server);
        let r1 = topo.add_node(NodeRole::Relay);
        let r2 = topo.add_node(NodeRole::Relay);
        let c = topo.add_node(NodeRole::Client);
        let spec = LinkProfile::Constrained.spec();
        topo.add_link(c, r1, spec);
        topo.add_link(c, r2, spec);
        topo.add_link(r1, s, spec);
        topo.add_link(r2, s, spec);
        for planner in [
            &StaticShortestPath as &dyn RoutePlanner,
            &CostAwareDijkstra::default(),
        ] {
            let first = planner.plan(&topo, c, s, TransferDirection::Uplink);
            for _ in 0..10 {
                assert_eq!(first, planner.plan(&topo, c, s, TransferDirection::Uplink));
            }
        }
    }

    #[test]
    fn empty_route_for_self_transfer() {
        let topo = diamond();
        assert_eq!(
            StaticShortestPath.plan(&topo, 0, 0, TransferDirection::Uplink),
            Some(Vec::new())
        );
    }
}
