//! [`MeshNetwork`]: the multi-hop counterpart of [`ClientNetwork`].
//!
//! It exposes the exact same uplink/downlink transfer surface, so the FL
//! engines run unchanged over either flavor; underneath, every transfer is
//! routed across the live [`Topology`] by a pluggable [`RoutePlanner`],
//! store-and-forward per-hop delays are summed, per-hop losses applied,
//! per-node energy budgets drained, and relay traffic accounted so the
//! ledger can charge what the mesh really moved.
//!
//! [`ClientNetwork`]: crate::ClientNetwork

use super::route::{RoutePlanner, TransferDirection};
use super::topology::{NodeRole, Topology};
use crate::{LinkSpec, SimTime, TransferOutcome};
use adafl_telemetry::{names, EventRecord, SharedRecorder, SpanRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A topology with its FL endpoints identified: which node is the server
/// and which node backs each client index.
///
/// Layouts are plain data so generators (`bench::fleet`) and hand-built
/// examples can describe a mesh without committing to a routing strategy;
/// [`MeshLayout::into_network`] pairs the layout with a planner and seed.
#[derive(Debug, Clone)]
pub struct MeshLayout {
    /// The mesh graph.
    pub topology: Topology,
    /// Node id backing each client index, in client order.
    pub clients: Vec<usize>,
    /// The server's node id.
    pub server: usize,
}

impl MeshLayout {
    /// Consumes the layout into a routable [`MeshNetwork`].
    ///
    /// # Panics
    ///
    /// Panics when the layout is invalid (see [`MeshNetwork::new`]).
    pub fn into_network(self, planner: Box<dyn RoutePlanner>, seed: u64) -> MeshNetwork {
        MeshNetwork::new(self, planner, seed)
    }
}

/// One resolved path, remembered with the topology epoch it was planned
/// against so dynamic planners know when it went stale.
#[derive(Debug, Clone)]
struct CachedRoute {
    links: Vec<usize>,
    epoch: u64,
}

/// Multi-hop mesh network presenting the [`ClientNetwork`] transfer
/// surface over a routed [`Topology`].
///
/// Per-transfer semantics:
///
/// 1. the failure/recovery schedule is advanced to the transfer's start,
/// 2. the route is resolved — static planners keep their first path
///    forever, dynamic ones re-plan whenever the topology epoch moved
///    (a changed path counts a reroute, no path a partition),
/// 3. the payload walks the path store-and-forward: each hop drains the
///    transmitting node's energy budget, may lose the frame (burst
///    channel or Bernoulli draw from one seeded RNG), and adds its
///    latency + serialisation delay,
/// 4. hops beyond the first are accumulated as relay bytes for the
///    ledger, fetched with [`take_relay_bytes`].
///
/// [`ClientNetwork`]: crate::ClientNetwork
/// [`take_relay_bytes`]: MeshNetwork::take_relay_bytes
#[derive(Debug, Clone)]
pub struct MeshNetwork {
    topo: Topology,
    planner: Box<dyn RoutePlanner>,
    clients: Vec<usize>,
    server: usize,
    /// Cached route per client, `[uplink, downlink]`.
    routes: Vec<[Option<CachedRoute>; 2]>,
    rng: StdRng,
    recorder: SharedRecorder,
    pending_relay_bytes: u64,
}

fn slot(direction: TransferDirection) -> usize {
    match direction {
        TransferDirection::Uplink => 0,
        TransferDirection::Downlink => 1,
    }
}

/// Effective spec presented for a partitioned client: nothing gets
/// through, and probes scoring the path see certain loss.
fn unroutable_spec() -> LinkSpec {
    LinkSpec::new(1.0, 1.0, 0.0, 0.0, 1.0)
}

impl MeshNetwork {
    /// Creates a mesh network over the given layout.
    ///
    /// # Panics
    ///
    /// Panics when the layout has no clients, a client or server node id
    /// is out of bounds, a client node does not have [`NodeRole::Client`],
    /// the server node does not have [`NodeRole::Server`], or a client
    /// maps to the server node.
    pub fn new(layout: MeshLayout, planner: Box<dyn RoutePlanner>, seed: u64) -> Self {
        let MeshLayout {
            topology,
            clients,
            server,
        } = layout;
        assert!(!clients.is_empty(), "mesh needs at least one client");
        assert!(server < topology.nodes(), "server node out of bounds");
        assert_eq!(
            topology.role(server),
            NodeRole::Server,
            "server node must have the Server role"
        );
        for &node in &clients {
            assert!(node < topology.nodes(), "client node out of bounds");
            assert_eq!(
                topology.role(node),
                NodeRole::Client,
                "client node must have the Client role"
            );
            assert_ne!(node, server, "a client cannot be the server node");
        }
        let routes = vec![[None, None]; clients.len()];
        MeshNetwork {
            topo: topology,
            planner,
            clients,
            server,
            routes,
            rng: StdRng::seed_from_u64(seed ^ 0x4D45_5348),
            recorder: adafl_telemetry::noop(),
            pending_relay_bytes: 0,
        }
    }

    /// Attaches a telemetry recorder. Recording observes transfers only —
    /// it never touches the loss RNG, so traced and untraced runs take
    /// identical decisions.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Returns `true` when the mesh has no clients (never true
    /// post-construction).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// The live topology (for inspection; transfers mutate it).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The planner's short label (`"naive"` / `"dynamic"`).
    pub fn planner_label(&self) -> &'static str {
        self.planner.label()
    }

    /// Relay bytes accumulated since the last call: payload bytes put on
    /// the wire by hops beyond the sender's own first hop. The caller
    /// (the round runtime) drains this after every transfer and charges
    /// its ledger, so relays cost real bytes even across retransmissions.
    pub fn take_relay_bytes(&mut self) -> u64 {
        std::mem::take(&mut self.pending_relay_bytes)
    }

    fn endpoints(&self, client: usize, direction: TransferDirection) -> (usize, usize) {
        match direction {
            TransferDirection::Uplink => (self.clients[client], self.server),
            TransferDirection::Downlink => (self.server, self.clients[client]),
        }
    }

    /// Resolves the route a transfer will take, re-planning and recording
    /// reroute events as the planner's policy dictates.
    fn route_for_transfer(
        &mut self,
        client: usize,
        direction: TransferDirection,
        now: SimTime,
    ) -> Option<Vec<usize>> {
        let slot = slot(direction);
        let epoch = self.topo.epoch();
        if let Some(cached) = &self.routes[client][slot] {
            // Static planners never look again; dynamic ones trust a path
            // planned against the current epoch.
            if !self.planner.dynamic() || cached.epoch == epoch {
                return Some(cached.links.clone());
            }
        }
        let (src, dst) = self.endpoints(client, direction);
        let links = self.planner.plan(&self.topo, src, dst, direction)?;
        let rerouted = self.routes[client][slot]
            .as_ref()
            .is_some_and(|prev| prev.links != links);
        if rerouted {
            self.record_reroute(client, &links, now, direction);
        }
        self.routes[client][slot] = Some(CachedRoute {
            links: links.clone(),
            epoch,
        });
        Some(links)
    }

    fn transfer(
        &mut self,
        client: usize,
        bytes: usize,
        now: SimTime,
        direction: TransferDirection,
    ) -> TransferOutcome {
        assert!(client < self.clients.len(), "client out of bounds");
        self.topo.advance_to(now);
        let Some(route) = self.route_for_transfer(client, direction, now) else {
            self.record_partition(client, bytes, now, direction);
            return TransferOutcome::Dropped;
        };
        let mut t = now;
        for (hop, &link) in route.iter().enumerate() {
            if !self.topo.usable(link) {
                // A static route over a failed hop, or a node that died
                // earlier in this very walk: the transfer is stranded.
                self.record_partition(client, bytes, t, direction);
                return TransferOutcome::Dropped;
            }
            // The transmitting endpoint pays energy for the frame whether
            // or not it is heard; depletion takes the node down for every
            // *later* transfer (the frame in flight still goes out).
            let src = self.topo.link(link).src();
            if self.topo.drain_energy(src, bytes) {
                self.record_energy_depleted(src, t);
            }
            if hop > 0 {
                self.pending_relay_bytes += bytes as u64;
            }
            if self.topo.hop_lost(link, &mut self.rng) {
                self.record_drop(client, bytes, t, direction, hop);
                return TransferOutcome::Dropped;
            }
            let spec = self.topo.link(link).spec();
            t += match direction {
                TransferDirection::Uplink => spec.uplink_time(bytes),
                TransferDirection::Downlink => spec.downlink_time(bytes),
            };
        }
        self.record_transfer(client, bytes, now, t, route.len(), direction);
        TransferOutcome::Delivered { arrival: t }
    }

    /// Simulates sending `bytes` from `client` to the server starting at
    /// `now`, hopping across the mesh.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn uplink_transfer(
        &mut self,
        client: usize,
        bytes: usize,
        now: SimTime,
    ) -> TransferOutcome {
        self.transfer(client, bytes, now, TransferDirection::Uplink)
    }

    /// Simulates sending `bytes` from the server to `client` starting at
    /// `now`, hopping across the mesh.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn downlink_transfer(
        &mut self,
        client: usize,
        bytes: usize,
        now: SimTime,
    ) -> TransferOutcome {
        self.transfer(client, bytes, now, TransferDirection::Downlink)
    }

    /// The *effective* end-to-end link of `client` as the star surface
    /// would present it: path latencies summed, bandwidths combined
    /// harmonically (so `uplink_time` equals the store-and-forward sum),
    /// and `drop_prob` set to the uplink path's combined per-hop loss
    /// estimate. A partitioned client reports a certain-loss link.
    ///
    /// Read-only: it probes cached or freshly planned routes against the
    /// topology as of the last transfer, without advancing the schedule,
    /// re-routing, or recording anything — utility-score probes must not
    /// perturb the simulation.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn link_at(&self, client: usize, _now: SimTime) -> LinkSpec {
        let up = self.probe_route(client, TransferDirection::Uplink);
        let down = self.probe_route(client, TransferDirection::Downlink);
        let (Some(up), Some(down)) = (up, down) else {
            return unroutable_spec();
        };
        let (up_latency, up_inv_bw, up_loss) = self.path_stats(&up, TransferDirection::Uplink);
        let (down_latency, down_inv_bw, _) = self.path_stats(&down, TransferDirection::Downlink);
        LinkSpec::new(
            up_inv_bw.recip(),
            down_inv_bw.recip(),
            up_latency,
            down_latency,
            up_loss,
        )
    }

    /// The route a transfer would take right now, without caching or
    /// telemetry side effects.
    fn probe_route(&self, client: usize, direction: TransferDirection) -> Option<Vec<usize>> {
        let slot = slot(direction);
        if let Some(cached) = &self.routes[client][slot] {
            let current = cached.epoch == self.topo.epoch();
            if (self.planner.dynamic() && current)
                || (!self.planner.dynamic() && cached.links.iter().all(|&l| self.topo.usable(l)))
            {
                return Some(cached.links.clone());
            }
            if !self.planner.dynamic() {
                // Static route broken: transfers over it fail hard, and
                // probes should see exactly that.
                return None;
            }
        }
        let (src, dst) = self.endpoints(client, direction);
        self.planner.plan(&self.topo, src, dst, direction)
    }

    /// Sum of latencies, sum of inverse bandwidths, combined loss
    /// estimate over a path, direction-sided.
    fn path_stats(&self, route: &[usize], direction: TransferDirection) -> (f64, f64, f64) {
        let mut latency = 0.0;
        let mut inv_bw = 0.0;
        let mut deliver = 1.0;
        for &link in route {
            let spec = self.topo.link(link).spec();
            match direction {
                TransferDirection::Uplink => {
                    latency += spec.uplink_latency();
                    inv_bw += spec.uplink_bandwidth().recip();
                }
                TransferDirection::Downlink => {
                    latency += spec.downlink_latency();
                    inv_bw += spec.downlink_bandwidth().recip();
                }
            }
            deliver *= 1.0 - self.topo.link_loss_estimate(link);
        }
        (latency, inv_bw, (1.0 - deliver).clamp(0.0, 1.0))
    }

    fn direction_name(direction: TransferDirection) -> &'static str {
        match direction {
            TransferDirection::Uplink => "uplink",
            TransferDirection::Downlink => "downlink",
        }
    }

    fn record_reroute(
        &self,
        client: usize,
        links: &[usize],
        now: SimTime,
        direction: TransferDirection,
    ) {
        if !self.recorder.enabled() {
            return;
        }
        self.recorder.counter_add(names::MESH_REROUTES, 1);
        self.recorder.event(
            EventRecord::new(names::EVENT_MESH_REROUTE, now.seconds())
                .client(client)
                .field("hops", links.len())
                .field("direction", Self::direction_name(direction)),
        );
    }

    fn record_partition(
        &self,
        client: usize,
        bytes: usize,
        now: SimTime,
        direction: TransferDirection,
    ) {
        if !self.recorder.enabled() {
            return;
        }
        self.recorder.counter_add(names::MESH_PARTITIONS, 1);
        self.recorder.event(
            EventRecord::new(names::EVENT_MESH_PARTITION, now.seconds())
                .client(client)
                .field("bytes", bytes)
                .field("direction", Self::direction_name(direction)),
        );
    }

    fn record_energy_depleted(&self, node: usize, now: SimTime) {
        if !self.recorder.enabled() {
            return;
        }
        self.recorder.counter_add(names::MESH_ENERGY_DEPLETED, 1);
        self.recorder.event(
            EventRecord::new(names::EVENT_ENERGY_DEPLETED, now.seconds()).field("node", node),
        );
    }

    fn record_drop(
        &self,
        client: usize,
        bytes: usize,
        now: SimTime,
        direction: TransferDirection,
        hop: usize,
    ) {
        if !self.recorder.enabled() {
            return;
        }
        self.recorder.counter_add(names::NET_DROPS, 1);
        self.recorder.event(
            EventRecord::new(names::EVENT_TRANSFER_DROP, now.seconds())
                .client(client)
                .field("bytes", bytes)
                .field("direction", Self::direction_name(direction))
                .field("hop", hop),
        );
    }

    fn record_transfer(
        &self,
        client: usize,
        bytes: usize,
        start: SimTime,
        arrival: SimTime,
        hops: usize,
        direction: TransferDirection,
    ) {
        if !self.recorder.enabled() {
            return;
        }
        let (span_kind, histogram) = match direction {
            TransferDirection::Uplink => (names::SPAN_UPLINK, names::NET_UPLINK_SECONDS),
            TransferDirection::Downlink => (names::SPAN_DOWNLINK, names::NET_DOWNLINK_SECONDS),
        };
        let (start, end) = (start.seconds(), arrival.seconds());
        self.recorder.histogram_record(histogram, end - start);
        self.recorder
            .histogram_record(names::MESH_PATH_HOPS, hops as f64);
        self.recorder.span(
            SpanRecord::new(span_kind, start, end)
                .client(client)
                .field("bytes", bytes)
                .field("hops", hops),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CostAwareDijkstra, EnergyBudget, StaticShortestPath};
    use crate::LinkProfile;
    use adafl_telemetry::InMemoryRecorder;

    /// client(2) — relay(1) — server(0) chain with a spare relay(3):
    /// client(2) — relay(3) — server(0).
    fn two_path_layout() -> MeshLayout {
        let mut topo = Topology::new();
        let server = topo.add_node(NodeRole::Server);
        let relay_a = topo.add_node(NodeRole::Relay);
        let client = topo.add_node(NodeRole::Client);
        let relay_b = topo.add_node(NodeRole::Relay);
        let fast = LinkSpec::new(1000.0, 1000.0, 0.1, 0.1, 0.0);
        let slow = LinkSpec::new(500.0, 500.0, 0.2, 0.2, 0.0);
        topo.add_duplex_link(client, relay_a, fast); // links 0, 1
        topo.add_duplex_link(relay_a, server, fast); // links 2, 3
        topo.add_duplex_link(client, relay_b, slow); // links 4, 5
        topo.add_duplex_link(relay_b, server, slow); // links 6, 7
        MeshLayout {
            topology: topo,
            clients: vec![client],
            server,
        }
        // relay_a is node 1; the primary path is links [0, 2].
    }

    #[test]
    fn delivery_sums_per_hop_delays() {
        let mut net = two_path_layout().into_network(Box::new(CostAwareDijkstra::default()), 0);
        let out = net.uplink_transfer(0, 1000, SimTime::ZERO);
        // Two fast hops: (0.1 + 1.0) * 2.
        assert!((out.arrival().unwrap().seconds() - 2.2).abs() < 1e-9);
        // link_at agrees with the store-and-forward sum.
        let spec = net.link_at(0, SimTime::ZERO);
        assert!((spec.uplink_time(1000).seconds() - 2.2).abs() < 1e-9);
    }

    #[test]
    fn static_route_fails_hard_dynamic_reroutes() {
        let fail = SimTime::from_seconds(10.0);
        for (dynamic, expect_delivered) in [(false, false), (true, true)] {
            let mut layout = two_path_layout();
            layout.topology.schedule_node_down(fail, 1);
            let planner: Box<dyn RoutePlanner> = if dynamic {
                Box::new(CostAwareDijkstra::default())
            } else {
                Box::new(StaticShortestPath)
            };
            let rec = InMemoryRecorder::shared();
            let mut net = layout.into_network(planner, 0);
            net.set_recorder(rec.clone());
            assert!(net.uplink_transfer(0, 100, SimTime::ZERO).is_delivered());
            let after = net.uplink_transfer(0, 100, fail + SimTime::from_seconds(1.0));
            assert_eq!(after.is_delivered(), expect_delivered);
            let trace = rec.snapshot();
            let count = |n: &str| trace.counters.get(n).copied().unwrap_or(0);
            if dynamic {
                assert_eq!(count(names::MESH_REROUTES), 1);
                assert_eq!(count(names::MESH_PARTITIONS), 0);
                let reroute = trace.events_of(names::EVENT_MESH_REROUTE).next().unwrap();
                assert_eq!(reroute.client, Some(0));
            } else {
                assert_eq!(count(names::MESH_REROUTES), 0);
                assert_eq!(count(names::MESH_PARTITIONS), 1);
            }
        }
    }

    #[test]
    fn recovery_restores_the_better_path() {
        let mut layout = two_path_layout();
        layout
            .topology
            .schedule_node_down(SimTime::from_seconds(1.0), 1);
        layout
            .topology
            .schedule_node_up(SimTime::from_seconds(2.0), 1);
        let rec = InMemoryRecorder::shared();
        let mut net = layout.into_network(Box::new(CostAwareDijkstra::default()), 0);
        net.set_recorder(rec.clone());
        net.uplink_transfer(0, 100, SimTime::ZERO); // plans fast path
        net.uplink_transfer(0, 100, SimTime::from_seconds(1.5)); // reroute to slow
        let out = net.uplink_transfer(0, 100, SimTime::from_seconds(3.0)); // back to fast
        assert!(out.is_delivered());
        // Two fast hops again: 3.0 + (0.1 + 0.1) * 2.
        assert!((out.arrival().unwrap().seconds() - 3.4).abs() < 1e-9);
        assert_eq!(rec.snapshot().counters[names::MESH_REROUTES], 2);
    }

    #[test]
    fn full_partition_drops_and_counts() {
        let mut layout = two_path_layout();
        layout.topology.schedule_node_down(SimTime::ZERO, 1);
        layout.topology.schedule_node_down(SimTime::ZERO, 3);
        let rec = InMemoryRecorder::shared();
        let mut net = layout.into_network(Box::new(CostAwareDijkstra::default()), 0);
        net.set_recorder(rec.clone());
        assert!(!net.uplink_transfer(0, 100, SimTime::ZERO).is_delivered());
        assert_eq!(rec.snapshot().counters[names::MESH_PARTITIONS], 1);
        // The effective link reflects the partition for selection probes.
        assert_eq!(net.link_at(0, SimTime::ZERO).drop_prob(), 1.0);
    }

    #[test]
    fn relay_bytes_charge_every_extra_hop() {
        let mut net = two_path_layout().into_network(Box::new(CostAwareDijkstra::default()), 0);
        net.uplink_transfer(0, 1000, SimTime::ZERO); // 2 hops: 1 relay hop
        assert_eq!(net.take_relay_bytes(), 1000);
        assert_eq!(net.take_relay_bytes(), 0, "take drains the accumulator");
        net.downlink_transfer(0, 500, SimTime::ZERO);
        net.uplink_transfer(0, 200, SimTime::ZERO);
        assert_eq!(net.take_relay_bytes(), 700);
    }

    #[test]
    fn energy_depletion_takes_relay_down_and_reroutes() {
        let mut topo = Topology::new();
        let server = topo.add_node(NodeRole::Server);
        // Primary relay has a battery good for ~2 transfers of 100 bytes.
        let relay_a = topo.add_node_with_energy(NodeRole::Relay, EnergyBudget::from_bytes(250.0));
        let client = topo.add_node(NodeRole::Client);
        let relay_b = topo.add_node(NodeRole::Relay);
        let fast = LinkSpec::new(1000.0, 1000.0, 0.1, 0.1, 0.0);
        let slow = LinkSpec::new(500.0, 500.0, 0.2, 0.2, 0.0);
        topo.add_duplex_link(client, relay_a, fast);
        topo.add_duplex_link(relay_a, server, fast);
        topo.add_duplex_link(client, relay_b, slow);
        topo.add_duplex_link(relay_b, server, slow);
        let layout = MeshLayout {
            topology: topo,
            clients: vec![client],
            server,
        };
        let rec = InMemoryRecorder::shared();
        let mut net = layout.into_network(Box::new(CostAwareDijkstra::default()), 0);
        net.set_recorder(rec.clone());
        for i in 0..4 {
            let out = net.uplink_transfer(0, 100, SimTime::from_seconds(i as f64 * 10.0));
            assert!(out.is_delivered(), "transfer {i} lost");
        }
        let trace = rec.snapshot();
        assert_eq!(trace.counters[names::MESH_ENERGY_DEPLETED], 1);
        assert_eq!(trace.counters[names::MESH_REROUTES], 1);
        assert!(!net.topology().node_up(relay_a));
        let depleted = trace
            .events_of(names::EVENT_ENERGY_DEPLETED)
            .next()
            .unwrap();
        assert_eq!(
            depleted.fields[0],
            ("node".to_string(), adafl_telemetry::FieldValue::U64(1))
        );
    }

    #[test]
    fn transfers_are_deterministic_per_seed() {
        let run = |seed: u64| {
            // A lossy two-hop chain, so the RNG actually decides outcomes.
            let mut topo = Topology::new();
            let server = topo.add_node(NodeRole::Server);
            let relay = topo.add_node(NodeRole::Relay);
            let client = topo.add_node(NodeRole::Client);
            let lossy = LinkProfile::Lossy.spec();
            topo.add_duplex_link(client, relay, lossy);
            topo.add_duplex_link(relay, server, lossy);
            let layout = MeshLayout {
                topology: topo,
                clients: vec![client],
                server,
            };
            let mut net = layout.into_network(Box::new(CostAwareDijkstra::default()), seed);
            (0..60)
                .map(|_| net.uplink_transfer(0, 10, SimTime::ZERO).is_delivered())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn link_burst_channel_decides_hop_loss() {
        let mut layout = two_path_layout();
        // Certain loss on the fast client→relay_a hop via an always-Bad
        // channel; the planner's loss estimate now avoids that path.
        layout
            .topology
            .set_link_burst(0, crate::GilbertElliott::new(1.0, 0.0, 0.0, 1.0, 0));
        let mut net = layout.into_network(Box::new(CostAwareDijkstra::default()), 0);
        let out = net.uplink_transfer(0, 100, SimTime::ZERO);
        assert!(out.is_delivered(), "planner should route around the burst");
        // Two slow hops: (0.2 + 0.2) * 2.
        assert!((out.arrival().unwrap().seconds() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn probes_never_perturb_outcomes() {
        let run = |probe: bool| {
            let mut layout = two_path_layout();
            layout
                .topology
                .schedule_node_down(SimTime::from_seconds(5.0), 1);
            let mut net = layout.into_network(Box::new(CostAwareDijkstra::default()), 3);
            (0..20)
                .map(|i| {
                    if probe {
                        let _ = net.link_at(0, SimTime::from_seconds(i as f64));
                    }
                    net.uplink_transfer(0, 10, SimTime::from_seconds(i as f64))
                        .arrival()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "Client role")]
    fn relay_as_client_panics() {
        let mut topo = Topology::new();
        let server = topo.add_node(NodeRole::Server);
        let relay = topo.add_node(NodeRole::Relay);
        topo.add_duplex_link(relay, server, LinkProfile::Broadband.spec());
        MeshLayout {
            topology: topo,
            clients: vec![relay],
            server,
        }
        .into_network(Box::new(StaticShortestPath), 0);
    }
}
