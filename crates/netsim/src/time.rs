use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulated time in seconds since the start of the experiment.
///
/// A newtype over `f64` so simulated time cannot be confused with wall-clock
/// durations or payload sizes. All time-axis results in the experiment
/// harness use `SimTime`, never wall time.
///
/// # Examples
///
/// ```
/// use adafl_netsim::SimTime;
///
/// let t = SimTime::from_seconds(1.5) + SimTime::from_seconds(0.5);
/// assert_eq!(t.seconds(), 2.0);
/// ```
#[derive(
    serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, PartialOrd, Default,
)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics when `seconds` is negative or not finite.
    pub fn from_seconds(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "time must be finite and non-negative"
        );
        SimTime(seconds)
    }

    /// Seconds since time zero.
    pub fn seconds(&self) -> f64 {
        self.0
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics when the result would be negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        assert!(self.0 >= rhs.0, "time subtraction went negative");
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_seconds(2.0);
        let b = SimTime::from_seconds(0.5);
        assert_eq!((a + b).seconds(), 2.5);
        assert_eq!((a - b).seconds(), 1.5);
        let mut c = a;
        c += b;
        assert_eq!(c.seconds(), 2.5);
    }

    #[test]
    fn max_picks_later() {
        let a = SimTime::from_seconds(1.0);
        let b = SimTime::from_seconds(3.0);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_subtraction_panics() {
        let _ = SimTime::from_seconds(1.0) - SimTime::from_seconds(2.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_construction_panics() {
        SimTime::from_seconds(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_seconds(1.25).to_string(), "1.250s");
    }
}
