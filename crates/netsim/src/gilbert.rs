//! Gilbert-Elliott two-state burst-loss model.
//!
//! Real wireless links lose transfers in *bursts*, not independently: the
//! channel alternates between a Good state (low loss) and a Bad state (high
//! loss) with asymmetric transition probabilities. This is the classic
//! model behind the "unreliable connections" the paper's §III discusses,
//! and a finer-grained alternative to [`LinkSpec::drop_prob`]'s Bernoulli
//! losses.
//!
//! [`LinkSpec::drop_prob`]: crate::LinkSpec::drop_prob

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Channel state of the Gilbert-Elliott model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelState {
    /// Low-loss state.
    Good,
    /// High-loss (burst) state.
    Bad,
}

/// A two-state Markov loss channel.
///
/// # Examples
///
/// ```
/// use adafl_netsim::GilbertElliott;
///
/// // 1% loss in Good, 50% in Bad; bursts start rarely and last a while.
/// let mut ch = GilbertElliott::new(0.05, 0.3, 0.01, 0.5, 7);
/// let losses = (0..1000).filter(|_| ch.transfer_lost()).count();
/// assert!(losses > 0);
/// ```
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    p_good_to_bad: f64,
    p_bad_to_good: f64,
    loss_good: f64,
    loss_bad: f64,
    state: ChannelState,
    rng: StdRng,
}

impl GilbertElliott {
    /// Creates a channel starting in the Good state.
    ///
    /// `p_good_to_bad` / `p_bad_to_good` are per-transfer transition
    /// probabilities; `loss_good` / `loss_bad` are per-transfer loss
    /// probabilities within each state.
    ///
    /// # Panics
    ///
    /// Panics when any probability is outside `[0, 1]`.
    pub fn new(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
        seed: u64,
    ) -> Self {
        for (name, p) in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1]");
        }
        GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
            state: ChannelState::Good,
            rng: StdRng::seed_from_u64(seed ^ 0x61_1B),
        }
    }

    /// Current channel state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Stationary probability of being in the Bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            0.0
        } else {
            self.p_good_to_bad / denom
        }
    }

    /// Long-run expected loss rate.
    pub fn expected_loss_rate(&self) -> f64 {
        let pb = self.stationary_bad();
        (1.0 - pb) * self.loss_good + pb * self.loss_bad
    }

    /// Advances the channel one transfer and reports whether that transfer
    /// was lost.
    pub fn transfer_lost(&mut self) -> bool {
        // Transition first, then sample the loss in the new state.
        let flip: f64 = self.rng.gen();
        self.state = match self.state {
            ChannelState::Good if flip < self.p_good_to_bad => ChannelState::Bad,
            ChannelState::Bad if flip < self.p_bad_to_good => ChannelState::Good,
            s => s,
        };
        let loss_p = match self.state {
            ChannelState::Good => self.loss_good,
            ChannelState::Bad => self.loss_bad,
        };
        self.rng.gen::<f64>() < loss_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_channel_never_drops() {
        let mut ch = GilbertElliott::new(0.1, 0.1, 0.0, 0.0, 0);
        assert!((0..500).all(|_| !ch.transfer_lost()));
    }

    #[test]
    fn always_bad_channel_matches_bad_loss() {
        let mut ch = GilbertElliott::new(1.0, 0.0, 0.0, 1.0, 1);
        // First transfer transitions to Bad and stays there.
        let losses = (0..200).filter(|_| ch.transfer_lost()).count();
        assert_eq!(losses, 200);
        assert_eq!(ch.state(), ChannelState::Bad);
    }

    #[test]
    fn long_run_loss_matches_stationary_rate() {
        let mut ch = GilbertElliott::new(0.05, 0.2, 0.01, 0.6, 42);
        let expected = ch.expected_loss_rate();
        let n = 60_000;
        let losses = (0..n).filter(|_| ch.transfer_lost()).count();
        let observed = losses as f64 / n as f64;
        assert!(
            (observed - expected).abs() < 0.02,
            "observed {observed} vs stationary {expected}"
        );
    }

    #[test]
    fn losses_are_bursty() {
        // With rare transitions and extreme per-state rates, consecutive
        // outcomes should be heavily correlated — unlike Bernoulli loss.
        let mut ch = GilbertElliott::new(0.02, 0.02, 0.0, 1.0, 3);
        let outcomes: Vec<bool> = (0..20_000).map(|_| ch.transfer_lost()).collect();
        let loss_rate = outcomes.iter().filter(|&&l| l).count() as f64 / outcomes.len() as f64;
        // P(loss | previous loss) should far exceed the base rate.
        let mut joint = 0usize;
        let mut prev_losses = 0usize;
        for w in outcomes.windows(2) {
            if w[0] {
                prev_losses += 1;
                if w[1] {
                    joint += 1;
                }
            }
        }
        let conditional = joint as f64 / prev_losses.max(1) as f64;
        assert!(
            conditional > loss_rate + 0.3,
            "no burstiness: P(loss|loss) {conditional} vs base {loss_rate}"
        );
    }

    #[test]
    fn empirical_loss_matches_closed_form_over_100k_transfers() {
        // Satellite: 100k seeded transfers against the analytic rate, for
        // several parameterisations including the 20%-loss chaos channel.
        let cases = [
            (0.1, 0.4, 0.05, 0.8, 11u64),  // chaos sweep channel, rate 0.20
            (0.05, 0.2, 0.01, 0.6, 42u64), // long bursts
            (0.3, 0.3, 0.1, 0.9, 7u64),    // fast-switching
        ];
        for (gb, bg, lg, lb, seed) in cases {
            let mut ch = GilbertElliott::new(gb, bg, lg, lb, seed);
            let expected = ch.expected_loss_rate();
            let n = 100_000;
            let losses = (0..n).filter(|_| ch.transfer_lost()).count();
            let observed = losses as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "seed {seed}: observed {observed} vs closed form {expected}"
            );
        }
    }

    #[test]
    fn stationary_math() {
        let ch = GilbertElliott::new(0.1, 0.3, 0.0, 1.0, 0);
        assert!((ch.stationary_bad() - 0.25).abs() < 1e-12);
        assert!((ch.expected_loss_rate() - 0.25).abs() < 1e-12);
        let never = GilbertElliott::new(0.0, 0.0, 0.05, 0.5, 0);
        assert_eq!(never.stationary_bad(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probability_panics() {
        GilbertElliott::new(1.5, 0.1, 0.0, 1.0, 0);
    }

    #[test]
    fn degenerate_chain_p_zero_stays_good() {
        // p = 0: the chain can never leave Good; the Bad loss rate is
        // irrelevant and the closed forms must not divide by zero.
        let mut ch = GilbertElliott::new(0.0, 0.3, 0.1, 0.9, 5);
        assert!(ch.stationary_bad().is_finite());
        assert_eq!(ch.stationary_bad(), 0.0);
        assert!((ch.expected_loss_rate() - 0.1).abs() < 1e-12);
        for _ in 0..1000 {
            ch.transfer_lost();
            assert_eq!(ch.state(), ChannelState::Good);
        }
    }

    #[test]
    fn degenerate_chain_r_zero_absorbs_into_bad() {
        // r = 0: Bad is absorbing; once entered the chain never leaves,
        // and the stationary distribution is all-Bad.
        let mut ch = GilbertElliott::new(0.5, 0.0, 0.0, 1.0, 5);
        assert!((ch.stationary_bad() - 1.0).abs() < 1e-12);
        assert!((ch.expected_loss_rate() - 1.0).abs() < 1e-12);
        let mut seen_bad = false;
        for _ in 0..1000 {
            ch.transfer_lost();
            if seen_bad {
                assert_eq!(ch.state(), ChannelState::Bad, "Bad must absorb");
            }
            seen_bad |= ch.state() == ChannelState::Bad;
        }
        assert!(seen_bad, "a 50% entry chance misses 1000 times?");
    }

    #[test]
    fn degenerate_chain_p_plus_r_zero_is_frozen() {
        // p + r = 0: no transitions at all. The stationary denominator is
        // zero, which must yield 0 (all-Good) rather than NaN, and 1000
        // transitions must neither hang nor leave Good.
        let mut ch = GilbertElliott::new(0.0, 0.0, 0.25, 1.0, 5);
        assert!(!ch.stationary_bad().is_nan());
        assert_eq!(ch.stationary_bad(), 0.0);
        assert!(!ch.expected_loss_rate().is_nan());
        assert!((ch.expected_loss_rate() - 0.25).abs() < 1e-12);
        let losses = (0..1000).filter(|_| ch.transfer_lost()).count();
        assert_eq!(ch.state(), ChannelState::Good);
        // Loss still samples the Good-state rate.
        let rate = losses as f64 / 1000.0;
        assert!((rate - 0.25).abs() < 0.06, "frozen chain loss rate {rate}");
    }
}
