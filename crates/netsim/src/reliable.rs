//! Reliable transfer on top of the lossy [`ClientNetwork`] primitives.
//!
//! The raw [`uplink_transfer`] / [`downlink_transfer`] calls model a fire-
//! and-forget datagram: a loss is silent and final. Real FL deployments run
//! gradient exchange over a reliable session layer, so this module adds the
//! classic stop-and-wait machinery — per-attempt ACK timeout, bounded
//! retransmissions with exponential backoff and seeded jitter — while
//! keeping the simulation exact: every retransmitted payload byte, every
//! ACK control frame and every second spent backing off is reported in a
//! [`TransferReport`] so engines can charge their ledgers and advance their
//! clocks truthfully.
//!
//! Loss semantics: only the *data* frame is subject to link loss. ACK
//! frames are tiny control messages (heavily coded in practice) and are
//! modelled as always delivered; they still cost wire bytes and reverse-
//! link serialisation time. A lost data frame therefore surfaces to the
//! sender as an ACK timeout.
//!
//! [`ClientNetwork`]: crate::ClientNetwork
//! [`uplink_transfer`]: crate::ClientNetwork::uplink_transfer
//! [`downlink_transfer`]: crate::ClientNetwork::downlink_transfer
//!
//! # Examples
//!
//! ```
//! use adafl_netsim::{ClientNetwork, LinkProfile, LinkTrace, ReliablePolicy,
//!                    ReliableTransfer, SimTime};
//!
//! let lossy = LinkProfile::Broadband.spec().with_drop_prob(0.4);
//! let mut net = ClientNetwork::new(vec![LinkTrace::constant(lossy)], 7);
//! let mut transport = ReliableTransfer::new(ReliablePolicy::default(), 7);
//! let report = transport.uplink(&mut net, 0, 100_000, SimTime::ZERO);
//! // With 4 attempts against 40% loss this almost always gets through.
//! assert!(report.attempts >= 1);
//! assert_eq!(report.payload_bytes, 100_000 * report.attempts as u64);
//! ```

use crate::graph::TransferMedium;
use crate::SimTime;
use adafl_telemetry::{names, EventRecord, SharedRecorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Retry/backoff parameters of the reliable transport.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct ReliablePolicy {
    /// Total send attempts, including the first (≥ 1).
    pub max_attempts: usize,
    /// Seconds the sender waits for an ACK before declaring an attempt lost.
    pub attempt_timeout: f64,
    /// Backoff before the first retransmission, in seconds.
    pub base_backoff: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
    /// Upper bound on a single backoff interval, in seconds.
    pub max_backoff: f64,
    /// Jitter fraction: each backoff is stretched by `1 + jitter·u` with
    /// `u ~ U[0, 1)` from the transport's seeded RNG.
    pub jitter: f64,
    /// Size of an ACK control frame in bytes.
    pub ack_bytes: usize,
}

impl Default for ReliablePolicy {
    fn default() -> Self {
        ReliablePolicy {
            max_attempts: 4,
            attempt_timeout: 1.0,
            base_backoff: 0.25,
            backoff_multiplier: 2.0,
            max_backoff: 4.0,
            jitter: 0.1,
            ack_bytes: 16,
        }
    }
}

impl ReliablePolicy {
    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics when `max_attempts` is zero, a duration is negative or not
    /// finite, `backoff_multiplier < 1`, or `jitter` is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "max_attempts must be at least 1");
        for (name, v) in [
            ("attempt_timeout", self.attempt_timeout),
            ("base_backoff", self.base_backoff),
            ("max_backoff", self.max_backoff),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be finite and ≥ 0");
        }
        assert!(
            self.backoff_multiplier.is_finite() && self.backoff_multiplier >= 1.0,
            "backoff_multiplier must be ≥ 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.jitter),
            "jitter must be in [0, 1]"
        );
    }
}

/// Outcome and exact cost accounting of one reliable transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferReport {
    /// Payload arrival time at the receiver (the successful attempt), or
    /// `None` when every attempt was lost.
    pub arrival: Option<SimTime>,
    /// When the *sender* learned the outcome: ACK receipt on success, the
    /// final attempt's timeout on failure. Engines that serialise on the
    /// sender (e.g. a client that must free its radio before training
    /// again) should advance to this time.
    pub sender_done: SimTime,
    /// Send attempts made (1 ≤ attempts ≤ `max_attempts`).
    pub attempts: usize,
    /// Total seconds spent waiting in backoff between attempts.
    pub backoff_seconds: f64,
    /// Payload bytes put on the wire across all attempts.
    pub payload_bytes: u64,
    /// Payload bytes wasted on attempts that were lost (or on all attempts
    /// when the transfer ultimately failed).
    pub wasted_bytes: u64,
    /// ACK control bytes on the reverse link.
    pub control_bytes: u64,
}

impl TransferReport {
    /// Returns `true` when the payload reached the receiver.
    pub fn delivered(&self) -> bool {
        self.arrival.is_some()
    }
}

#[derive(Debug, Clone, Copy)]
enum Direction {
    Up,
    Down,
}

/// A stateful reliable transport: owns the backoff-jitter RNG and the
/// retry telemetry. One instance serves a whole fleet; determinism comes
/// from the seeded RNG plus the deterministic call order of the engines.
#[derive(Debug, Clone)]
pub struct ReliableTransfer {
    policy: ReliablePolicy,
    rng: StdRng,
    recorder: SharedRecorder,
}

impl ReliableTransfer {
    /// Creates a transport with the given policy.
    ///
    /// # Panics
    ///
    /// Panics when the policy is invalid (see [`ReliablePolicy::validate`]).
    pub fn new(policy: ReliablePolicy, seed: u64) -> Self {
        policy.validate();
        ReliableTransfer {
            policy,
            rng: StdRng::seed_from_u64(seed ^ 0x4E1A_B1E0),
            recorder: adafl_telemetry::noop(),
        }
    }

    /// The transport's policy.
    pub fn policy(&self) -> &ReliablePolicy {
        &self.policy
    }

    /// Attaches a telemetry recorder. Recording observes retries only — the
    /// jitter RNG is consumed identically with or without it.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
    }

    /// Reliably sends `bytes` from `client` to the server starting at
    /// `now`, over any [`TransferMedium`] (star or mesh).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds for `net`.
    pub fn uplink<N: TransferMedium>(
        &mut self,
        net: &mut N,
        client: usize,
        bytes: usize,
        now: SimTime,
    ) -> TransferReport {
        self.transfer(net, client, bytes, now, Direction::Up)
    }

    /// Reliably sends `bytes` from the server to `client` starting at
    /// `now`, over any [`TransferMedium`] (star or mesh).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds for `net`.
    pub fn downlink<N: TransferMedium>(
        &mut self,
        net: &mut N,
        client: usize,
        bytes: usize,
        now: SimTime,
    ) -> TransferReport {
        self.transfer(net, client, bytes, now, Direction::Down)
    }

    fn transfer<N: TransferMedium>(
        &mut self,
        net: &mut N,
        client: usize,
        bytes: usize,
        now: SimTime,
        direction: Direction,
    ) -> TransferReport {
        let mut t = now;
        let mut attempts = 0usize;
        let mut backoff_total = 0.0f64;
        loop {
            attempts += 1;
            let outcome = match direction {
                Direction::Up => net.uplink_transfer(client, bytes, t),
                Direction::Down => net.downlink_transfer(client, bytes, t),
            };
            if let Some(arrival) = outcome.arrival() {
                // ACK rides the reverse link: serialisation + latency for a
                // tiny control frame, modelled loss-free.
                let link = net.link_at(client, arrival);
                let ack_time = match direction {
                    Direction::Up => link.downlink_time(self.policy.ack_bytes),
                    Direction::Down => link.uplink_time(self.policy.ack_bytes),
                };
                return TransferReport {
                    arrival: Some(arrival),
                    sender_done: arrival + ack_time,
                    attempts,
                    backoff_seconds: backoff_total,
                    payload_bytes: (bytes * attempts) as u64,
                    wasted_bytes: (bytes * (attempts - 1)) as u64,
                    control_bytes: self.policy.ack_bytes as u64,
                };
            }
            // No ACK: the sender sits out the full attempt timeout.
            t += SimTime::from_seconds(self.policy.attempt_timeout);
            if attempts >= self.policy.max_attempts {
                if self.recorder.enabled() {
                    self.recorder.counter_add(names::NET_RELIABLE_FAILURES, 1);
                    self.recorder.event(
                        EventRecord::new(names::EVENT_TRANSFER_FAILED, t.seconds())
                            .client(client)
                            .field("bytes", bytes)
                            .field("attempts", attempts),
                    );
                }
                return TransferReport {
                    arrival: None,
                    sender_done: t,
                    attempts,
                    backoff_seconds: backoff_total,
                    payload_bytes: (bytes * attempts) as u64,
                    wasted_bytes: (bytes * attempts) as u64,
                    control_bytes: 0,
                };
            }
            // Exponential backoff with deterministic seeded jitter. The RNG
            // is drawn unconditionally so traced and untraced runs stay
            // bit-identical.
            let exp =
                self.policy.base_backoff * self.policy.backoff_multiplier.powi(attempts as i32 - 1);
            let jitter_u: f64 = self.rng.gen();
            let backoff = exp.min(self.policy.max_backoff) * (1.0 + self.policy.jitter * jitter_u);
            backoff_total += backoff;
            t += SimTime::from_seconds(backoff);
            if self.recorder.enabled() {
                self.recorder.counter_add(names::NET_RETRIES, 1);
                self.recorder.event(
                    EventRecord::new(names::EVENT_RETRY, t.seconds())
                        .client(client)
                        .field("bytes", bytes)
                        .field("attempt", attempts + 1),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientNetwork, GilbertElliott, LinkProfile, LinkSpec, LinkTrace};

    fn lossless_net() -> ClientNetwork {
        let spec = LinkSpec::new(1000.0, 2000.0, 0.1, 0.2, 0.0);
        ClientNetwork::new(vec![LinkTrace::constant(spec)], 0)
    }

    #[test]
    fn lossless_transfer_uses_one_attempt() {
        let mut net = lossless_net();
        let mut t = ReliableTransfer::new(ReliablePolicy::default(), 0);
        let r = t.uplink(&mut net, 0, 1000, SimTime::from_seconds(5.0));
        assert!(r.delivered());
        assert_eq!(r.attempts, 1);
        assert_eq!(r.backoff_seconds, 0.0);
        assert_eq!(r.payload_bytes, 1000);
        assert_eq!(r.wasted_bytes, 0);
        assert_eq!(r.control_bytes, 16);
        // Payload: 0.1 latency + 1 s serialisation; ACK back: 0.2 + 16/2000.
        let arrival = r.arrival.unwrap().seconds();
        assert!((arrival - 6.1).abs() < 1e-9);
        assert!((r.sender_done.seconds() - (6.1 + 0.2 + 0.008)).abs() < 1e-9);
    }

    #[test]
    fn fully_lossy_transfer_exhausts_attempts() {
        let spec = LinkProfile::Broadband.spec().with_drop_prob(1.0);
        let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec)], 0);
        let policy = ReliablePolicy {
            max_attempts: 3,
            jitter: 0.0,
            ..ReliablePolicy::default()
        };
        let mut t = ReliableTransfer::new(policy, 0);
        let r = t.downlink(&mut net, 0, 500, SimTime::ZERO);
        assert!(!r.delivered());
        assert_eq!(r.attempts, 3);
        assert_eq!(r.payload_bytes, 1500);
        assert_eq!(r.wasted_bytes, 1500);
        assert_eq!(r.control_bytes, 0);
        // 3 timeouts of 1 s + backoffs 0.25 and 0.5 (no jitter).
        assert!((r.sender_done.seconds() - 3.75).abs() < 1e-9);
        assert!((r.backoff_seconds - 0.75).abs() < 1e-9);
    }

    #[test]
    fn retries_recover_from_burst_loss() {
        // A channel stuck Bad for a while then recovering: the unreliable
        // path loses transfers the reliable path saves.
        let spec = LinkProfile::Broadband.spec().with_drop_prob(0.5);
        let policy = ReliablePolicy {
            max_attempts: 6,
            ..ReliablePolicy::default()
        };
        let mut plain_delivered = 0;
        let mut reliable_delivered = 0;
        for seed in 0..40 {
            let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec)], seed);
            if net
                .uplink_transfer(0, 100, SimTime::ZERO)
                .arrival()
                .is_some()
            {
                plain_delivered += 1;
            }
            let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec)], seed);
            let mut t = ReliableTransfer::new(policy, seed);
            if t.uplink(&mut net, 0, 100, SimTime::ZERO).delivered() {
                reliable_delivered += 1;
            }
        }
        assert!(
            reliable_delivered > plain_delivered,
            "retries did not help: {reliable_delivered} vs {plain_delivered}"
        );
    }

    #[test]
    fn transfers_are_deterministic_per_seed() {
        let spec = LinkProfile::Lossy.spec();
        let run = |seed: u64| {
            let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec)], seed);
            let mut t = ReliableTransfer::new(ReliablePolicy::default(), seed);
            (0..30)
                .map(|i| t.uplink(&mut net, 0, 100, SimTime::from_seconds(i as f64 * 10.0)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn recorder_counts_retries_and_failures() {
        use adafl_telemetry::InMemoryRecorder;

        let spec = LinkProfile::Broadband.spec().with_drop_prob(1.0);
        let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec)], 0);
        let policy = ReliablePolicy {
            max_attempts: 3,
            ..ReliablePolicy::default()
        };
        let mut t = ReliableTransfer::new(policy, 0);
        let rec = InMemoryRecorder::shared();
        t.set_recorder(rec.clone());
        t.uplink(&mut net, 0, 10, SimTime::ZERO);
        let trace = rec.snapshot();
        assert_eq!(trace.counters[names::NET_RETRIES], 2);
        assert_eq!(trace.counters[names::NET_RELIABLE_FAILURES], 1);
        assert_eq!(trace.events_of(names::EVENT_TRANSFER_FAILED).count(), 1);
    }

    #[test]
    fn recording_never_perturbs_outcomes() {
        use adafl_telemetry::InMemoryRecorder;

        let spec = LinkProfile::Lossy.spec();
        let run = |record: bool| {
            let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec)], 11);
            let mut t = ReliableTransfer::new(ReliablePolicy::default(), 11);
            if record {
                t.set_recorder(InMemoryRecorder::shared());
            }
            (0..40)
                .map(|i| t.uplink(&mut net, 0, 50, SimTime::from_seconds(i as f64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn burst_channel_drives_reliable_losses() {
        // Always-Bad channel with certain loss: reliable transport fails
        // even with many attempts.
        let mut net = lossless_net();
        net.set_burst_loss(0, GilbertElliott::new(1.0, 0.0, 0.0, 1.0, 0));
        let mut t = ReliableTransfer::new(ReliablePolicy::default(), 0);
        let r = t.uplink(&mut net, 0, 10, SimTime::ZERO);
        assert!(!r.delivered());
        assert_eq!(r.attempts, 4);
    }

    #[test]
    #[should_panic(expected = "max_attempts")]
    fn zero_attempts_panics() {
        ReliableTransfer::new(
            ReliablePolicy {
                max_attempts: 0,
                ..ReliablePolicy::default()
            },
            0,
        );
    }
}
