//! Deterministic discrete-event scheduler.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties broken by insertion order so the
        // simulation is fully deterministic.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap event queue ordered by simulated time with FIFO tie-breaking.
///
/// Drives the asynchronous FL engine: client-finished-training and
/// update-arrived-at-server events are scheduled here and popped in
/// deterministic time order.
///
/// # Examples
///
/// ```
/// use adafl_netsim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_seconds(2.0), "late");
/// q.push(SimTime::from_seconds(1.0), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "early");
/// assert_eq!(t.seconds(), 1.0);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pops the earliest event, or `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_seconds(3.0), 'c');
        q.push(SimTime::from_seconds(1.0), 'a');
        q.push(SimTime::from_seconds(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_seconds(1.0);
        q.push(t, 1);
        q.push(t, 2);
        q.push(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_seconds(5.0), ());
        assert_eq!(q.peek_time().unwrap().seconds(), 5.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_seconds(10.0), 10);
        q.push(SimTime::from_seconds(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_seconds(5.0), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
        assert!(q.pop().is_none());
    }
}
