//! CSV import/export for per-client link traces.
//!
//! ns3-fl experiments are usually driven by trace files; this module gives
//! the same workflow to the simulator: a fleet's nominal links and trace
//! kinds serialise to a small CSV schema that can be checked into an
//! experiment repository and re-loaded bit-identically.
//!
//! Schema (one row per client):
//!
//! ```csv
//! client,up_bw,down_bw,up_lat,down_lat,drop_prob,kind,p1,p2,p3,p4
//! 0,2000000,10000000,0.01,0.01,0.0,constant,,,,
//! 1,50000,200000,0.05,0.05,0.01,periodic,60,0.25,0.1,
//! 2,100000,500000,0.1,0.1,0.05,randomwalk,5,0.3,1.0,7
//! ```

use crate::{LinkSpec, LinkTrace, TraceKind};
use std::error::Error;
use std::fmt;

/// Error from [`parse_traces`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace file line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

/// Renders a fleet's traces to the CSV schema.
pub fn render_traces(traces: &[LinkTrace]) -> String {
    let mut out = String::from("client,up_bw,down_bw,up_lat,down_lat,drop_prob,kind,p1,p2,p3,p4\n");
    for (i, trace) in traces.iter().enumerate() {
        let l = trace.nominal();
        let (kind, p1, p2, p3, p4) = match trace.kind() {
            TraceKind::Constant => (
                "constant",
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
            TraceKind::Periodic {
                period,
                duty,
                degraded_scale,
            } => (
                "periodic",
                period.to_string(),
                duty.to_string(),
                degraded_scale.to_string(),
                String::new(),
            ),
            TraceKind::RandomWalk {
                step,
                min_scale,
                max_scale,
                seed,
            } => (
                "randomwalk",
                step.to_string(),
                min_scale.to_string(),
                max_scale.to_string(),
                seed.to_string(),
            ),
        };
        out.push_str(&format!(
            "{i},{},{},{},{},{},{kind},{p1},{p2},{p3},{p4}\n",
            l.uplink_bandwidth(),
            l.downlink_bandwidth(),
            l.uplink_latency(),
            l.downlink_latency(),
            l.drop_prob(),
        ));
    }
    out
}

fn field<T: std::str::FromStr>(
    cols: &[&str],
    idx: usize,
    name: &str,
    line: usize,
) -> Result<T, ParseTraceError> {
    cols.get(idx)
        .ok_or_else(|| ParseTraceError::new(line, format!("missing column {name}")))?
        .trim()
        .parse()
        .map_err(|_| ParseTraceError::new(line, format!("invalid {name}: {:?}", cols[idx])))
}

/// Parses the CSV schema produced by [`render_traces`].
///
/// Rows must be ordered by client id starting at 0. Blank lines are
/// skipped; a header row is required.
///
/// # Errors
///
/// Returns [`ParseTraceError`] describing the offending line for malformed
/// input.
pub fn parse_traces(csv: &str) -> Result<Vec<LinkTrace>, ParseTraceError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseTraceError::new(0, "empty trace file"))?;
    if !header.starts_with("client,") {
        return Err(ParseTraceError::new(1, "missing header row"));
    }
    let mut traces = Vec::new();
    for (i, raw) in lines {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        let client: usize = field(&cols, 0, "client", line_no)?;
        if client != traces.len() {
            return Err(ParseTraceError::new(
                line_no,
                format!(
                    "client ids must be dense: expected {}, got {client}",
                    traces.len()
                ),
            ));
        }
        let up_bw: f64 = field(&cols, 1, "up_bw", line_no)?;
        let down_bw: f64 = field(&cols, 2, "down_bw", line_no)?;
        let up_lat: f64 = field(&cols, 3, "up_lat", line_no)?;
        let down_lat: f64 = field(&cols, 4, "down_lat", line_no)?;
        let drop: f64 = field(&cols, 5, "drop_prob", line_no)?;
        if up_bw <= 0.0 || down_bw <= 0.0 || !(0.0..=1.0).contains(&drop) {
            return Err(ParseTraceError::new(
                line_no,
                "link parameters out of range",
            ));
        }
        let spec = LinkSpec::new(up_bw, down_bw, up_lat, down_lat, drop);
        let kind_str = cols
            .get(6)
            .map(|s| s.trim())
            .ok_or_else(|| ParseTraceError::new(line_no, "missing kind column"))?;
        let kind = match kind_str {
            "constant" => TraceKind::Constant,
            "periodic" => TraceKind::Periodic {
                period: field(&cols, 7, "period", line_no)?,
                duty: field(&cols, 8, "duty", line_no)?,
                degraded_scale: field(&cols, 9, "degraded_scale", line_no)?,
            },
            "randomwalk" => TraceKind::RandomWalk {
                step: field(&cols, 7, "step", line_no)?,
                min_scale: field(&cols, 8, "min_scale", line_no)?,
                max_scale: field(&cols, 9, "max_scale", line_no)?,
                seed: field(&cols, 10, "seed", line_no)?,
            },
            other => {
                return Err(ParseTraceError::new(
                    line_no,
                    format!("unknown kind {other:?}"),
                ))
            }
        };
        traces.push(LinkTrace::new(spec, kind));
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkProfile;

    fn fleet() -> Vec<LinkTrace> {
        vec![
            LinkTrace::constant(LinkProfile::Broadband.spec()),
            LinkTrace::new(
                LinkProfile::Constrained.spec(),
                TraceKind::Periodic {
                    period: 60.0,
                    duty: 0.25,
                    degraded_scale: 0.1,
                },
            ),
            LinkTrace::new(
                LinkProfile::Cellular.spec(),
                TraceKind::RandomWalk {
                    step: 5.0,
                    min_scale: 0.3,
                    max_scale: 1.0,
                    seed: 7,
                },
            ),
        ]
    }

    #[test]
    fn round_trip_preserves_traces() {
        let original = fleet();
        let csv = render_traces(&original);
        let parsed = parse_traces(&csv).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn rejects_missing_header() {
        let err = parse_traces("0,1,1,0,0,0,constant,,,,\n").unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_sparse_client_ids() {
        let csv = "client,up_bw,down_bw,up_lat,down_lat,drop_prob,kind,p1,p2,p3,p4\n\
                   1,1000,1000,0,0,0,constant,,,,\n";
        let err = parse_traces(csv).unwrap_err();
        assert!(err.to_string().contains("dense"));
    }

    #[test]
    fn rejects_bad_numbers_and_kinds() {
        let base = "client,up_bw,down_bw,up_lat,down_lat,drop_prob,kind,p1,p2,p3,p4\n";
        assert!(parse_traces(&format!("{base}0,abc,1000,0,0,0,constant,,,,\n")).is_err());
        assert!(parse_traces(&format!("{base}0,1000,1000,0,0,2.0,constant,,,,\n")).is_err());
        assert!(parse_traces(&format!("{base}0,1000,1000,0,0,0,quantum,,,,\n")).is_err());
        assert!(parse_traces(&format!("{base}0,1000,1000,0,0,0,periodic,60,,,\n")).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let csv = format!("{}\n\n", render_traces(&fleet()));
        assert_eq!(parse_traces(&csv).unwrap().len(), 3);
    }

    #[test]
    fn error_reports_line_number() {
        let csv = "client,up_bw,down_bw,up_lat,down_lat,drop_prob,kind,p1,p2,p3,p4\n\
                   0,1000,1000,0,0,0,constant,,,,\n\
                   1,zzz,1000,0,0,0,constant,,,,\n";
        let err = parse_traces(csv).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }
}
