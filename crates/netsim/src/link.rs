//! Link specifications and device-class presets.

use crate::SimTime;

/// Instantaneous network conditions of one client's connection.
///
/// Bandwidths are in bytes/second; latencies are one-way propagation delays
/// in seconds; `drop_prob` is the probability that a whole transfer is lost
/// (the coarse-grained failure model the FL experiments need — a lost
/// gradient update, not a lost packet).
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    uplink_bw: f64,
    downlink_bw: f64,
    uplink_latency: f64,
    downlink_latency: f64,
    drop_prob: f64,
}

impl LinkSpec {
    /// Creates a link spec.
    ///
    /// # Panics
    ///
    /// Panics when a bandwidth is not positive, a latency is negative, or
    /// `drop_prob` is outside `[0, 1]`.
    pub fn new(
        uplink_bw: f64,
        downlink_bw: f64,
        uplink_latency: f64,
        downlink_latency: f64,
        drop_prob: f64,
    ) -> Self {
        assert!(
            uplink_bw > 0.0 && downlink_bw > 0.0,
            "bandwidth must be positive"
        );
        assert!(
            uplink_latency >= 0.0 && downlink_latency >= 0.0,
            "latency must be non-negative"
        );
        LinkSpec {
            uplink_bw,
            downlink_bw,
            uplink_latency,
            downlink_latency,
            drop_prob: checked_drop_prob(drop_prob),
        }
    }

    /// Uplink bandwidth in bytes/second.
    pub fn uplink_bandwidth(&self) -> f64 {
        self.uplink_bw
    }

    /// Downlink bandwidth in bytes/second.
    pub fn downlink_bandwidth(&self) -> f64 {
        self.downlink_bw
    }

    /// One-way uplink latency in seconds.
    pub fn uplink_latency(&self) -> f64 {
        self.uplink_latency
    }

    /// One-way downlink latency in seconds.
    pub fn downlink_latency(&self) -> f64 {
        self.downlink_latency
    }

    /// Probability that a transfer over this link is lost entirely.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Time to push `bytes` up to the server: latency + serialisation.
    pub fn uplink_time(&self, bytes: usize) -> SimTime {
        SimTime::from_seconds(self.uplink_latency + bytes as f64 / self.uplink_bw)
    }

    /// Time to receive `bytes` from the server.
    pub fn downlink_time(&self, bytes: usize) -> SimTime {
        SimTime::from_seconds(self.downlink_latency + bytes as f64 / self.downlink_bw)
    }

    /// Returns a copy with bandwidths scaled by `factor` (used by traces to
    /// model congestion).
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not positive.
    pub fn with_bandwidth_scaled(&self, factor: f64) -> LinkSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        LinkSpec {
            uplink_bw: self.uplink_bw * factor,
            downlink_bw: self.downlink_bw * factor,
            ..*self
        }
    }

    /// Returns a copy with the given drop probability.
    ///
    /// # Panics
    ///
    /// Panics when `drop_prob` is outside `[0, 1]`.
    pub fn with_drop_prob(&self, drop_prob: f64) -> LinkSpec {
        LinkSpec {
            drop_prob: checked_drop_prob(drop_prob),
            ..*self
        }
    }
}

/// The one place a drop probability is range-checked, so every
/// constructor panics with the same message.
///
/// # Panics
///
/// Panics when `drop_prob` is outside `[0, 1]`.
fn checked_drop_prob(drop_prob: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&drop_prob),
        "drop probability must be in [0, 1]"
    );
    drop_prob
}

/// Device-class presets for embedded federated deployments.
///
/// Bandwidth/latency values follow the rough orders of magnitude of the
/// deployments the paper motivates (home broadband, constrained IoT uplinks,
/// congested cellular).
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LinkProfile {
    /// Residential broadband: 2 MB/s up, 10 MB/s down, 10 ms latency.
    Broadband,
    /// Constrained embedded uplink: 50 KB/s up, 200 KB/s down, 50 ms latency.
    Constrained,
    /// Congested cellular: 100 KB/s up, 500 KB/s down, 100 ms latency, 5% loss.
    Cellular,
    /// Lossy long-range link: 20 KB/s up, 50 KB/s down, 200 ms latency, 15% loss.
    Lossy,
}

impl LinkProfile {
    /// Materialises the preset as a [`LinkSpec`].
    pub fn spec(&self) -> LinkSpec {
        match self {
            LinkProfile::Broadband => LinkSpec::new(2e6, 10e6, 0.01, 0.01, 0.0),
            LinkProfile::Constrained => LinkSpec::new(50e3, 200e3, 0.05, 0.05, 0.01),
            LinkProfile::Cellular => LinkSpec::new(100e3, 500e3, 0.1, 0.1, 0.05),
            LinkProfile::Lossy => LinkSpec::new(20e3, 50e3, 0.2, 0.2, 0.15),
        }
    }

    /// The profile's canonical lowercase name, round-tripping through
    /// [`FromStr`](std::str::FromStr) — the spelling JSON experiment
    /// configs use.
    pub fn as_str(&self) -> &'static str {
        match self {
            LinkProfile::Broadband => "broadband",
            LinkProfile::Constrained => "constrained",
            LinkProfile::Cellular => "cellular",
            LinkProfile::Lossy => "lossy",
        }
    }
}

impl std::str::FromStr for LinkProfile {
    type Err = String;

    /// Parses a canonical profile name (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "broadband" => Ok(LinkProfile::Broadband),
            "constrained" => Ok(LinkProfile::Constrained),
            "cellular" => Ok(LinkProfile::Cellular),
            "lossy" => Ok(LinkProfile::Lossy),
            other => Err(format!(
                "unknown link profile {other:?}; expected one of \
                 broadband, constrained, cellular, lossy"
            )),
        }
    }
}

impl std::fmt::Display for LinkProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_serialisation() {
        let link = LinkSpec::new(1000.0, 2000.0, 0.5, 0.25, 0.0);
        assert!((link.uplink_time(1000).seconds() - 1.5).abs() < 1e-12);
        assert!((link.downlink_time(1000).seconds() - 0.75).abs() < 1e-12);
        assert!((link.uplink_time(0).seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slower_uplink_takes_longer() {
        let fast = LinkProfile::Broadband.spec();
        let slow = LinkProfile::Constrained.spec();
        let payload = 1_640_000; // the paper's 1.64 MB dense gradient
        assert!(slow.uplink_time(payload) > fast.uplink_time(payload));
    }

    #[test]
    fn bandwidth_scaling() {
        let link = LinkSpec::new(1000.0, 1000.0, 0.0, 0.0, 0.0);
        let congested = link.with_bandwidth_scaled(0.5);
        assert_eq!(congested.uplink_bandwidth(), 500.0);
        assert!((congested.uplink_time(1000).seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn drop_prob_override() {
        let link = LinkProfile::Broadband.spec().with_drop_prob(0.5);
        assert_eq!(link.drop_prob(), 0.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        LinkSpec::new(0.0, 1.0, 0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_drop_prob_panics() {
        LinkSpec::new(1.0, 1.0, 0.0, 0.0, 1.5);
    }

    #[test]
    fn profile_names_round_trip() {
        for profile in [
            LinkProfile::Broadband,
            LinkProfile::Constrained,
            LinkProfile::Cellular,
            LinkProfile::Lossy,
        ] {
            let name = profile.as_str();
            assert_eq!(name.parse::<LinkProfile>(), Ok(profile));
            assert_eq!(profile.to_string(), name);
        }
        // Case-insensitive on the way in, canonical on the way out.
        assert_eq!("Cellular".parse::<LinkProfile>(), Ok(LinkProfile::Cellular));
        assert!("dial-up".parse::<LinkProfile>().is_err());
    }

    #[test]
    #[should_panic(expected = "drop probability must be in [0, 1]")]
    fn with_drop_prob_shares_the_constructor_check() {
        let _ = LinkProfile::Broadband.spec().with_drop_prob(-0.1);
    }

    #[test]
    fn profiles_are_ordered_by_quality() {
        let payload = 100_000;
        let t = |p: LinkProfile| p.spec().uplink_time(payload).seconds();
        assert!(t(LinkProfile::Broadband) < t(LinkProfile::Cellular));
        assert!(t(LinkProfile::Cellular) < t(LinkProfile::Constrained));
        assert!(t(LinkProfile::Constrained) < t(LinkProfile::Lossy));
    }
}
