//! Time-varying link conditions.
//!
//! The paper's core critique of prior work is that static compression and
//! selection strategies assume static networks; [`LinkTrace`] models the
//! dynamic conditions AdaFL adapts to.

use crate::{LinkSpec, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a client's link evolves over simulated time.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TraceKind {
    /// Conditions never change.
    Constant,
    /// Bandwidth periodically degrades: every `period` seconds the link
    /// spends `duty × period` seconds at `degraded_scale` of its nominal
    /// bandwidth (models recurring congestion).
    Periodic {
        /// Cycle length in seconds.
        period: f64,
        /// Fraction of the cycle spent degraded, in `(0, 1)`.
        duty: f64,
        /// Bandwidth multiplier while degraded, in `(0, 1]`.
        degraded_scale: f64,
    },
    /// Seeded multiplicative random walk over bandwidth in
    /// `[min_scale, max_scale]`, re-sampled every `step` seconds.
    RandomWalk {
        /// Re-sampling interval in seconds.
        step: f64,
        /// Lower bandwidth multiplier bound.
        min_scale: f64,
        /// Upper bandwidth multiplier bound.
        max_scale: f64,
        /// Walk seed.
        seed: u64,
    },
}

/// A client's nominal link plus its evolution over time.
///
/// # Examples
///
/// ```
/// use adafl_netsim::{LinkProfile, LinkTrace, SimTime, TraceKind};
///
/// let trace = LinkTrace::new(LinkProfile::Broadband.spec(), TraceKind::Constant);
/// let now = SimTime::from_seconds(100.0);
/// assert_eq!(trace.link_at(now), trace.nominal());
/// ```
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct LinkTrace {
    nominal: LinkSpec,
    kind: TraceKind,
}

impl LinkTrace {
    /// Creates a trace around a nominal link spec.
    ///
    /// # Panics
    ///
    /// Panics when the trace kind's parameters are out of range (see
    /// [`TraceKind`] field docs).
    pub fn new(nominal: LinkSpec, kind: TraceKind) -> Self {
        match kind {
            TraceKind::Constant => {}
            TraceKind::Periodic {
                period,
                duty,
                degraded_scale,
            } => {
                assert!(period > 0.0, "period must be positive");
                assert!(
                    (0.0..1.0).contains(&duty) && duty > 0.0,
                    "duty must be in (0, 1)"
                );
                assert!(
                    degraded_scale > 0.0 && degraded_scale <= 1.0,
                    "degraded_scale must be in (0, 1]"
                );
            }
            TraceKind::RandomWalk {
                step,
                min_scale,
                max_scale,
                ..
            } => {
                assert!(step > 0.0, "step must be positive");
                assert!(
                    0.0 < min_scale && min_scale <= max_scale,
                    "scales must satisfy 0 < min ≤ max"
                );
            }
        }
        LinkTrace { nominal, kind }
    }

    /// Convenience constructor for a constant link.
    pub fn constant(nominal: LinkSpec) -> Self {
        LinkTrace::new(nominal, TraceKind::Constant)
    }

    /// The nominal (undegraded) link spec.
    pub fn nominal(&self) -> LinkSpec {
        self.nominal
    }

    /// The trace kind.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// Link conditions at simulated time `now`.
    ///
    /// Random-walk traces derive their sample from the seed and the step
    /// index, so the same `(trace, time)` pair always yields the same link —
    /// the simulation stays deterministic regardless of query order.
    pub fn link_at(&self, now: SimTime) -> LinkSpec {
        match self.kind {
            TraceKind::Constant => self.nominal,
            TraceKind::Periodic {
                period,
                duty,
                degraded_scale,
            } => {
                let phase = (now.seconds() / period).fract();
                if phase < duty {
                    self.nominal.with_bandwidth_scaled(degraded_scale)
                } else {
                    self.nominal
                }
            }
            TraceKind::RandomWalk {
                step,
                min_scale,
                max_scale,
                seed,
            } => {
                let index = (now.seconds() / step) as u64;
                let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9));
                let scale = rng.gen_range(min_scale..=max_scale);
                self.nominal.with_bandwidth_scaled(scale)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkProfile;

    #[test]
    fn constant_trace_never_changes() {
        let trace = LinkTrace::constant(LinkProfile::Broadband.spec());
        for t in [0.0, 1.0, 1e6] {
            assert_eq!(trace.link_at(SimTime::from_seconds(t)), trace.nominal());
        }
    }

    #[test]
    fn periodic_trace_degrades_during_duty_window() {
        let trace = LinkTrace::new(
            LinkSpec::new(1000.0, 1000.0, 0.0, 0.0, 0.0),
            TraceKind::Periodic {
                period: 10.0,
                duty: 0.3,
                degraded_scale: 0.1,
            },
        );
        // Inside the duty window.
        let degraded = trace.link_at(SimTime::from_seconds(1.0));
        assert_eq!(degraded.uplink_bandwidth(), 100.0);
        // Outside it.
        let normal = trace.link_at(SimTime::from_seconds(5.0));
        assert_eq!(normal.uplink_bandwidth(), 1000.0);
        // Next cycle degrades again.
        let next = trace.link_at(SimTime::from_seconds(11.0));
        assert_eq!(next.uplink_bandwidth(), 100.0);
    }

    #[test]
    fn random_walk_is_deterministic_and_bounded() {
        let trace = LinkTrace::new(
            LinkSpec::new(1000.0, 1000.0, 0.0, 0.0, 0.0),
            TraceKind::RandomWalk {
                step: 1.0,
                min_scale: 0.2,
                max_scale: 0.8,
                seed: 7,
            },
        );
        for i in 0..50 {
            let t = SimTime::from_seconds(i as f64 * 0.5);
            let a = trace.link_at(t);
            let b = trace.link_at(t);
            assert_eq!(a, b, "same query must give same link");
            let bw = a.uplink_bandwidth();
            assert!((200.0..=800.0).contains(&bw), "bandwidth {bw} out of range");
        }
    }

    #[test]
    fn random_walk_actually_varies() {
        let trace = LinkTrace::new(
            LinkSpec::new(1000.0, 1000.0, 0.0, 0.0, 0.0),
            TraceKind::RandomWalk {
                step: 1.0,
                min_scale: 0.1,
                max_scale: 1.0,
                seed: 3,
            },
        );
        let a = trace.link_at(SimTime::from_seconds(0.5));
        let b = trace.link_at(SimTime::from_seconds(1.5));
        let c = trace.link_at(SimTime::from_seconds(2.5));
        assert!(a != b || b != c, "walk never moved");
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn invalid_duty_panics() {
        LinkTrace::new(
            LinkProfile::Broadband.spec(),
            TraceKind::Periodic {
                period: 1.0,
                duty: 1.5,
                degraded_scale: 0.5,
            },
        );
    }
}
