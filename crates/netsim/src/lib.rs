//! Discrete-event network simulator for federated learning — the offline
//! stand-in for the ns3-fl simulation the paper uses (see DESIGN.md).
//!
//! The FL engines in `adafl-fl` consume three abstractions from this crate:
//!
//! * [`LinkSpec`] — a client's instantaneous uplink/downlink bandwidth,
//!   latency and loss probability, with [`LinkSpec::uplink_time`] /
//!   [`LinkSpec::downlink_time`] computing transfer delays for a payload.
//! * [`LinkTrace`] — time-varying link conditions (constant, periodic
//!   degradation, seeded random walk), because the paper's core argument is
//!   that *static* strategies fail under *dynamic* networks.
//! * [`EventQueue`] — a deterministic discrete-event scheduler driving the
//!   asynchronous FL engine and all simulated-time measurements.
//!
//! On top of these, the [`graph`] module models multi-hop meshes: a
//! [`Topology`] of clients, relays and the server with failure/recovery
//! schedules and energy budgets, routed by a pluggable [`RoutePlanner`]
//! and exposed to the engines through [`MeshNetwork`] / [`FleetNetwork`],
//! which share the star network's transfer surface.
//!
//! # Examples
//!
//! ```
//! use adafl_netsim::{LinkSpec, SimTime};
//!
//! let link = LinkSpec::new(1_000_000.0, 2_000_000.0, 0.02, 0.01, 0.0);
//! let t = link.uplink_time(500_000);
//! assert!((t.seconds() - 0.52).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod gilbert;
pub mod graph;
mod link;
mod network;
mod reliable;
mod time;
mod trace;
pub mod tracefile;

pub use event::EventQueue;
pub use gilbert::{ChannelState, GilbertElliott};
pub use graph::{
    CostAwareDijkstra, EnergyBudget, FleetNetwork, MeshLayout, MeshNetwork, NodeRole, RoutePlanner,
    StaticShortestPath, Topology, TransferDirection, TransferMedium,
};
pub use link::{LinkProfile, LinkSpec};
pub use network::{ClientNetwork, TransferOutcome};
pub use reliable::{ReliablePolicy, ReliableTransfer, TransferReport};
pub use time::SimTime;
pub use trace::{LinkTrace, TraceKind};
