//! Per-client network state and transfer simulation.

use crate::{GilbertElliott, LinkSpec, LinkTrace, SimTime};
use adafl_telemetry::{names, EventRecord, SharedRecorder, SpanRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferOutcome {
    /// The payload arrived at the given simulated time.
    Delivered {
        /// Arrival time at the receiver.
        arrival: SimTime,
    },
    /// The payload was lost; the sender learns nothing until a timeout.
    Dropped,
}

impl TransferOutcome {
    /// Arrival time if delivered.
    pub fn arrival(&self) -> Option<SimTime> {
        match self {
            TransferOutcome::Delivered { arrival } => Some(*arrival),
            TransferOutcome::Dropped => None,
        }
    }

    /// Returns `true` when the transfer was delivered.
    pub fn is_delivered(&self) -> bool {
        matches!(self, TransferOutcome::Delivered { .. })
    }
}

/// The network state of a federated client fleet: one [`LinkTrace`] per
/// client plus a seeded RNG for loss events.
///
/// # Examples
///
/// ```
/// use adafl_netsim::{ClientNetwork, LinkProfile, LinkTrace, SimTime};
///
/// let traces = vec![LinkTrace::constant(LinkProfile::Broadband.spec()); 3];
/// let mut net = ClientNetwork::new(traces, 42);
/// let outcome = net.uplink_transfer(0, 1_000_000, SimTime::ZERO);
/// assert!(outcome.is_delivered());
/// ```
#[derive(Debug, Clone)]
pub struct ClientNetwork {
    traces: Vec<LinkTrace>,
    /// Optional per-client Gilbert-Elliott burst-loss channel; when present
    /// it replaces the Bernoulli `drop_prob` decision for that client.
    burst: Vec<Option<GilbertElliott>>,
    rng: StdRng,
    recorder: SharedRecorder,
}

impl ClientNetwork {
    /// Creates a network over the given per-client traces.
    ///
    /// # Panics
    ///
    /// Panics when `traces` is empty.
    pub fn new(traces: Vec<LinkTrace>, seed: u64) -> Self {
        assert!(!traces.is_empty(), "network needs at least one client");
        ClientNetwork {
            burst: vec![None; traces.len()],
            traces,
            rng: StdRng::seed_from_u64(seed ^ 0x006E_7511),
            recorder: adafl_telemetry::noop(),
        }
    }

    /// Attaches a Gilbert-Elliott burst-loss channel to `client`. While
    /// attached, the channel's Markov state decides every loss for that
    /// client (both directions) instead of the link's Bernoulli
    /// `drop_prob`; the shared loss RNG is left untouched, so other
    /// clients' loss sequences are unaffected.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn set_burst_loss(&mut self, client: usize, channel: GilbertElliott) {
        self.burst[client] = Some(channel);
    }

    /// Loss decision for one transfer of `client` over `link`.
    fn transfer_lost(&mut self, client: usize, link: &LinkSpec) -> bool {
        match &mut self.burst[client] {
            Some(channel) => channel.transfer_lost(),
            None => self.rng.gen::<f64>() < link.drop_prob(),
        }
    }

    /// Attaches a telemetry recorder. Recording observes transfers only —
    /// it never touches the loss RNG, so traced and untraced runs take
    /// identical decisions.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Returns `true` when the network has no clients (never true
    /// post-construction).
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Link conditions of `client` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn link_at(&self, client: usize, now: SimTime) -> LinkSpec {
        self.traces[client].link_at(now)
    }

    /// Replaces a client's trace (used by fault-injection schedules).
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn set_trace(&mut self, client: usize, trace: LinkTrace) {
        self.traces[client] = trace;
    }

    /// Simulates sending `bytes` from `client` to the server starting at
    /// `now`.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn uplink_transfer(
        &mut self,
        client: usize,
        bytes: usize,
        now: SimTime,
    ) -> TransferOutcome {
        let link = self.traces[client].link_at(now);
        if self.transfer_lost(client, &link) {
            self.record_drop(client, bytes, now, "uplink");
            return TransferOutcome::Dropped;
        }
        let arrival = now + link.uplink_time(bytes);
        self.record_transfer(
            names::SPAN_UPLINK,
            names::NET_UPLINK_SECONDS,
            client,
            bytes,
            now,
            arrival,
        );
        TransferOutcome::Delivered { arrival }
    }

    /// Simulates sending `bytes` from the server to `client` starting at
    /// `now`.
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of bounds.
    pub fn downlink_transfer(
        &mut self,
        client: usize,
        bytes: usize,
        now: SimTime,
    ) -> TransferOutcome {
        let link = self.traces[client].link_at(now);
        if self.transfer_lost(client, &link) {
            self.record_drop(client, bytes, now, "downlink");
            return TransferOutcome::Dropped;
        }
        let arrival = now + link.downlink_time(bytes);
        self.record_transfer(
            names::SPAN_DOWNLINK,
            names::NET_DOWNLINK_SECONDS,
            client,
            bytes,
            now,
            arrival,
        );
        TransferOutcome::Delivered { arrival }
    }

    fn record_drop(&self, client: usize, bytes: usize, now: SimTime, direction: &str) {
        if !self.recorder.enabled() {
            return;
        }
        self.recorder.counter_add(names::NET_DROPS, 1);
        self.recorder.event(
            EventRecord::new(names::EVENT_TRANSFER_DROP, now.seconds())
                .client(client)
                .field("bytes", bytes)
                .field("direction", direction),
        );
    }

    fn record_transfer(
        &self,
        span_kind: &str,
        histogram: &str,
        client: usize,
        bytes: usize,
        start: SimTime,
        arrival: SimTime,
    ) {
        if !self.recorder.enabled() {
            return;
        }
        let (start, end) = (start.seconds(), arrival.seconds());
        self.recorder.histogram_record(histogram, end - start);
        self.recorder.span(
            SpanRecord::new(span_kind, start, end)
                .client(client)
                .field("bytes", bytes),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkProfile;

    fn perfect_network(n: usize) -> ClientNetwork {
        let spec = LinkSpec::new(1000.0, 2000.0, 0.1, 0.2, 0.0);
        ClientNetwork::new(vec![LinkTrace::constant(spec); n], 0)
    }

    #[test]
    fn lossless_link_always_delivers() {
        let mut net = perfect_network(2);
        for _ in 0..100 {
            assert!(net.uplink_transfer(0, 100, SimTime::ZERO).is_delivered());
        }
    }

    #[test]
    fn delivery_time_matches_link_math() {
        let mut net = perfect_network(1);
        let out = net.uplink_transfer(0, 1000, SimTime::from_seconds(5.0));
        assert!((out.arrival().unwrap().seconds() - 6.1).abs() < 1e-9);
        let down = net.downlink_transfer(0, 2000, SimTime::ZERO);
        assert!((down.arrival().unwrap().seconds() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn fully_lossy_link_always_drops() {
        let spec = LinkProfile::Broadband.spec().with_drop_prob(1.0);
        let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec)], 0);
        for _ in 0..20 {
            let out = net.uplink_transfer(0, 10, SimTime::ZERO);
            assert_eq!(out, TransferOutcome::Dropped);
            assert!(out.arrival().is_none());
        }
    }

    #[test]
    fn loss_rate_approximates_drop_prob() {
        let spec = LinkProfile::Broadband.spec().with_drop_prob(0.3);
        let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec)], 1);
        let drops = (0..2000)
            .filter(|_| !net.uplink_transfer(0, 10, SimTime::ZERO).is_delivered())
            .count();
        let rate = drops as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn set_trace_swaps_conditions() {
        let mut net = perfect_network(1);
        net.set_trace(
            0,
            LinkTrace::constant(LinkSpec::new(1.0, 1.0, 0.0, 0.0, 0.0)),
        );
        let out = net.uplink_transfer(0, 100, SimTime::ZERO);
        assert!((out.arrival().unwrap().seconds() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn transfers_are_deterministic_per_seed() {
        let spec = LinkProfile::Lossy.spec();
        let run = |seed: u64| {
            let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec)], seed);
            (0..50)
                .map(|_| net.uplink_transfer(0, 10, SimTime::ZERO).is_delivered())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_network_panics() {
        ClientNetwork::new(Vec::new(), 0);
    }

    #[test]
    fn burst_channel_overrides_bernoulli_loss() {
        use crate::GilbertElliott;

        // Lossless link, but an always-Bad certain-loss channel attached.
        let mut net = perfect_network(2);
        net.set_burst_loss(0, GilbertElliott::new(1.0, 0.0, 0.0, 1.0, 0));
        for _ in 0..20 {
            assert!(!net.uplink_transfer(0, 10, SimTime::ZERO).is_delivered());
            // The other client is untouched by client 0's channel.
            assert!(net.uplink_transfer(1, 10, SimTime::ZERO).is_delivered());
        }
    }

    #[test]
    fn burst_channel_leaves_other_clients_rng_untouched() {
        // Attaching a burst channel to client 0 must not shift the shared
        // Bernoulli RNG stream observed by client 1.
        let spec = LinkProfile::Lossy.spec();
        let run = |with_burst: bool| {
            let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec); 2], 9);
            if with_burst {
                net.set_burst_loss(0, crate::GilbertElliott::new(0.5, 0.5, 0.3, 0.9, 4));
            }
            (0..100)
                .map(|_| {
                    if with_burst {
                        net.uplink_transfer(0, 10, SimTime::ZERO);
                    }
                    net.uplink_transfer(1, 10, SimTime::ZERO).is_delivered()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn recorder_observes_transfers_and_drops() {
        use adafl_telemetry::InMemoryRecorder;

        let rec = InMemoryRecorder::shared();
        let mut net = perfect_network(1);
        net.set_recorder(rec.clone());
        net.uplink_transfer(0, 1000, SimTime::ZERO);
        net.downlink_transfer(0, 2000, SimTime::ZERO);

        let lossy = LinkProfile::Broadband.spec().with_drop_prob(1.0);
        let mut net = ClientNetwork::new(vec![LinkTrace::constant(lossy)], 0);
        net.set_recorder(rec.clone());
        net.uplink_transfer(0, 10, SimTime::from_seconds(3.0));

        let t = rec.snapshot();
        assert_eq!(t.spans_of(names::SPAN_UPLINK).count(), 1);
        assert_eq!(t.spans_of(names::SPAN_DOWNLINK).count(), 1);
        assert_eq!(t.counters[names::NET_DROPS], 1);
        let drop = t.events_of(names::EVENT_TRANSFER_DROP).next().unwrap();
        assert_eq!(drop.client, Some(0));
        assert!((drop.sim_time - 3.0).abs() < 1e-12);
        assert_eq!(t.histograms[names::NET_UPLINK_SECONDS].count(), 1);
    }

    #[test]
    fn recording_never_perturbs_loss_decisions() {
        use adafl_telemetry::InMemoryRecorder;

        let spec = LinkProfile::Lossy.spec();
        let run = |record: bool| {
            let mut net = ClientNetwork::new(vec![LinkTrace::constant(spec)], 7);
            if record {
                net.set_recorder(InMemoryRecorder::shared());
            }
            (0..200)
                .map(|_| net.uplink_transfer(0, 10, SimTime::ZERO).is_delivered())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }
}
