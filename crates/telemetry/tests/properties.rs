//! Property tests for the log-bucketed histogram.

use adafl_telemetry::histogram::{bucket_index, bucket_lower_bound, BUCKETS};
use adafl_telemetry::LogHistogram;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn bucket_boundaries_are_monotone(i in 0usize..(BUCKETS - 1)) {
        prop_assert!(
            bucket_lower_bound(i) < bucket_lower_bound(i + 1),
            "bound({}) = {} !< bound({}) = {}",
            i,
            bucket_lower_bound(i),
            i + 1,
            bucket_lower_bound(i + 1),
        );
    }

    #[test]
    fn every_finite_f32_lands_in_exactly_one_bucket(bits in 0u32..u32::MAX) {
        let v32 = f32::from_bits(bits);
        prop_assume!(v32.is_finite());
        let v = f64::from(v32);
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKETS, "index {} out of range for {}", idx, v);
        if v <= 0.0 {
            // Non-positive values share the sign bucket.
            prop_assert_eq!(idx, 0);
        } else {
            // Positive values fall in exactly one half-open interval
            // [bound(j), bound(j+1)) — the one bucket_index reports.
            let contains = |j: usize| {
                v >= bucket_lower_bound(j) && (j + 1 == BUCKETS || v < bucket_lower_bound(j + 1))
            };
            let homes = (1..BUCKETS).filter(|&j| contains(j)).count();
            prop_assert!(homes == 1, "{} has {} homes", v, homes);
            prop_assert!(contains(idx), "{} not in its bucket {}", v, idx);
        }
    }

    #[test]
    fn merge_matches_concatenation(
        a in vec(0u32..u32::MAX, 0..24),
        b in vec(0u32..u32::MAX, 0..24),
    ) {
        // Dyadic values (8 fractional bits, |v| < 2^24) sum exactly in
        // f64 regardless of order, so merged state matches bit-for-bit.
        let val = |bits: &u32| (f64::from(*bits >> 8) - f64::from(1u32 << 23)) / 256.0;
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut concat = LogHistogram::new();
        for x in a.iter().map(val) {
            ha.record(x);
            concat.record(x);
        }
        for x in b.iter().map(val) {
            hb.record(x);
            concat.record(x);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha, concat);
    }
}
