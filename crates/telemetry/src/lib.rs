//! Metrics and structured event tracing for the AdaFL stack.
//!
//! Every engine, the network simulator and the compression paths accept a
//! shared [`Recorder`]. The default [`NoopRecorder`] makes instrumentation
//! free: call sites gate record construction on [`Recorder::enabled`], so a
//! disabled recorder costs one virtual call and a branch. Recording NEVER
//! consumes experiment RNG state or moves the simulated clock — a run with
//! telemetry on produces bit-identical results to a run with it off.
//!
//! Three record families:
//!
//! * **metrics** — monotone counters, last-write gauges and log-bucketed
//!   [histograms](LogHistogram), each living in its own name space of the
//!   typed registry inside [`InMemoryRecorder`];
//! * **spans** — intervals ([`SpanRecord`]) stamped with both simulated
//!   time (seconds) and wall-clock micros (round duration, per-client
//!   compute, transfers);
//! * **events** — instants ([`EventRecord`]) for discrete outcomes
//!   (drops, dropouts, staleness, selection).
//!
//! Traces export as JSONL ([`export::write_jsonl`]) or CSV
//! ([`export::write_csv`]) and parse back with [`jsonl::parse`]; the
//! `telemetry_report` binary summarizes a JSONL trace. The crate has no
//! dependencies so every layer of the workspace can use it.

#![warn(missing_docs)]

use std::sync::Arc;

pub mod export;
pub mod histogram;
pub mod jsonl;
pub mod memory;
pub mod names;
pub mod record;

pub use histogram::LogHistogram;
pub use memory::{InMemoryRecorder, Trace};
pub use record::{EventRecord, FieldValue, SpanRecord};

/// A recorder shared across engine, network and compression layers.
pub type SharedRecorder = Arc<dyn Recorder>;

/// Sink for metrics, spans and events.
///
/// All methods take `&self`: implementations are internally synchronized so
/// parallel client threads can record concurrently. Default method bodies
/// discard everything, which is exactly [`NoopRecorder`].
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// `false` when records are discarded. Call sites use this to skip
    /// building records (and their allocations) entirely.
    fn enabled(&self) -> bool;

    /// Microseconds of wall-clock time since the recorder was created.
    /// The no-op recorder reports 0 — wall time never feeds back into
    /// simulation decisions, it is observability-only.
    fn wall_micros(&self) -> u64 {
        0
    }

    /// Adds `delta` to the named monotone counter.
    fn counter_add(&self, _name: &str, _delta: u64) {}

    /// Sets the named gauge to `value` (last write wins).
    fn gauge_set(&self, _name: &str, _value: f64) {}

    /// Records one observation into the named log-bucketed histogram.
    fn histogram_record(&self, _name: &str, _value: f64) {}

    /// Records a completed span.
    fn span(&self, _span: SpanRecord) {}

    /// Records an instantaneous event.
    fn event(&self, _event: EventRecord) {}
}

/// Recorder that discards everything; the default for every engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
}

/// A fresh shared no-op recorder.
pub fn noop() -> SharedRecorder {
    Arc::new(NoopRecorder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let rec = noop();
        assert!(!rec.enabled());
        assert_eq!(rec.wall_micros(), 0);
        rec.counter_add("x", 1);
        rec.gauge_set("y", 2.0);
        rec.histogram_record("z", 3.0);
        rec.span(SpanRecord::new("round", 0.0, 1.0));
        rec.event(EventRecord::new("drop", 0.5));
    }
}
