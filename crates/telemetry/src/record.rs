//! Span and event record types.

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (byte counts, ids, versions).
    U64(u64),
    /// Floating point (ratios, scores, seconds).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (strategy names, reasons).
    Str(String),
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}
field_from!(u64 => U64 as u64, usize => U64 as u64, u32 => U64 as u64,
            f64 => F64 as f64, f32 => F64 as f64);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A completed interval: a round, one client's local training, a transfer.
///
/// Simulated times are in seconds; `wall_micros` is the wall-clock duration
/// the work took in this process (0 when not measured).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span kind, e.g. `"round"`, `"client_compute"`, `"uplink"`.
    pub kind: String,
    /// Protocol round (or async arrival index), when applicable.
    pub round: Option<u64>,
    /// Client id, when the span belongs to one client.
    pub client: Option<u64>,
    /// Simulated start time, seconds.
    pub sim_start: f64,
    /// Simulated end time, seconds.
    pub sim_end: f64,
    /// Wall-clock duration in microseconds (0 = not measured).
    pub wall_micros: u64,
    /// Additional typed fields, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanRecord {
    /// Creates a span over `[sim_start, sim_end]` seconds of simulated time.
    pub fn new(kind: impl Into<String>, sim_start: f64, sim_end: f64) -> Self {
        SpanRecord {
            kind: kind.into(),
            round: None,
            client: None,
            sim_start,
            sim_end,
            wall_micros: 0,
            fields: Vec::new(),
        }
    }

    /// Simulated duration in seconds.
    pub fn sim_seconds(&self) -> f64 {
        self.sim_end - self.sim_start
    }

    /// Tags the span with a round number.
    #[must_use]
    pub fn round(mut self, round: usize) -> Self {
        self.round = Some(round as u64);
        self
    }

    /// Tags the span with a client id.
    #[must_use]
    pub fn client(mut self, client: usize) -> Self {
        self.client = Some(client as u64);
        self
    }

    /// Sets the measured wall-clock duration.
    #[must_use]
    pub fn wall(mut self, micros: u64) -> Self {
        self.wall_micros = micros;
        self
    }

    /// Appends a typed field.
    #[must_use]
    pub fn field(mut self, name: impl Into<String>, value: impl Into<FieldValue>) -> Self {
        self.fields.push((name.into(), value.into()));
        self
    }
}

/// An instantaneous occurrence: a drop, a dropout, a staleness observation.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event kind, e.g. `"transfer_drop"`, `"dropout"`, `"staleness"`.
    pub kind: String,
    /// Protocol round (or async arrival index), when applicable.
    pub round: Option<u64>,
    /// Client id, when the event belongs to one client.
    pub client: Option<u64>,
    /// Simulated time of occurrence, seconds.
    pub sim_time: f64,
    /// Additional typed fields, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl EventRecord {
    /// Creates an event at `sim_time` seconds of simulated time.
    pub fn new(kind: impl Into<String>, sim_time: f64) -> Self {
        EventRecord {
            kind: kind.into(),
            round: None,
            client: None,
            sim_time,
            fields: Vec::new(),
        }
    }

    /// Tags the event with a round number.
    #[must_use]
    pub fn round(mut self, round: usize) -> Self {
        self.round = Some(round as u64);
        self
    }

    /// Tags the event with a client id.
    #[must_use]
    pub fn client(mut self, client: usize) -> Self {
        self.client = Some(client as u64);
        self
    }

    /// Appends a typed field.
    #[must_use]
    pub fn field(mut self, name: impl Into<String>, value: impl Into<FieldValue>) -> Self {
        self.fields.push((name.into(), value.into()));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let s = SpanRecord::new("uplink", 1.0, 3.5)
            .round(2)
            .client(7)
            .wall(120)
            .field("bytes", 1024usize)
            .field("strategy", "adafl");
        assert_eq!(s.round, Some(2));
        assert_eq!(s.client, Some(7));
        assert!((s.sim_seconds() - 2.5).abs() < 1e-12);
        assert_eq!(s.fields[0], ("bytes".to_string(), FieldValue::U64(1024)));
        assert_eq!(
            s.fields[1],
            ("strategy".to_string(), FieldValue::Str("adafl".into()))
        );
    }

    #[test]
    fn event_builder() {
        let e = EventRecord::new("staleness", 9.0)
            .client(1)
            .field("value", 4u64);
        assert_eq!(e.kind, "staleness");
        assert_eq!(e.client, Some(1));
        assert_eq!(e.fields.len(), 1);
    }
}
