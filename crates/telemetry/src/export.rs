//! JSONL and CSV exporters for a [`Trace`].
//!
//! One JSON object per line; the `type` key dispatches:
//!
//! ```text
//! {"type":"counter","name":"netsim.transfer_drops","value":3}
//! {"type":"gauge","name":"adafl.selected","value":3.0}
//! {"type":"histogram","name":"fl.round.sim_seconds","count":4,"sum":9.5,
//!  "min":0.5,"max":6.0,"buckets":[[64,1],[66,3]]}
//! {"type":"span","kind":"round","round":0,"sim_start":0.0,"sim_end":2.5,
//!  "wall_micros":184,"fields":{"participants":4}}
//! {"type":"event","kind":"dropout","round":1,"client":2,"sim_time":3.1,
//!  "fields":{}}
//! ```
//!
//! Histogram buckets are `(index, count)` pairs (only non-empty buckets),
//! lossless under [`crate::jsonl::parse`]. Non-finite histogram `min`/`max`
//! (the empty-state sentinels) are omitted rather than written, since JSON
//! has no infinity literal.

use crate::histogram::LogHistogram;
use crate::record::{EventRecord, FieldValue, SpanRecord};
use crate::Trace;
use std::io::{self, Write};

/// Writes the trace as JSONL.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    let mut line = String::new();
    for (name, &value) in &trace.counters {
        line.clear();
        line.push_str("{\"type\":\"counter\",\"name\":");
        push_str_json(&mut line, name);
        line.push_str(",\"value\":");
        line.push_str(&value.to_string());
        line.push('}');
        writeln!(w, "{line}")?;
    }
    for (name, &value) in &trace.gauges {
        line.clear();
        line.push_str("{\"type\":\"gauge\",\"name\":");
        push_str_json(&mut line, name);
        line.push_str(",\"value\":");
        push_f64(&mut line, value);
        line.push('}');
        writeln!(w, "{line}")?;
    }
    for (name, hist) in &trace.histograms {
        line.clear();
        push_histogram(&mut line, name, hist);
        writeln!(w, "{line}")?;
    }
    for span in &trace.spans {
        line.clear();
        push_span(&mut line, span);
        writeln!(w, "{line}")?;
    }
    for event in &trace.events {
        line.clear();
        push_event(&mut line, event);
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// The trace as a JSONL string.
pub fn to_jsonl_string(trace: &Trace) -> String {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, trace).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Writes the trace as a flat CSV
/// (`type,name,round,client,sim_start,sim_end,wall_micros,value,fields`).
/// Spans put their simulated duration in `value`; histograms put their
/// count there and summary quantiles in `fields`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_csv<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    writeln!(
        w,
        "type,name,round,client,sim_start,sim_end,wall_micros,value,fields"
    )?;
    for (name, &value) in &trace.counters {
        writeln!(w, "counter,{},,,,,,{},", csv_cell(name), value)?;
    }
    for (name, &value) in &trace.gauges {
        writeln!(w, "gauge,{},,,,,,{},", csv_cell(name), fmt_f64(value))?;
    }
    for (name, h) in &trace.histograms {
        let summary = format!(
            "mean={};p50={};p95={};p99={}",
            fmt_f64(h.mean()),
            fmt_f64(h.quantile(0.5)),
            fmt_f64(h.quantile(0.95)),
            fmt_f64(h.quantile(0.99)),
        );
        writeln!(
            w,
            "histogram,{},,,,,,{},{}",
            csv_cell(name),
            h.count(),
            csv_cell(&summary)
        )?;
    }
    for s in &trace.spans {
        writeln!(
            w,
            "span,{},{},{},{},{},{},{},{}",
            csv_cell(&s.kind),
            opt(s.round),
            opt(s.client),
            fmt_f64(s.sim_start),
            fmt_f64(s.sim_end),
            s.wall_micros,
            fmt_f64(s.sim_seconds()),
            csv_cell(&join_fields(&s.fields)),
        )?;
    }
    for e in &trace.events {
        writeln!(
            w,
            "event,{},{},{},{},,,,{}",
            csv_cell(&e.kind),
            opt(e.round),
            opt(e.client),
            fmt_f64(e.sim_time),
            csv_cell(&join_fields(&e.fields)),
        )?;
    }
    Ok(())
}

fn opt(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_default()
}

fn join_fields(fields: &[(String, FieldValue)]) -> String {
    fields
        .iter()
        .map(|(k, v)| {
            let rendered = match v {
                FieldValue::U64(x) => x.to_string(),
                FieldValue::F64(x) => fmt_f64(*x),
                FieldValue::Bool(b) => b.to_string(),
                FieldValue::Str(s) => s.clone(),
            };
            format!("{k}={rendered}")
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn push_histogram(out: &mut String, name: &str, hist: &LogHistogram) {
    out.push_str("{\"type\":\"histogram\",\"name\":");
    push_str_json(out, name);
    out.push_str(",\"count\":");
    out.push_str(&hist.count().to_string());
    out.push_str(",\"sum\":");
    push_f64(out, hist.sum());
    if hist.min().is_finite() {
        out.push_str(",\"min\":");
        push_f64(out, hist.min());
    }
    if hist.max().is_finite() {
        out.push_str(",\"max\":");
        push_f64(out, hist.max());
    }
    out.push_str(",\"buckets\":[");
    let mut first = true;
    for (i, &c) in hist.bucket_counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("[{i},{c}]"));
    }
    out.push_str("]}");
}

fn push_span(out: &mut String, span: &SpanRecord) {
    out.push_str("{\"type\":\"span\",\"kind\":");
    push_str_json(out, &span.kind);
    if let Some(r) = span.round {
        out.push_str(&format!(",\"round\":{r}"));
    }
    if let Some(c) = span.client {
        out.push_str(&format!(",\"client\":{c}"));
    }
    out.push_str(",\"sim_start\":");
    push_f64(out, span.sim_start);
    out.push_str(",\"sim_end\":");
    push_f64(out, span.sim_end);
    out.push_str(&format!(",\"wall_micros\":{}", span.wall_micros));
    push_fields(out, &span.fields);
    out.push('}');
}

fn push_event(out: &mut String, event: &EventRecord) {
    out.push_str("{\"type\":\"event\",\"kind\":");
    push_str_json(out, &event.kind);
    if let Some(r) = event.round {
        out.push_str(&format!(",\"round\":{r}"));
    }
    if let Some(c) = event.client {
        out.push_str(&format!(",\"client\":{c}"));
    }
    out.push_str(",\"sim_time\":");
    push_f64(out, event.sim_time);
    push_fields(out, &event.fields);
    out.push('}');
}

fn push_fields(out: &mut String, fields: &[(String, FieldValue)]) {
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_json(out, k);
        out.push(':');
        match v {
            FieldValue::U64(x) => out.push_str(&x.to_string()),
            FieldValue::F64(x) => push_f64(out, *x),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            FieldValue::Str(s) => push_str_json(out, s),
        }
    }
    out.push('}');
}

/// Formats an f64 for JSON, keeping a decimal marker so the value parses
/// back as a float rather than an integer; non-finite values (which only
/// appear via explicitly recorded gauges/fields) become `null`.
fn push_f64(out: &mut String, x: f64) {
    out.push_str(&fmt_f64(x));
}

fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = x.to_string();
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventRecord, InMemoryRecorder, Recorder, SpanRecord};

    fn sample_trace() -> Trace {
        let rec = InMemoryRecorder::new();
        rec.counter_add("bytes", 1200);
        rec.gauge_set("selected", 3.0);
        rec.histogram_record("lat", 0.5);
        rec.histogram_record("lat", 8.0);
        rec.span(
            SpanRecord::new("round", 0.0, 2.5)
                .round(0)
                .wall(42)
                .field("n", 4usize),
        );
        rec.event(
            EventRecord::new("dropout", 1.0)
                .round(0)
                .client(2)
                .field("why", "plan"),
        );
        rec.snapshot()
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let text = to_jsonl_string(&sample_trace());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines
            .iter()
            .all(|l| l.starts_with("{\"type\":\"") && l.ends_with('}')));
        assert!(text.contains("\"kind\":\"round\""));
        assert!(text.contains("\"buckets\":[["));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &sample_trace()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "type,name,round,client,sim_start,sim_end,wall_micros,value,fields"
        );
        assert_eq!(lines.len(), 6);
        assert!(lines.iter().any(|l| l.starts_with("span,round,0,")));
        assert!(lines.iter().any(|l| l.starts_with("event,dropout,0,2,")));
    }

    #[test]
    fn floats_keep_their_marker() {
        let mut s = String::new();
        push_f64(&mut s, 3.0);
        assert_eq!(s, "3.0");
    }

    #[test]
    fn csv_cells_escape_commas() {
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("plain"), "plain");
    }
}
