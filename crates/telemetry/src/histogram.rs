//! Log-bucketed histogram with exact merge semantics.
//!
//! Buckets are powers of two, derived from the value's floating-point
//! exponent, so recording costs a few bit operations and no allocation.
//! Layout (indices into the fixed bucket array):
//!
//! | index | range |
//! |---|---|
//! | `0` | non-positive values (and NaN) |
//! | `1` | `(0, 2^MIN_EXP)` — underflow |
//! | `2 + k` | `[2^(MIN_EXP+k), 2^(MIN_EXP+k+1))` |
//! | `BUCKETS-1` | `[2^MAX_EXP, +inf]` — overflow |
//!
//! Merging two histograms is element-wise addition, so a merged histogram
//! is exactly the histogram of the concatenated samples.

/// Smallest exponent with its own bucket; `2^-64 ≈ 5.4e-20` comfortably
/// covers sub-microsecond simulated durations.
pub const MIN_EXP: i32 = -64;

/// One past the largest exponent with its own bucket; `2^64 ≈ 1.8e19`
/// covers byte counts far beyond any run.
pub const MAX_EXP: i32 = 64;

/// Total bucket count (non-positive + underflow + exponents + overflow).
pub const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize + 3;

/// Bucket index for a value. Every `f64` (and therefore every finite
/// `f32`) maps to exactly one bucket.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    // Unbiased exponent; subnormals report -1023 and land in underflow.
    let e = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    if e < MIN_EXP {
        1
    } else if e >= MAX_EXP {
        BUCKETS - 1
    } else {
        (e - MIN_EXP) as usize + 2
    }
}

/// Inclusive lower bound of a bucket, for reporting. Strictly increasing
/// in the index.
///
/// # Panics
///
/// Panics when `index >= BUCKETS`.
pub fn bucket_lower_bound(index: usize) -> f64 {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    match index {
        0 => f64::NEG_INFINITY,
        1 => 0.0,
        i if i == BUCKETS - 1 => 2f64.powi(MAX_EXP),
        i => 2f64.powi(i as i32 - 2 + MIN_EXP),
    }
}

/// A fixed-layout log-bucketed histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest finite observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest finite observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean of finite observations, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Folds `other` into `self`. The result equals the histogram of both
    /// sample streams concatenated.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// holding the `⌈q·n⌉`-th observation, clamped to the observed
    /// `[min, max]`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let mid = match i {
                    0 => self.min.min(0.0),
                    1 => bucket_lower_bound(2) / 2.0,
                    i if i == BUCKETS - 1 => self.max.max(bucket_lower_bound(BUCKETS - 1)),
                    i => bucket_lower_bound(i) * 1.5,
                };
                return if self.min <= self.max {
                    mid.clamp(self.min, self.max)
                } else {
                    mid
                };
            }
        }
        self.max
    }

    /// Rebuilds a histogram from exported state (the JSONL parser's entry
    /// point). `buckets` holds `(index, count)` pairs.
    ///
    /// # Errors
    ///
    /// Returns a message when an index is out of range or counts disagree.
    pub fn from_parts(
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        buckets: &[(usize, u64)],
    ) -> Result<Self, String> {
        let mut h = LogHistogram::new();
        let mut total = 0u64;
        for &(i, c) in buckets {
            if i >= BUCKETS {
                return Err(format!("bucket index {i} out of range"));
            }
            h.counts[i] += c;
            total += c;
        }
        if total != count {
            return Err(format!("bucket counts sum to {total}, header says {count}"));
        }
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let mut h = LogHistogram::new();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 15.0).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 8.0);
        assert!((h.mean() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn powers_of_two_land_in_distinct_buckets() {
        assert_ne!(bucket_index(1.0), bucket_index(2.0));
        assert_ne!(bucket_index(2.0), bucket_index(4.0));
        // Within an octave: same bucket.
        assert_eq!(bucket_index(2.0), bucket_index(3.9));
    }

    #[test]
    fn special_values_have_homes() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::NEG_INFINITY), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
        assert_eq!(bucket_index(1e-300), 1);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((256.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!(p99 <= 1000.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for (i, v) in [0.5, 3.0, 100.0, 0.001, 7.0, 2.0].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v)
            } else {
                b.record(*v)
            }
            all.record(*v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = LogHistogram::new();
        for v in [0.25, 1.5, 1e30, -2.0] {
            h.record(v);
        }
        let buckets: Vec<(usize, u64)> = h
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        let back =
            LogHistogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &buckets).unwrap();
        assert_eq!(h, back);
    }
}
