//! Parser for the JSONL trace format emitted by [`crate::export`].
//!
//! Self-contained (no serde dependency — telemetry sits below every other
//! crate in the workspace) and strict: unknown record types, malformed
//! JSON, or inconsistent histogram headers are errors, not skips.

use crate::histogram::LogHistogram;
use crate::record::{EventRecord, FieldValue, SpanRecord};
use crate::Trace;

/// Parses a full JSONL trace back into a [`Trace`].
///
/// Blank lines are permitted and skipped. The reconstructed trace compares
/// `==` with the snapshot that produced it.
///
/// # Errors
///
/// Returns a message naming the offending line (1-based) on malformed
/// input.
pub fn parse(text: &str) -> Result<Trace, String> {
    let mut trace = Trace::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        parse_line(line, &mut trace).map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    Ok(trace)
}

fn parse_line(line: &str, trace: &mut Trace) -> Result<(), String> {
    let value = Json::parse(line)?;
    let obj = value.as_object().ok_or("expected a JSON object")?;
    let kind = get(obj, "type")?
        .as_str()
        .ok_or("\"type\" must be a string")?;
    match kind {
        "counter" => {
            let name = get_str(obj, "name")?;
            let value = get(obj, "value")?
                .as_u64()
                .ok_or("counter value must be a u64")?;
            *trace.counters.entry(name).or_insert(0) += value;
        }
        "gauge" => {
            let name = get_str(obj, "name")?;
            let value = get(obj, "value")?
                .as_f64()
                .ok_or("gauge value must be a number")?;
            trace.gauges.insert(name, value);
        }
        "histogram" => {
            let name = get_str(obj, "name")?;
            let count = get(obj, "count")?
                .as_u64()
                .ok_or("histogram count must be a u64")?;
            let sum = get(obj, "sum")?
                .as_f64()
                .ok_or("histogram sum must be a number")?;
            // min/max are omitted for an empty histogram; default to the
            // empty-state sentinels so the round trip is exact.
            let min = opt_f64(obj, "min")?.unwrap_or(f64::INFINITY);
            let max = opt_f64(obj, "max")?.unwrap_or(f64::NEG_INFINITY);
            let buckets_json = get(obj, "buckets")?
                .as_array()
                .ok_or("buckets must be an array")?;
            let mut buckets = Vec::with_capacity(buckets_json.len());
            for pair in buckets_json {
                let pair = pair
                    .as_array()
                    .ok_or("each bucket must be [index, count]")?;
                if pair.len() != 2 {
                    return Err("each bucket must be [index, count]".into());
                }
                let index = pair[0].as_u64().ok_or("bucket index must be a u64")? as usize;
                let bucket_count = pair[1].as_u64().ok_or("bucket count must be a u64")?;
                buckets.push((index, bucket_count));
            }
            let hist = LogHistogram::from_parts(count, sum, min, max, &buckets)?;
            trace.histograms.insert(name, hist);
        }
        "span" => {
            let mut span = SpanRecord::new(
                get_str(obj, "kind")?,
                get(obj, "sim_start")?
                    .as_f64()
                    .ok_or("sim_start must be a number")?,
                get(obj, "sim_end")?
                    .as_f64()
                    .ok_or("sim_end must be a number")?,
            );
            span.round = opt_u64(obj, "round")?;
            span.client = opt_u64(obj, "client")?;
            span.wall_micros = get(obj, "wall_micros")?
                .as_u64()
                .ok_or("wall_micros must be a u64")?;
            span.fields = parse_fields(obj)?;
            trace.spans.push(span);
        }
        "event" => {
            let mut event = EventRecord::new(
                get_str(obj, "kind")?,
                get(obj, "sim_time")?
                    .as_f64()
                    .ok_or("sim_time must be a number")?,
            );
            event.round = opt_u64(obj, "round")?;
            event.client = opt_u64(obj, "client")?;
            event.fields = parse_fields(obj)?;
            trace.events.push(event);
        }
        other => return Err(format!("unknown record type {other:?}")),
    }
    Ok(())
}

type Obj = Vec<(String, Json)>;

fn get<'a>(obj: &'a Obj, key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

fn get_str(obj: &Obj, key: &str) -> Result<String, String> {
    Ok(get(obj, key)?
        .as_str()
        .ok_or_else(|| format!("{key:?} must be a string"))?
        .to_string())
}

fn opt_u64(obj: &Obj, key: &str) -> Result<Option<u64>, String> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Json::Null)) => Ok(None),
        Some((_, v)) => Ok(Some(
            v.as_u64().ok_or_else(|| format!("{key:?} must be a u64"))?,
        )),
    }
}

fn opt_f64(obj: &Obj, key: &str) -> Result<Option<f64>, String> {
    match obj.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Json::Null)) => Ok(None),
        Some((_, v)) => Ok(Some(
            v.as_f64()
                .ok_or_else(|| format!("{key:?} must be a number"))?,
        )),
    }
}

fn parse_fields(obj: &Obj) -> Result<Vec<(String, FieldValue)>, String> {
    let fields = get(obj, "fields")?
        .as_object()
        .ok_or("\"fields\" must be an object")?;
    let mut out = Vec::with_capacity(fields.len());
    for (k, v) in fields {
        let fv = match v {
            Json::U64(x) => FieldValue::U64(*x),
            Json::F64(x) => FieldValue::F64(*x),
            Json::Bool(b) => FieldValue::Bool(*b),
            Json::Str(s) => FieldValue::Str(s.clone()),
            other => return Err(format!("field {k:?} has unsupported value {other:?}")),
        };
        out.push((k.clone(), fv));
    }
    Ok(out)
}

/// A minimal owned JSON value, just enough for the trace format.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Obj),
}

impl Json {
    fn as_object(&self) -> Option<&Obj> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(x) => Some(*x),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(x) => Some(*x as f64),
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut obj = Obj::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(obj));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        obj.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(obj));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut arr = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(arr));
    }
    loop {
        arr.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(arr));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // The exporter never emits surrogate pairs (it only
                        // \u-escapes control characters), so a lone
                        // surrogate is simply an error.
                        out.push(
                            char::from_u32(u32::from(code))
                                .ok_or_else(|| format!("invalid \\u escape {code:04x}"))?,
                        );
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            _ => {
                // Copy a full UTF-8 sequence.
                let start = *pos;
                let len = utf8_len(b);
                *pos += len;
                let chunk = bytes
                    .get(start..start + len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in string")?);
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_hex4(bytes: &[u8], start: usize) -> Result<u16, String> {
    let chunk = bytes.get(start..start + 4).ok_or("truncated \\u escape")?;
    let text = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape")?;
    u16::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape {text:?}"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::U64(u));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("bad number {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_jsonl_string;
    use crate::{InMemoryRecorder, Recorder};

    #[test]
    fn scalar_values_parse() {
        assert_eq!(Json::parse("3").unwrap(), Json::U64(3));
        assert_eq!(Json::parse("3.0").unwrap(), Json::F64(3.0));
        assert_eq!(Json::parse("-2").unwrap(), Json::F64(-2.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert!(Json::parse("3 x").is_err());
    }

    #[test]
    fn round_trip_is_exact() {
        let rec = InMemoryRecorder::new();
        rec.counter_add("compression.bytes_pre.topk", 4096);
        rec.counter_add("netsim.transfer_drops", 2);
        rec.gauge_set("adafl.selected", 3.0);
        for v in [0.5, 2.0, 2.5, 1e-30, 1e30] {
            rec.histogram_record("fl.round.sim_seconds", v);
        }
        rec.histogram_record("empty.after.none", -1.0); // non-positive only
        rec.span(
            SpanRecord::new("round", 0.0, 2.5)
                .round(0)
                .wall(184)
                .field("participants", 4usize)
                .field("strategy", "adafl")
                .field("warm", true)
                .field("ratio", 0.25f64),
        );
        rec.span(SpanRecord::new("uplink", 1.0, 1.5).round(0).client(2));
        rec.event(
            EventRecord::new("dropout", 1.25)
                .round(0)
                .client(1)
                .field("planned", true),
        );
        let original = rec.snapshot();

        let text = to_jsonl_string(&original);
        let back = parse(&text).expect("round trip parses");
        assert_eq!(original, back);
    }

    #[test]
    fn empty_histogram_round_trips() {
        // min/max sentinels (±inf) must survive omission from JSON.
        let mut trace = Trace::default();
        trace.histograms.insert("h".into(), LogHistogram::new());
        let text = to_jsonl_string(&trace);
        assert!(!text.contains("min"));
        let back = parse(&text).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = parse("\n{\"type\":\"counter\",\"name\":\"c\",\"value\":1}\n\n").unwrap();
        assert_eq!(t.counters["c"], 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("{\"type\":\"counter\",\"name\":\"c\",\"value\":1}\n{oops}").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn unknown_type_is_an_error() {
        assert!(parse("{\"type\":\"mystery\"}").is_err());
    }
}
