//! Well-known metric, span and event names.
//!
//! Instrumentation sites use these constants so the registry stays typo-free
//! and `telemetry_report` can group records reliably. Per-strategy
//! compression metrics append the strategy after a dot, e.g.
//! `compression.bytes_pre.dgc`.

// --- counters ---

/// Uncompressed bytes entering a compressor (counter, per strategy).
pub const COMPRESSION_BYTES_PRE: &str = "compression.bytes_pre";
/// Wire bytes leaving a compressor (counter, per strategy).
pub const COMPRESSION_BYTES_POST: &str = "compression.bytes_post";
/// Transfers lost to link loss (counter).
pub const NET_DROPS: &str = "netsim.transfer_drops";
/// Retransmissions attempted by the reliable transport (counter).
pub const NET_RETRIES: &str = "netsim.retries";
/// Reliable transfers abandoned after exhausting all attempts (counter).
pub const NET_RELIABLE_FAILURES: &str = "netsim.reliable_failures";
/// Mesh transfers that switched to a different path after a topology
/// change (counter).
pub const MESH_REROUTES: &str = "netsim.mesh.reroutes";
/// Mesh transfers abandoned with no usable route to the destination
/// (counter).
pub const MESH_PARTITIONS: &str = "netsim.mesh.partitions";
/// Mesh nodes that exhausted their energy budget and went down (counter).
pub const MESH_ENERGY_DEPLETED: &str = "netsim.mesh.energy_depleted";
/// Updates withheld by the fault plan (counter).
pub const FL_DROPOUTS: &str = "fl.dropouts";
/// Updates rejected by the server's defensive aggregation gate (counter).
pub const FL_DEFENSE_REJECTIONS: &str = "fl.defense.rejections";
/// Non-finite coordinates scrubbed by the defensive gate (counter).
pub const FL_DEFENSE_SCRUBBED: &str = "fl.defense.scrubbed_values";
/// Synchronous rounds skipped for lack of quorum (counter).
pub const FL_QUORUM_SKIPS: &str = "fl.quorum_skips";
/// Clients entering a crash fault (counter).
pub const FL_CRASHES: &str = "fl.crashes";
/// Clients recovering from a crash via checkpoint restore (counter).
pub const FL_RECOVERIES: &str = "fl.recoveries";
/// Updates corrupted in transit by the fault plan (counter).
pub const FL_CORRUPTIONS: &str = "fl.corruptions";
/// Updates poisoned by a Byzantine attacker (counter).
pub const FL_ATTACKS: &str = "fl.attacks";
/// Updates fully excluded by the robust pre-aggregation stage (counter).
pub const FL_ROBUST_REJECTED: &str = "fl.robust.rejected_updates";
/// Coordinate entries dropped by robust trimming (counter).
pub const FL_ROBUST_TRIMMED: &str = "fl.robust.trimmed_values";
/// Arrived updates whose wire bytes failed to decode (counter).
pub const FL_DECODE_REJECTIONS: &str = "fl.decode_rejections";
/// Updates discarded by the round deadline (counter).
pub const FL_DEADLINE_MISSES: &str = "fl.deadline_misses";
/// Clients that halted after the async utility gate (counter).
pub const ADAFL_HALTS: &str = "adafl.halts";

// --- gauges ---

/// Clients selected in the most recent control-plane round (gauge).
pub const ADAFL_SELECTED: &str = "adafl.selected";

// --- histograms ---

/// Simulated seconds per synchronous round (histogram).
pub const ROUND_SIM_SECONDS: &str = "fl.round.sim_seconds";
/// Simulated seconds per uplink transfer (histogram).
pub const NET_UPLINK_SECONDS: &str = "netsim.uplink_seconds";
/// Simulated seconds per downlink transfer (histogram).
pub const NET_DOWNLINK_SECONDS: &str = "netsim.downlink_seconds";
/// Achieved compression ratio, pre/post (histogram, per strategy).
pub const COMPRESSION_RATIO: &str = "compression.ratio";
/// Utility scores reported by clients (histogram).
pub const ADAFL_UTILITY: &str = "adafl.utility_score";
/// Adaptive compression ratios assigned per upload (histogram).
pub const ADAFL_ASSIGNED_RATIO: &str = "adafl.assigned_ratio";
/// Staleness (global versions missed) of applied async updates (histogram).
pub const ASYNC_STALENESS: &str = "fl.async.staleness";
/// Hops traversed by delivered mesh transfers (histogram).
pub const MESH_PATH_HOPS: &str = "netsim.mesh.path_hops";

// --- span kinds ---

/// One synchronous protocol round.
pub const SPAN_ROUND: &str = "round";
/// One client's local training interval.
pub const SPAN_CLIENT_COMPUTE: &str = "client_compute";
/// One robust pre-aggregation pass (wall time is the estimator cost).
pub const SPAN_ROBUST: &str = "robust_aggregate";
/// A delivered client→server transfer.
pub const SPAN_UPLINK: &str = "uplink";
/// A delivered server→client transfer.
pub const SPAN_DOWNLINK: &str = "downlink";

// --- event kinds ---

/// A transfer lost to link loss.
pub const EVENT_TRANSFER_DROP: &str = "transfer_drop";
/// The reliable transport retransmitted a payload.
pub const EVENT_RETRY: &str = "retry";
/// The reliable transport gave up after its final attempt.
pub const EVENT_TRANSFER_FAILED: &str = "transfer_failed";
/// The defensive aggregation gate rejected an update.
pub const EVENT_DEFENSE_REJECT: &str = "defense_reject";
/// A synchronous round proceeded without quorum and was skipped.
pub const EVENT_QUORUM_SKIP: &str = "quorum_skip";
/// A client crashed (enters its outage window).
pub const EVENT_CRASH: &str = "crash";
/// A crashed client recovered its state from a checkpoint.
pub const EVENT_RECOVERY: &str = "recovery";
/// A fault corrupted an update in transit.
pub const EVENT_CORRUPTION: &str = "corruption";
/// A Byzantine attacker poisoned an update before upload.
pub const EVENT_ATTACK: &str = "byzantine_attack";
/// An arrived update's wire bytes were rejected by the decoder.
pub const EVENT_DECODE_REJECT: &str = "decode_reject";
/// An update withheld by the fault plan.
pub const EVENT_DROPOUT: &str = "dropout";
/// An update discarded for missing the round deadline.
pub const EVENT_DEADLINE_MISS: &str = "deadline_miss";
/// A staleness observation at async update arrival.
pub const EVENT_STALENESS: &str = "staleness";
/// The control plane selected a cohort.
pub const EVENT_SELECTION: &str = "selection";
/// A client halted below the async utility threshold.
pub const EVENT_HALT: &str = "halt";
/// A mesh transfer switched paths after a topology change.
pub const EVENT_MESH_REROUTE: &str = "mesh_reroute";
/// A mesh transfer found no usable route to its destination.
pub const EVENT_MESH_PARTITION: &str = "mesh_partition";
/// A mesh node exhausted its energy budget and went down.
pub const EVENT_ENERGY_DEPLETED: &str = "energy_depleted";

/// Joins a base metric name with a strategy suffix,
/// e.g. `scoped(COMPRESSION_RATIO, "dgc")` → `compression.ratio.dgc`.
pub fn scoped(base: &str, strategy: &str) -> String {
    format!("{base}.{strategy}")
}
